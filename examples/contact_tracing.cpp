// Contact tracing (the paper's motivating example): given the trajectory
// of an infected person, find every trajectory that stayed within a
// contact distance of it — a threshold similarity search.
//
//   ./build/examples/contact_tracing [directory]

#include <cstdio>
#include <memory>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "util/stopwatch.h"
#include "workload/generator.h"

namespace {

// ~50 meters expressed in normalized coordinates (earth -> [0,1]^2).
constexpr double kContactEps = 0.05 * trass::workload::kKm;

}  // namespace

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_contact_tracing";
  kv::Env::Default()->RemoveDirRecursively(path);

  core::TrassOptions options;
  options.shards = 4;
  std::unique_ptr<core::TrassStore> store;
  Status s = core::TrassStore::Open(options, path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // A city's day of movement: 5000 trips, some of which shadow others.
  auto population = workload::TDriveLike(5000, /*seed=*/2026);
  // Plant a few known "close contacts": trajectories that follow the
  // patient's path with a small lateral offset. Copy the patient before
  // appending — push_back may reallocate the vector.
  const core::Trajectory patient = population[100];
  uint64_t next_id = population.size() + 1;
  for (int contact = 0; contact < 3; ++contact) {
    core::Trajectory shadow;
    shadow.id = next_id++;
    const double offset = (contact + 1) * 0.01 * workload::kKm;  // ~10-30m
    for (const geo::Point& p : patient.points) {
      shadow.points.push_back(geo::Point{p.x + offset, p.y + offset});
    }
    population.push_back(std::move(shadow));
  }

  Stopwatch ingest;
  for (const auto& trajectory : population) {
    s = store->Put(trajectory);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  store->Flush();
  std::printf("ingested %zu trajectories in %.1f ms\n", population.size(),
              ingest.ElapsedMillis());

  std::printf("patient trajectory: id=%llu, %zu points\n",
              static_cast<unsigned long long>(patient.id),
              patient.points.size());

  std::vector<core::SearchResult> contacts;
  core::QueryMetrics metrics;
  s = store->ThresholdSearch(patient.points, kContactEps,
                             core::Measure::kFrechet, &contacts, &metrics);
  if (!s.ok()) {
    std::fprintf(stderr, "search failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nclose contacts within ~50m (Frechet): %zu found in %.2f ms\n",
              contacts.size(), metrics.total_ms);
  std::printf("  store rows touched: %llu of %zu (global pruning kept "
              "%.2f%%)\n",
              static_cast<unsigned long long>(metrics.retrieved),
              population.size(),
              100.0 * static_cast<double>(metrics.retrieved) /
                  static_cast<double>(population.size()));
  for (const auto& r : contacts) {
    if (r.id == patient.id) continue;
    std::printf("  contact id=%llu  max-separation=%.1fm\n",
                static_cast<unsigned long long>(r.id),
                r.distance / workload::kKm * 1000.0);
  }
  return 0;
}
