// Contact tracing (the paper's motivating example), served the way a
// health authority would actually run it: a 4-shard scatter-gather tier
// behind a ShardCoordinator. Given the trajectory of an infected
// person, find every trajectory that stayed within a contact distance
// of it — a threshold similarity search fanned out across the shards.
//
// The second act is the point of the serving tier: one shard wedges
// (hangs, never answering), and the same query degrades to a
// *verified partial* — every contact it returns is a true contact, the
// gap is reported via QueryMetrics::shards_skipped, and the per-shard
// circuit breaker opens so follow-up queries skip the dead shard in
// microseconds instead of burning their deadline on it.
//
//   ./build/examples/contact_tracing [directory]

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "serve/coordinator.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "util/stopwatch.h"
#include "workload/generator.h"

namespace {

// ~50 meters expressed in normalized coordinates (earth -> [0,1]^2).
constexpr double kContactEps = 0.05 * trass::workload::kKm;
constexpr size_t kShards = 4;
constexpr size_t kWedgedShard = 2;

const char* BreakerStateName(trass::serve::CircuitBreaker::State state) {
  switch (state) {
    case trass::serve::CircuitBreaker::State::kClosed: return "closed";
    case trass::serve::CircuitBreaker::State::kOpen: return "open";
    case trass::serve::CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

void PrintContacts(const std::vector<trass::core::SearchResult>& contacts,
                   uint64_t patient_id) {
  for (const auto& r : contacts) {
    if (r.id == patient_id) continue;
    std::printf("  contact id=%llu  max-separation=%.1fm\n",
                static_cast<unsigned long long>(r.id),
                r.distance / trass::workload::kKm * 1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_contact_tracing";
  kv::Env::Default()->RemoveDirRecursively(path);
  kv::Env::Default()->CreateDir(path);

  // --- stand up the tier: 4 shard stores behind fault-injectable
  // transports, a coordinator routing by trajectory hash -------------
  core::TrassOptions options;
  options.shards = 4;  // row-key sharding *within* each store
  std::vector<std::unique_ptr<core::TrassStore>> stores;
  std::vector<std::shared_ptr<serve::FaultInjectionTransport>> transports;
  std::vector<std::shared_ptr<serve::ShardTransport>> shard_transports;
  for (size_t i = 0; i < kShards; ++i) {
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(
        options, path + "/shard" + std::to_string(i), &store);
    if (!s.ok()) {
      std::fprintf(stderr, "open shard %zu failed: %s\n", i,
                   s.ToString().c_str());
      return 1;
    }
    // Wrap every shard in a fault-injection transport (benign until we
    // flip one to wedged below).
    auto transport = std::make_shared<serve::FaultInjectionTransport>(
        std::make_shared<serve::DirectShardTransport>(store.get()),
        serve::FaultInjectionTransport::Options{});
    transports.push_back(transport);
    shard_transports.push_back(transport);
    stores.push_back(std::move(store));
  }

  serve::CoordinatorOptions coordinator_options;
  coordinator_options.max_resolution = options.max_resolution;
  coordinator_options.breaker_failure_threshold = 2;
  coordinator_options.breaker_cooldown_ms = 5000.0;
  coordinator_options.max_shard_retries = 0;  // a wedge is not transient
  serve::ShardCoordinator coordinator(coordinator_options,
                                      std::move(shard_transports));

  // A city's day of movement: 5000 trips, some of which shadow others.
  auto population = workload::TDriveLike(5000, /*seed=*/2026);
  // Plant a few known "close contacts": trajectories that follow the
  // patient's path with a small lateral offset. Copy the patient before
  // appending — push_back may reallocate the vector.
  const core::Trajectory patient = population[100];
  uint64_t next_id = population.size() + 1;
  for (int contact = 0; contact < 3; ++contact) {
    core::Trajectory shadow;
    shadow.id = next_id++;
    const double offset = (contact + 1) * 0.01 * workload::kKm;  // ~10-30m
    for (const geo::Point& p : patient.points) {
      shadow.points.push_back(geo::Point{p.x + offset, p.y + offset});
    }
    population.push_back(std::move(shadow));
  }

  Stopwatch ingest;
  Status s = coordinator.PutBatch(population);
  if (!s.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (auto& store : stores) store->Flush();
  std::printf("ingested %zu trajectories across %zu shards in %.1f ms\n",
              population.size(), kShards, ingest.ElapsedMillis());
  std::printf("patient trajectory: id=%llu, %zu points\n",
              static_cast<unsigned long long>(patient.id),
              patient.points.size());

  // --- act 1: healthy tier ------------------------------------------
  std::vector<core::SearchResult> contacts;
  core::QueryMetrics metrics;
  serve::CoordinatorQueryOptions query_options;
  query_options.query.allow_partial = true;
  query_options.query.deadline_ms = 2000.0;
  s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                  core::Measure::kFrechet, &contacts,
                                  &metrics, query_options);
  if (!s.ok()) {
    std::fprintf(stderr, "search failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\n[healthy tier] close contacts within ~50m (Frechet): %zu "
              "found in %.2f ms (%llu/%zu shards answered)\n",
              contacts.size(), metrics.total_ms,
              static_cast<unsigned long long>(metrics.shards_contacted -
                                              metrics.shards_skipped),
              kShards);
  PrintContacts(contacts, patient.id);

  // --- act 2: shard 2 wedges — hangs without answering --------------
  std::printf("\n*** wedging shard %zu (hangs, never answers) ***\n",
              kWedgedShard);
  transports[kWedgedShard]->SetWedged(true);

  for (int round = 1; round <= 3; ++round) {
    s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                    core::Measure::kFrechet, &contacts,
                                    &metrics, query_options);
    if (!s.ok()) {
      std::fprintf(stderr, "degraded search failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("\n[degraded, query %d] %zu verified contacts in %.2f ms — "
                "%s, shards skipped: %llu, breaker rejections: %llu\n",
                round, contacts.size(), metrics.total_ms,
                metrics.partial ? "PARTIAL (gap reported)" : "complete",
                static_cast<unsigned long long>(metrics.shards_skipped),
                static_cast<unsigned long long>(metrics.breaker_open));
    PrintContacts(contacts, patient.id);
    // Every result in a partial answer is still a true contact — the
    // tier returns a verified subset, never a wrong merge.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\nper-shard serving stats:\n");
  const auto stats = coordinator.Stats();
  for (size_t i = 0; i < stats.size(); ++i) {
    std::printf("  shard %zu [%s]: breaker=%s trips=%llu rejected=%llu "
                "attempts=%llu failures=%llu hedges=%llu p95=%.2fms\n",
                i, stats[i].endpoint.c_str(),
                BreakerStateName(stats[i].breaker_state),
                static_cast<unsigned long long>(stats[i].breaker_trips),
                static_cast<unsigned long long>(stats[i].breaker_rejected),
                static_cast<unsigned long long>(stats[i].attempts),
                static_cast<unsigned long long>(stats[i].failures),
                static_cast<unsigned long long>(stats[i].hedges_sent),
                stats[i].p95_latency_ms);
  }

  // --- act 3: the shard recovers; the breaker's half-open probe
  // reinstates it and answers are complete again ---------------------
  transports[kWedgedShard]->SetWedged(false);
  std::printf("\n*** shard %zu recovers; waiting out the breaker cooldown "
              "***\n", kWedgedShard);
  std::this_thread::sleep_for(std::chrono::milliseconds(5100));
  s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                  core::Measure::kFrechet, &contacts,
                                  &metrics, query_options);
  if (!s.ok()) {
    std::fprintf(stderr, "recovered search failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("\n[recovered] %zu contacts in %.2f ms — %s, shards skipped: "
              "%llu\n",
              contacts.size(), metrics.total_ms,
              metrics.partial ? "PARTIAL" : "complete",
              static_cast<unsigned long long>(metrics.shards_skipped));
  PrintContacts(contacts, patient.id);
  return 0;
}
