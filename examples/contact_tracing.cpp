// Contact tracing (the paper's motivating example), served the way a
// health authority would actually run it: a 4-shard scatter-gather tier
// behind a ShardCoordinator. Given the trajectory of an infected
// person, find every trajectory that stayed within a contact distance
// of it — a threshold similarity search fanned out across the shards.
//
// The second act is the point of the serving tier: the tier keeps two
// replicas of every trajectory (R=2), so when one shard dies outright —
// process killed, every request erroring — the same *strict* query
// (allow_partial=false) stays complete: reads fail over to the
// surviving replica of each key range and the loss is absorbed as
// QueryMetrics::shard_failovers, not a partial answer. Ingest keeps
// running too: evening trips ack at write quorum 1 while the dead
// replica's copies are captured in the coordinator's hinted-handoff
// journal.
//
// The third act closes the loop: the shard comes back, the breaker's
// half-open probe reinstates it, ReplayHints drains the journal onto
// the recovered shard, and a final query confirms nothing was lost.
//
//   ./build/examples/contact_tracing [directory]

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "serve/coordinator.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "util/stopwatch.h"
#include "workload/generator.h"

namespace {

// ~50 meters expressed in normalized coordinates (earth -> [0,1]^2).
constexpr double kContactEps = 0.05 * trass::workload::kKm;
constexpr size_t kShards = 4;
constexpr size_t kKilledShard = 2;

const char* BreakerStateName(trass::serve::CircuitBreaker::State state) {
  switch (state) {
    case trass::serve::CircuitBreaker::State::kClosed: return "closed";
    case trass::serve::CircuitBreaker::State::kOpen: return "open";
    case trass::serve::CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

void PrintContacts(const std::vector<trass::core::SearchResult>& contacts,
                   uint64_t patient_id) {
  for (const auto& r : contacts) {
    if (r.id == patient_id) continue;
    std::printf("  contact id=%llu  max-separation=%.1fm\n",
                static_cast<unsigned long long>(r.id),
                r.distance / trass::workload::kKm * 1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_contact_tracing";
  kv::Env::Default()->RemoveDirRecursively(path);
  kv::Env::Default()->CreateDir(path);

  // --- stand up the tier: 4 shard stores behind fault-injectable
  // transports, a coordinator routing by trajectory hash -------------
  core::TrassOptions options;
  options.shards = 4;  // row-key sharding *within* each store
  std::vector<std::unique_ptr<core::TrassStore>> stores;
  std::vector<std::shared_ptr<serve::FaultInjectionTransport>> transports;
  std::vector<std::shared_ptr<serve::ShardTransport>> shard_transports;
  for (size_t i = 0; i < kShards; ++i) {
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(
        options, path + "/shard" + std::to_string(i), &store);
    if (!s.ok()) {
      std::fprintf(stderr, "open shard %zu failed: %s\n", i,
                   s.ToString().c_str());
      return 1;
    }
    // Wrap every shard in a fault-injection transport (benign until we
    // flip one to wedged below).
    auto transport = std::make_shared<serve::FaultInjectionTransport>(
        std::make_shared<serve::DirectShardTransport>(store.get()),
        serve::FaultInjectionTransport::Options{});
    transports.push_back(transport);
    shard_transports.push_back(transport);
    stores.push_back(std::move(store));
  }

  serve::CoordinatorOptions coordinator_options;
  coordinator_options.max_resolution = options.max_resolution;
  coordinator_options.breaker_failure_threshold = 2;
  coordinator_options.breaker_cooldown_ms = 1000.0;
  coordinator_options.max_shard_retries = 0;  // a dead shard is not transient
  // Two copies of every trajectory on distinct shards: any single shard
  // can die without losing a key range. Writes ack at one durable copy;
  // the other is hinted if its shard is down.
  coordinator_options.replication_factor = 2;
  coordinator_options.write_quorum = 1;
  coordinator_options.write_deadline_ms = 500.0;
  coordinator_options.hint_journal_dir = path + "/hints";
  serve::ShardCoordinator coordinator(coordinator_options,
                                      std::move(shard_transports));
  if (!coordinator.hint_journal_status().ok()) {
    std::fprintf(stderr, "hint journal failed to open: %s\n",
                 coordinator.hint_journal_status().ToString().c_str());
    return 1;
  }

  // A city's day of movement: 5000 trips, some of which shadow others.
  auto population = workload::TDriveLike(5000, /*seed=*/2026);
  // Plant a few known "close contacts": trajectories that follow the
  // patient's path with a small lateral offset. Copy the patient before
  // appending — push_back may reallocate the vector.
  const core::Trajectory patient = population[100];
  uint64_t next_id = population.size() + 1;
  for (int contact = 0; contact < 3; ++contact) {
    core::Trajectory shadow;
    shadow.id = next_id++;
    const double offset = (contact + 1) * 0.01 * workload::kKm;  // ~10-30m
    for (const geo::Point& p : patient.points) {
      shadow.points.push_back(geo::Point{p.x + offset, p.y + offset});
    }
    population.push_back(std::move(shadow));
  }

  Stopwatch ingest;
  serve::WriteReport report;
  Status s = coordinator.PutBatch(population, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (auto& store : stores) store->Flush();
  std::printf("ingested %zu trajectories x%d replicas across %zu shards "
              "in %.1f ms (%llu acked at quorum)\n",
              population.size(), coordinator_options.replication_factor,
              kShards, ingest.ElapsedMillis(),
              static_cast<unsigned long long>(report.acked));
  std::printf("patient trajectory: id=%llu, %zu points\n",
              static_cast<unsigned long long>(patient.id),
              patient.points.size());

  // --- act 1: healthy tier ------------------------------------------
  // Strict queries: with R=2 the tier never needs to settle for a
  // partial answer through a single shard loss, so don't allow one.
  std::vector<core::SearchResult> contacts;
  core::QueryMetrics metrics;
  serve::CoordinatorQueryOptions query_options;
  query_options.query.allow_partial = false;
  query_options.query.deadline_ms = 2000.0;
  s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                  core::Measure::kFrechet, &contacts,
                                  &metrics, query_options);
  if (!s.ok()) {
    std::fprintf(stderr, "search failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\n[healthy tier] close contacts within ~50m (Frechet): %zu "
              "found in %.2f ms (%llu/%zu shards answered)\n",
              contacts.size(), metrics.total_ms,
              static_cast<unsigned long long>(metrics.shards_contacted -
                                              metrics.shards_skipped),
              kShards);
  PrintContacts(contacts, patient.id);

  // --- act 2: shard 2 dies — process killed, every request errors ---
  std::printf("\n*** killing shard %zu (process down, every request "
              "errors) ***\n", kKilledShard);
  serve::FaultInjectionTransport::Options dead;
  dead.error_probability = 1.0;
  transports[kKilledShard]->SetOptions(dead);

  for (int round = 1; round <= 3; ++round) {
    s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                    core::Measure::kFrechet, &contacts,
                                    &metrics, query_options);
    if (!s.ok()) {
      std::fprintf(stderr, "search during outage failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    // Strict and still complete: every key range the dead shard held
    // has a live replica, and the merge dedups by trajectory id.
    std::printf("\n[shard down, query %d] %zu contacts in %.2f ms — %s, "
                "replica failovers: %llu, breaker rejections: %llu\n",
                round, contacts.size(), metrics.total_ms,
                metrics.partial ? "PARTIAL" : "complete (strict)",
                static_cast<unsigned long long>(metrics.shard_failovers),
                static_cast<unsigned long long>(metrics.breaker_open));
    PrintContacts(contacts, patient.id);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Ingest doesn't stop for the outage either: the evening's trips ack
  // at quorum 1 on the surviving replicas while the dead shard's
  // copies are captured durably in the hinted-handoff journal.
  auto evening = workload::TDriveLike(500, /*seed=*/2027);
  for (auto& t : evening) t.id = next_id++;
  s = coordinator.PutBatch(evening, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "ingest during outage failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  const auto journal_stats = coordinator.hint_journal()->stats();
  std::printf("\n[shard down] ingested %zu evening trips: %llu acked at "
              "quorum, %llu under-replicated, %llu rows hinted "
              "(journal holds %llu rows)\n",
              evening.size(),
              static_cast<unsigned long long>(report.acked),
              static_cast<unsigned long long>(report.under_replicated),
              static_cast<unsigned long long>(report.hinted_rows),
              static_cast<unsigned long long>(journal_stats.pending_rows));

  std::printf("\nper-shard serving stats:\n");
  const auto stats = coordinator.Stats();
  for (size_t i = 0; i < stats.size(); ++i) {
    std::printf("  shard %zu [%s]: breaker=%s trips=%llu rejected=%llu "
                "attempts=%llu failures=%llu hedges=%llu p95=%.2fms\n",
                i, stats[i].endpoint.c_str(),
                BreakerStateName(stats[i].breaker_state),
                static_cast<unsigned long long>(stats[i].breaker_trips),
                static_cast<unsigned long long>(stats[i].breaker_rejected),
                static_cast<unsigned long long>(stats[i].attempts),
                static_cast<unsigned long long>(stats[i].failures),
                static_cast<unsigned long long>(stats[i].hedges_sent),
                stats[i].p95_latency_ms);
  }

  // --- act 3: the shard comes back; the half-open probe reinstates
  // it and hint replay delivers everything it missed -----------------
  transports[kKilledShard]->SetOptions(
      serve::FaultInjectionTransport::Options{});
  std::printf("\n*** shard %zu restarts; waiting out the breaker cooldown, "
              "then replaying hints ***\n", kKilledShard);
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  serve::HintReplayReport replay_total;
  Stopwatch catchup;
  while (coordinator.hint_journal()->pending_records() > 0 &&
         catchup.ElapsedMillis() < 30000.0) {
    serve::HintReplayReport replay;
    s = coordinator.ReplayHints(&replay);
    if (!s.ok()) {
      std::fprintf(stderr, "hint replay failed: %s\n", s.ToString().c_str());
      return 1;
    }
    replay_total.replayed += replay.replayed;
    replay_total.replayed_rows += replay.replayed_rows;
    if (coordinator.hint_journal()->pending_records() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  std::printf("replayed %llu hints (%llu rows) onto shard %zu in %.1f ms; "
              "journal now holds %llu pending rows\n",
              static_cast<unsigned long long>(replay_total.replayed),
              static_cast<unsigned long long>(replay_total.replayed_rows),
              kKilledShard, catchup.ElapsedMillis(),
              static_cast<unsigned long long>(
                  coordinator.hint_journal()->stats().pending_rows));

  s = coordinator.ThresholdSearch(patient.points, kContactEps,
                                  core::Measure::kFrechet, &contacts,
                                  &metrics, query_options);
  if (!s.ok()) {
    std::fprintf(stderr, "recovered search failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("\n[recovered] %zu contacts in %.2f ms — %s, replica "
              "failovers: %llu\n",
              contacts.size(), metrics.total_ms,
              metrics.partial ? "PARTIAL" : "complete (strict)",
              static_cast<unsigned long long>(metrics.shard_failovers));
  PrintContacts(contacts, patient.id);
  return 0;
}
