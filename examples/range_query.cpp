// Spatial range query on the XZ* index (the paper's conclusion notes the
// index also supports range queries): find all trajectories passing
// through a window, and compare the index-driven scan with a full scan.
//
//   ./build/examples/range_query [directory]

#include <cstdio>
#include <memory>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "util/stopwatch.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_range_query";
  kv::Env::Default()->RemoveDirRecursively(path);

  core::TrassOptions options;
  options.shards = 4;
  std::unique_ptr<core::TrassStore> store;
  Status s = core::TrassStore::Open(options, path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const auto data = workload::TDriveLike(8000, /*seed=*/5);
  for (const auto& trajectory : data) {
    s = store->Put(trajectory);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  store->Flush();
  std::printf("ingested %zu trajectories\n", data.size());

  // A ~2km x 2km window in the middle of the city.
  const geo::Point center = geo::Mbr::Of(data[0].points).center();
  const double half = 1.0 * workload::kKm;
  const geo::Mbr window(center.x - half, center.y - half, center.x + half,
                        center.y + half);

  std::vector<uint64_t> ids;
  core::QueryMetrics metrics;
  s = store->RangeQuery(window, &ids, &metrics);
  if (!s.ok()) {
    std::fprintf(stderr, "range query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nindexed range query: %zu trajectories in %.2f ms\n",
              ids.size(), metrics.total_ms);
  std::printf("  rows touched: %llu of %zu\n",
              static_cast<unsigned long long>(metrics.retrieved),
              data.size());

  // Full-scan reference for comparison.
  Stopwatch full;
  size_t full_count = 0;
  for (const auto& t : data) {
    for (const auto& p : t.points) {
      if (window.Contains(p)) {
        ++full_count;
        break;
      }
    }
  }
  std::printf("full scan reference: %zu trajectories in %.2f ms\n",
              full_count, full.ElapsedMillis());
  if (full_count != ids.size()) {
    std::fprintf(stderr, "MISMATCH: index %zu vs full scan %zu\n", ids.size(),
                 full_count);
    return 1;
  }
  std::printf("results match.\n");
  return 0;
}
