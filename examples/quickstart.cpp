// Quickstart: open a TraSS store, ingest a few trajectories, and run the
// two similarity searches plus a spatial range query.
//
//   ./build/examples/quickstart [directory]

#include <cstdio>
#include <memory>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_quickstart";
  kv::Env::Default()->RemoveDirRecursively(path);

  // 1. Open a store. Defaults follow the paper: 8 shards, XZ* max
  //    resolution 16, Douglas-Peucker tolerance 0.01.
  core::TrassOptions options;
  options.shards = 4;  // keep the demo small
  std::unique_ptr<core::TrassStore> store;
  Status s = core::TrassStore::Open(options, path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Ingest 2000 synthetic taxi trajectories (normalized lon/lat).
  const auto data = workload::TDriveLike(2000, /*seed=*/7);
  for (const auto& trajectory : data) {
    s = store->Put(trajectory);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  store->Flush();
  std::printf("ingested %llu trajectories\n",
              static_cast<unsigned long long>(store->num_trajectories()));

  // 3. Threshold similarity search: everything within eps of a query.
  const auto& query = data[42].points;
  std::vector<core::SearchResult> results;
  core::QueryMetrics metrics;
  s = store->ThresholdSearch(query, /*eps=*/0.002, core::Measure::kFrechet,
                             &results, &metrics);
  if (!s.ok()) {
    std::fprintf(stderr, "threshold search failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("\nthreshold search (eps=0.002): %zu results in %.2f ms "
              "(retrieved %llu rows, %llu candidates)\n",
              results.size(), metrics.total_ms,
              static_cast<unsigned long long>(metrics.retrieved),
              static_cast<unsigned long long>(metrics.candidates));
  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    std::printf("  id=%llu  frechet=%.6f\n",
                static_cast<unsigned long long>(results[i].id),
                results[i].distance);
  }

  // 4. Top-k similarity search.
  s = store->TopKSearch(query, /*k=*/5, core::Measure::kFrechet, &results,
                        &metrics);
  if (!s.ok()) {
    std::fprintf(stderr, "top-k search failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\ntop-5 search: %.2f ms\n", metrics.total_ms);
  for (const auto& r : results) {
    std::printf("  id=%llu  frechet=%.6f\n",
                static_cast<unsigned long long>(r.id), r.distance);
  }

  // 5. Spatial range query (which trajectories pass through a window?).
  const geo::Mbr window = geo::Mbr::Of(query).Expanded(0.001);
  std::vector<uint64_t> ids;
  s = store->RangeQuery(window, &ids);
  if (!s.ok()) {
    std::fprintf(stderr, "range query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nrange query around the query's bounding box: %zu "
              "trajectories\n", ids.size());
  return 0;
}
