// Carpool clustering (the paper's second motivating example): greedily
// group commute trajectories whose paths are mutually similar, using
// top-k similarity search to find each seed's nearest neighbours.
//
//   ./build/examples/carpool_clustering [directory]

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/trass_store.h"
#include "kv/env.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace trass;
  const std::string path = argc > 1 ? argv[1] : "/tmp/trass_carpool";
  kv::Env::Default()->RemoveDirRecursively(path);

  core::TrassOptions options;
  options.shards = 4;
  std::unique_ptr<core::TrassStore> store;
  Status s = core::TrassStore::Open(options, path, &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Commutes: many drivers, a handful of popular corridors. Generate a
  // base set and replicate it with jitter so clusters exist.
  const auto corridors = workload::TDriveLike(300, /*seed=*/99);
  const auto commutes =
      workload::Scale(corridors, /*times=*/8, /*jitter=*/0.00002, 17);
  for (const auto& trajectory : commutes) {
    s = store->Put(trajectory);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  store->Flush();
  std::printf("ingested %zu commute trajectories\n", commutes.size());

  // Greedy clustering: repeatedly take an unassigned commute as seed and
  // pull its top-k most similar unassigned commutes into a pool if they
  // are close enough to share a car.
  const double pool_eps = 0.5 * workload::kKm;  // paths within ~500 m
  const int k = 12;
  std::set<uint64_t> assigned;
  int pools = 0;
  size_t pooled_riders = 0;

  for (size_t seed = 0; seed < commutes.size() && pools < 8; ++seed) {
    const auto& trip = commutes[seed];
    if (assigned.count(trip.id)) continue;
    std::vector<core::SearchResult> nearest;
    core::QueryMetrics metrics;
    s = store->TopKSearch(trip.points, k, core::Measure::kFrechet, &nearest,
                          &metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "top-k failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<uint64_t> pool;
    for (const auto& r : nearest) {
      if (r.distance <= pool_eps && !assigned.count(r.id)) {
        pool.push_back(r.id);
      }
    }
    if (pool.size() < 3) continue;  // a carpool needs at least 3 riders
    ++pools;
    pooled_riders += pool.size();
    for (uint64_t id : pool) assigned.insert(id);
    std::printf("pool %d (seed id=%llu, query %.2f ms): %zu riders\n",
                pools, static_cast<unsigned long long>(trip.id),
                metrics.total_ms, pool.size());
  }
  std::printf("\nformed %d carpools covering %zu riders\n", pools,
              pooled_riders);
  return 0;
}
