#!/bin/bash
# Runs every benchmark binary sequentially, appending to bench_output.txt.
cd /root/repo
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "##### $b" >> bench_output.txt
    timeout 1200 "$b" >> bench_output.txt 2>&1
    echo "[exit $?] $b" >> bench_status.txt
  fi
done
echo ALL_BENCHES_DONE >> bench_status.txt
