#!/bin/bash
# Runs every benchmark binary sequentially, appending to bench_output.txt.
# Fails fast: a missing bench directory, an empty binary set, or a
# non-zero bench exit aborts the run with a diagnostic instead of
# silently producing a partial bench_output.txt.
#
# Usage: run_benches.sh [--replication N]
#   --replication N   replication factor for the availability passes
#                     (bench_fig18_tail_latency's failover-vs-skip
#                     table); exported as TRASS_BENCH_REPLICATION.
set -u
cd /root/repo || exit 1

while [ $# -gt 0 ]; do
  case "$1" in
    --replication)
      if [ $# -lt 2 ]; then
        echo "run_benches.sh: --replication needs a value" >&2
        exit 1
      fi
      export TRASS_BENCH_REPLICATION="$2"
      shift 2
      ;;
    --replication=*)
      export TRASS_BENCH_REPLICATION="${1#--replication=}"
      shift
      ;;
    *)
      echo "run_benches.sh: unknown argument: $1" >&2
      exit 1
      ;;
  esac
done

if [ ! -d build/bench ]; then
  echo "run_benches.sh: build/bench not found (build with -DTRASS_BUILD_BENCHMARKS=ON first)" >&2
  exit 1
fi

benches=()
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    benches+=("$b")
  fi
done
if [ "${#benches[@]}" -eq 0 ]; then
  echo "run_benches.sh: no executable benchmarks in build/bench" >&2
  exit 1
fi

: > bench_output.txt
: > bench_status.txt
for b in "${benches[@]}"; do
  echo "##### $b" >> bench_output.txt
  timeout 1200 "$b" >> bench_output.txt 2>&1
  rc=$?
  echo "[exit $rc] $b" >> bench_status.txt
  if [ "$rc" -ne 0 ]; then
    echo "run_benches.sh: $b exited with $rc (see bench_output.txt)" >&2
    exit "$rc"
  fi
done

# Coordinator-mode passes: the same fig17/fig19 workloads served by a
# 4-shard scatter-gather tier, so the snapshot records the serving-tier
# latency medians plus its hedge/partial/shed rates next to the
# single-store numbers above.
for b in build/bench/bench_fig17_scalability build/bench/bench_fig19_shards; do
  if [ -x "$b" ]; then
    echo "##### $b --shards 4" >> bench_output.txt
    timeout 1200 "$b" --shards 4 >> bench_output.txt 2>&1
    rc=$?
    echo "[exit $rc] $b --shards 4" >> bench_status.txt
    if [ "$rc" -ne 0 ]; then
      echo "run_benches.sh: $b --shards 4 exited with $rc (see bench_output.txt)" >&2
      exit "$rc"
    fi
  fi
done

# Filter-tier snapshot: the fig11 supplement re-runs just the filter
# pass and records the sparse-region reduction ratios plus the prune
# counters as JSON. Committed snapshots (BENCH_fig11_filter.json) are
# the regression baseline; the pass itself exits non-zero if answers
# diverge filter-on vs filter-off or the reduction drops below 5x.
if [ -x build/bench/bench_fig11_pruning ]; then
  timeout 1200 build/bench/bench_fig11_pruning --filter-only \
    --filter_out=BENCH_fig11_filter.json >> bench_output.txt 2>&1
  rc=$?
  echo "[exit $rc] BENCH_fig11_filter.json" >> bench_status.txt
  if [ "$rc" -ne 0 ]; then
    echo "run_benches.sh: filter-tier snapshot failed with $rc" >&2
    exit "$rc"
  fi
fi

# Machine-readable kernel baseline: the micro similarity bench carries
# both the scalar reference kernels and the flat SoA kernels the
# refinement engine serves with, so one JSON snapshot records the
# before/after pair. Committed snapshots (BENCH_micro_similarity.json)
# are the regression baseline to diff against.
if [ -x build/bench/bench_micro_similarity ]; then
  timeout 1200 build/bench/bench_micro_similarity \
    --benchmark_out=BENCH_micro_similarity.json \
    --benchmark_out_format=json >> bench_output.txt 2>&1
  rc=$?
  echo "[exit $rc] BENCH_micro_similarity.json" >> bench_status.txt
  if [ "$rc" -ne 0 ]; then
    echo "run_benches.sh: kernel baseline JSON failed with $rc" >&2
    exit "$rc"
  fi
fi
# KV-engine baseline: the storage micro bench (sequential/random puts,
# point gets, range scans) as JSON. Committed snapshots
# (BENCH_micro_kv.json) are the regression baseline for the engine's
# raw-speed passes; the mixed-load view (stalls, scan MB/s, readahead)
# lives in bench_kv_mixed's section of bench_output.txt above.
if [ -x build/bench/bench_micro_kv ]; then
  timeout 1200 build/bench/bench_micro_kv \
    --benchmark_out=BENCH_micro_kv.json \
    --benchmark_out_format=json >> bench_output.txt 2>&1
  rc=$?
  echo "[exit $rc] BENCH_micro_kv.json" >> bench_status.txt
  if [ "$rc" -ne 0 ]; then
    echo "run_benches.sh: KV baseline JSON failed with $rc" >&2
    exit "$rc"
  fi
fi
echo ALL_BENCHES_DONE >> bench_status.txt
