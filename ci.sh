#!/bin/bash
# CI entry point: builds and tests the three configurations the project
# promises to keep green —
#   release   plain Release, all targets (tests + benches + examples)
#   asan      ASan + UBSan, tests only
#   tsan      TSan, tests only (failover/scrub/scan concurrency races)
#
# Usage: ci.sh [release|asan|tsan ...]   (default: all three, in order)
#
# Each configuration gets its own build tree under build-ci/ so a local
# developer build/ is never clobbered. Fails fast on the first broken
# configuration.
set -euo pipefail
cd "$(dirname "$0")"

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(release asan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local dir="build-ci/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== [$name] OK ==="
}

for config in "${configs[@]}"; do
  case "$config" in
    release)
      run_config release
      echo "=== [release] bench smoke ==="
      build-ci/release/bench/bench_micro_similarity --smoke
      build-ci/release/bench/bench_fig09_threshold --smoke
      build-ci/release/bench/bench_fig10_topk --smoke
      echo "=== [release] bench smoke OK ==="
      ;;
    asan)
      run_config asan \
        -DTRASS_SANITIZE=address,undefined \
        -DTRASS_BUILD_BENCHMARKS=OFF -DTRASS_BUILD_EXAMPLES=OFF
      ;;
    tsan)
      run_config tsan \
        -DTRASS_SANITIZE=thread \
        -DTRASS_BUILD_BENCHMARKS=OFF -DTRASS_BUILD_EXAMPLES=OFF
      ;;
    *)
      echo "ci.sh: unknown configuration: $config (want release|asan|tsan)" >&2
      exit 1
      ;;
  esac
done
echo "ci.sh: all configurations green"
