#!/bin/bash
# CI entry point: builds and tests the three configurations the project
# promises to keep green —
#   release   plain Release, all targets (tests + benches + examples)
#   asan      ASan + UBSan, tests only
#   tsan      TSan, tests only (failover/scrub/scan concurrency races)
#
# Plus one opt-in stage (never part of the default set):
#   chaos     ASan build of the resource-exhaustion fault matrix plus
#             the coordinator transport-fault matrix, run once per seed
#             in a fixed schedule. A failing run prints the seed; rerun
#             just it with TRASS_CHAOS_SEED=<seed>.
#
# Usage: ci.sh [release|asan|tsan|chaos ...]   (default: release asan tsan)
#
# Each configuration gets its own build tree under build-ci/ so a local
# developer build/ is never clobbered. Fails fast on the first broken
# configuration.
set -euo pipefail
cd "$(dirname "$0")"

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(release asan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local dir="build-ci/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== [$name] OK ==="
}

for config in "${configs[@]}"; do
  case "$config" in
    release)
      run_config release
      echo "=== [release] bench smoke ==="
      build-ci/release/bench/bench_micro_similarity --smoke
      build-ci/release/bench/bench_fig09_threshold --smoke
      build-ci/release/bench/bench_fig10_topk --smoke
      # Filter-tier gate: byte-identical answers filter-on vs -off and
      # the >= 5x sparse-region reduction (non-zero exit on either).
      build-ci/release/bench/bench_fig11_pruning --smoke
      # KV-engine mixed-load gate: row counts identical with background
      # compaction + readahead on vs off, readahead actually used, the
      # background thread actually compacted (non-zero exit on any).
      build-ci/release/bench/bench_kv_mixed --smoke
      # Ingest gate: write path + sustained ingest/query mix complete
      # with zero failed queries while compactions run in background.
      build-ci/release/bench/bench_ingest --smoke
      echo "=== [release] bench smoke OK ==="
      ;;
    asan)
      run_config asan \
        -DTRASS_SANITIZE=address,undefined \
        -DTRASS_BUILD_BENCHMARKS=OFF -DTRASS_BUILD_EXAMPLES=OFF
      ;;
    tsan)
      run_config tsan \
        -DTRASS_SANITIZE=thread \
        -DTRASS_BUILD_BENCHMARKS=OFF -DTRASS_BUILD_EXAMPLES=OFF
      ;;
    chaos)
      dir="build-ci/chaos"
      echo "=== [chaos] configure ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DTRASS_SANITIZE=address,undefined \
        -DTRASS_BUILD_BENCHMARKS=OFF -DTRASS_BUILD_EXAMPLES=OFF
      echo "=== [chaos] build ==="
      cmake --build "$dir" -j "$jobs" \
        --target resource_exhaustion_test coordinator_test filter_tier_test
      # Fixed seed schedule so CI runs are comparable across commits;
      # each seed drives one randomized fault/budget/crash trial of the
      # store matrix, one randomized drop/delay/duplicate/error/wedge
      # schedule of the coordinator read matrix, and one randomized
      # kill/wedge-a-replica schedule of the coordinator write matrix
      # (quorum acks + hinted handoff + replay: no acked write may be
      # lost, no strict query may go partial), and one crash-mid-ingest
      # schedule of the filter tier (the reopened tier must agree with
      # whatever the WAL recovered). The ResourceExhaustionChaos matrix
      # also carries the crash-during-background-compaction schedule
      # (filesystem severed while the compaction thread is mid-merge;
      # synced rows must survive the reopen).
      seeds=(20240808 1 7 42 1337 99991 2718281 31415926)
      for seed in "${seeds[@]}"; do
        for matrix in \
            "resource_exhaustion_test ResourceExhaustionChaos.*" \
            "coordinator_test CoordinatorChaos.*" \
            "coordinator_test CoordinatorWriteChaos.*" \
            "filter_tier_test FilterChaos.*"; do
          binary="${matrix%% *}"
          filter="${matrix#* }"
          echo "=== [chaos] $binary seed $seed ==="
          if ! TRASS_CHAOS_SEED="$seed" "$dir/tests/$binary" \
              --gtest_filter="$filter"; then
            echo "ci.sh: chaos schedule failed at seed $seed ($binary)" >&2
            echo "ci.sh: reproduce with: TRASS_CHAOS_SEED=$seed $dir/tests/$binary --gtest_filter='$filter'" >&2
            exit 1
          fi
        done
      done
      echo "=== [chaos] OK ==="
      ;;
    *)
      echo "ci.sh: unknown configuration: $config (want release|asan|tsan|chaos)" >&2
      exit 1
      ;;
  esac
done
echo "ci.sh: all configurations green"
