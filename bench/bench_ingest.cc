// Online ingest pipeline benchmark (DESIGN.md "Ingest pipeline"):
//
//   table 1 — write-path throughput: per-row Put vs PutBatch group
//             commit at batch sizes 8/32/128 and the async pipeline.
//             Group commit's win is one WAL record per region per batch
//             instead of one per row; the acceptance bar is >= 2x over
//             per-row Put at batch >= 32.
//   table 2 — sustained SubmitAsync under a concurrent query mix:
//             ingest throughput, Submit latency percentiles, shed rate,
//             and the query-side view (queries keep answering, each at a
//             consistent watermark).
//   table 3 — backpressure: a bursty arrival stream offered faster than
//             the pipeline drains against a small queue; sheds are
//             explicit (Status::Busy), never unbounded blocking.
//   table 4 — low disk space (DESIGN.md "Resource-exhaustion failure
//             model"): writes against a shrinking byte budget cross the
//             soft watermark (per-write stalls, measured as a latency
//             distribution), then the hard watermark (clean sheds), and
//             finally the disk "is replaced" — time-to-resume is the
//             wall clock from freeing space to the first accepted write.

//   coordinator mode (--shards N) — quorum-write throughput through
//             the serving tier at R=1 / R=2 W=1 / R=2 W=2, then a
//             kill-one-shard run: hinted ingest stays up while a
//             replica is dead, and the hint-replay catch-up wall time
//             is measured from the moment the shard heals.

#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/metrics.h"
#include "core/trass_store.h"
#include "kv/fault_injection_env.h"
#include "serve/coordinator.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

double PayloadMegabytes(const std::vector<core::Trajectory>& data) {
  size_t bytes = 0;
  for (const auto& t : data) bytes += t.points.size() * sizeof(geo::Point);
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

std::unique_ptr<core::TrassStore> FreshStore(const std::string& dir,
                                             const std::string& name,
                                             bool durable = false) {
  core::TrassOptions options;
  // Durable mode fsyncs every WAL append — the regime group commit
  // exists for: per-row Put pays one fsync per trajectory, a batch pays
  // one per touched region.
  options.db_options.sync_wal = durable;
  const std::string path = dir + "/" + name;
  kv::Env::Default()->RemoveDirRecursively(path);
  std::unique_ptr<core::TrassStore> store;
  if (!core::TrassStore::Open(options, path, &store).ok()) return nullptr;
  return store;
}

// Returns false if any store operation failed (the --smoke gate).
bool RunWritePathTable(const Dataset& dataset, const std::string& dir,
                       bool durable) {
  const double mb = PayloadMegabytes(dataset.data);
  std::printf("\n=== Ingest write path (%s WAL) — %s (%zu trajectories, "
              "%.1f MB of points) ===\n",
              durable ? "synced" : "unsynced", dataset.name.c_str(),
              dataset.data.size(), mb);
  std::printf("%-18s %12s %12s %12s\n", "variant", "time-ms", "rows/s",
              "vs per-row");
  PrintRule(60);

  double per_row_ms = 0.0;
  {
    auto store = FreshStore(dir, "put", durable);
    if (!store) return false;
    Stopwatch timer;
    for (const auto& t : dataset.data) {
      if (!store->Put(t).ok()) return false;
    }
    per_row_ms = timer.ElapsedMillis();
    std::printf("%-18s %12.1f %12.0f %12s\n", "put-per-row", per_row_ms,
                dataset.data.size() / per_row_ms * 1000.0, "1.00x");
  }

  for (size_t batch : {size_t{8}, size_t{32}, size_t{128}}) {
    auto store = FreshStore(dir, "putbatch", durable);
    if (!store) return false;
    Stopwatch timer;
    for (size_t i = 0; i < dataset.data.size(); i += batch) {
      const size_t end = std::min(i + batch, dataset.data.size());
      std::vector<core::Trajectory> chunk(dataset.data.begin() + i,
                                          dataset.data.begin() + end);
      if (!store->PutBatch(chunk).ok()) return false;
    }
    const double ms = timer.ElapsedMillis();
    std::printf("put-batch-%-8zu %12.1f %12.0f %11.2fx\n", batch, ms,
                dataset.data.size() / ms * 1000.0, per_row_ms / ms);
  }

  {
    auto store = FreshStore(dir, "async", durable);
    if (!store) return false;
    Stopwatch timer;
    for (const auto& t : dataset.data) {
      Status s;
      do {
        s = store->SubmitAsync(t, 100);
      } while (s.IsBusy());
      if (!s.ok()) return false;
    }
    if (!store->DrainIngest(600000).ok()) return false;
    const double ms = timer.ElapsedMillis();
    const auto stats = store->ingest_stats();
    std::printf("%-18s %12.1f %12.0f %11.2fx   (batches %llu, max batch "
                "%llu)\n",
                "submit-async", ms, dataset.data.size() / ms * 1000.0,
                per_row_ms / ms,
                static_cast<unsigned long long>(stats.batches_committed),
                static_cast<unsigned long long>(stats.max_batch_rows));
  }
  return true;
}

// Returns false if ingest failed or any concurrent query errored (the
// --smoke gate: the engine must stay correct under the mixed load).
bool RunConcurrentQueryTable(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Sustained ingest + query mix — %s ===\n",
              dataset.name.c_str());
  auto store = FreshStore(dir, "mixed");
  if (!store) return false;

  // Seed a third of the data so early queries have something to chew on.
  const size_t seed_count = dataset.data.size() / 3;
  std::vector<core::Trajectory> seed(dataset.data.begin(),
                                     dataset.data.begin() + seed_count);
  if (!store->PutBatch(seed).ok()) return false;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> query_failures{0};
  std::thread querier([&] {
    const double eps = EpsNorm(0.01);
    size_t qi = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<core::SearchResult> results;
      core::QueryMetrics metrics;
      if (store
              ->ThresholdSearch(dataset.Query(qi++), eps,
                                core::Measure::kFrechet, &results, &metrics)
              .ok()) {
        queries.fetch_add(1, std::memory_order_relaxed);
      } else {
        query_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Histogram submit_latency;  // microseconds
  Stopwatch timer;
  bool failed = false;
  for (size_t i = seed_count; i < dataset.data.size(); ++i) {
    Stopwatch one;
    Status s;
    do {
      s = store->SubmitAsync(dataset.data[i], 100);
    } while (s.IsBusy());
    submit_latency.Add(one.ElapsedMillis() * 1000.0);
    if (!s.ok()) {
      failed = true;
      break;
    }
  }
  if (!failed && !store->DrainIngest(600000).ok()) failed = true;
  const double ms = timer.ElapsedMillis();
  done.store(true);
  querier.join();
  if (failed) return false;

  const auto stats = store->ingest_stats();
  const size_t ingested = dataset.data.size() - seed_count;
  std::printf("ingested %zu rows in %.1f ms (%.0f rows/s) while answering "
              "%llu queries (%llu failed)\n",
              ingested, ms, ingested / ms * 1000.0,
              static_cast<unsigned long long>(queries.load()),
              static_cast<unsigned long long>(query_failures.load()));
  std::printf("submit latency us: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
              submit_latency.Percentile(50), submit_latency.Percentile(95),
              submit_latency.Percentile(99), submit_latency.Max());
  std::printf("sheds %llu  batches %llu  max-batch %llu  queue-high-water "
              "%llu\n",
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.batches_committed),
              static_cast<unsigned long long>(stats.max_batch_rows),
              static_cast<unsigned long long>(stats.queue_high_water));
  return query_failures.load() == 0;
}

void RunBackpressureTable(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Backpressure — bursty offered load, queue capacity 256 "
              "— %s ===\n",
              dataset.name.c_str());
  core::TrassOptions options;
  options.ingest_queue_capacity = 256;
  const std::string path = dir + "/backpressure";
  kv::Env::Default()->RemoveDirRecursively(path);
  std::unique_ptr<core::TrassStore> store;
  if (!core::TrassStore::Open(options, path, &store).ok()) return;

  workload::StreamOptions stream_options;
  stream_options.burst_fraction = 0.3;
  stream_options.burst_multiplier = 20.0;
  const auto stream =
      workload::MakeStream(dataset.data, stream_options, /*seed=*/99);

  // Offer the stream faster than the pipeline drains: shed-on-full
  // (max_wait_ms = 0) makes backpressure visible as Busy rejections
  // instead of producer stalls.
  uint64_t shed = 0;
  Stopwatch timer;
  for (const auto& item : stream) {
    if (store->SubmitAsync(item.traj, 0).IsBusy()) ++shed;
  }
  if (!store->DrainIngest(600000).ok()) return;
  const double ms = timer.ElapsedMillis();
  const auto stats = store->ingest_stats();
  std::printf("offered %zu  accepted %llu  shed %llu (%.1f%%)  in %.1f ms; "
              "queue high water %llu/%zu\n",
              stream.size(),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(shed),
              100.0 * static_cast<double>(shed) /
                  static_cast<double>(stream.size()),
              ms, static_cast<unsigned long long>(stats.queue_high_water),
              options.ingest_queue_capacity);
}

void RunLowSpaceTable(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Low disk space — stall, shed, resume — %s ===\n",
              dataset.name.c_str());
  kv::FaultInjectionEnv env(kv::Env::Default());
  core::TrassOptions options;
  options.db_options.env = &env;
  // Budget a quarter of the payload so the stream outgrows the disk;
  // stall once free space halves, shed when only an eighth remains.
  const uint64_t payload =
      static_cast<uint64_t>(PayloadMegabytes(dataset.data) * 1024.0 * 1024.0);
  const uint64_t budget = std::max<uint64_t>(payload / 4, 2ull << 20);
  options.soft_space_watermark_bytes = budget / 2;
  options.hard_space_watermark_bytes = budget / 8;
  options.db_options.write_stall_ms = 1;
  const std::string path = dir + "/lowspace";
  kv::Env::Default()->RemoveDirRecursively(path);
  std::unique_ptr<core::TrassStore> store;
  if (!core::TrassStore::Open(options, path, &store).ok()) return;
  env.SetDiskSpaceBudget(budget);

  // Phase 1 — synchronous writes ride through the soft watermark; the
  // per-write stall shows up directly in the Put latency distribution.
  Histogram put_latency;  // microseconds
  size_t accepted = 0;
  size_t next_row = 0;
  while (next_row < dataset.data.size()) {
    Stopwatch one;
    const Status s = store->Put(dataset.data[next_row]);
    put_latency.Add(one.ElapsedMillis() * 1000.0);
    if (s.IsNoSpace()) break;  // hard watermark (or the budget itself)
    if (!s.ok()) return;
    ++accepted;
    ++next_row;
  }
  const auto stalled = store->region_store()->TotalIoStats();
  std::printf("disk %llu KB (soft %llu KB free, hard %llu KB free): "
              "accepted %zu rows before ENOSPC\n",
              static_cast<unsigned long long>(budget >> 10),
              static_cast<unsigned long long>(
                  options.soft_space_watermark_bytes >> 10),
              static_cast<unsigned long long>(
                  options.hard_space_watermark_bytes >> 10),
              accepted);
  std::printf("write stalls %llu  total stall %llu ms;  put latency us: "
              "p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
              static_cast<unsigned long long>(stalled.write_stalls),
              static_cast<unsigned long long>(stalled.stall_ms),
              put_latency.Percentile(50), put_latency.Percentile(95),
              put_latency.Percentile(99), put_latency.Max());

  // Phase 2 — past the hard watermark the async path keeps the failure
  // explicit: tickets shed with Busy (store wedged) or resolve as
  // commit failures (clean shed), never silent loss or a hang.
  uint64_t shed_busy = 0;
  const size_t offered = std::min<size_t>(500, dataset.data.size() - next_row);
  for (size_t i = 0; i < offered; ++i) {
    if (store->SubmitAsync(dataset.data[next_row + i], 0).IsBusy()) {
      ++shed_busy;
    }
  }
  if (!store->DrainIngest(600000).ok()) return;
  const auto istats = store->ingest_stats();
  const auto health = store->Health();
  std::printf("full disk: offered %zu async rows — %llu shed (Busy), %llu "
              "commit failures, %llu read-only replicas\n",
              offered, static_cast<unsigned long long>(shed_busy),
              static_cast<unsigned long long>(istats.commit_failures),
              static_cast<unsigned long long>(health.read_only_replicas));

  // Phase 3 — "replace the disk": lift the budget and measure the wall
  // clock until the store accepts a write again.
  env.SetDiskSpaceBudget(kv::FaultInjectionEnv::kUnlimitedBudget);
  Stopwatch resume_timer;
  Status resumed = store->Resume();
  Status first_write;
  for (int attempt = 0; attempt < 100; ++attempt) {
    first_write = store->Put(dataset.data[next_row]);
    if (first_write.ok() || !store->Resume().ok()) break;
  }
  const double resume_ms = resume_timer.ElapsedMillis();
  const auto final_stats = store->region_store()->TotalIoStats();
  std::printf("space freed: Resume %s, first write %s after %.1f ms "
              "(%llu resume attempts)\n",
              resumed.ok() ? "ok" : resumed.ToString().c_str(),
              first_write.ok() ? "accepted" : first_write.ToString().c_str(),
              resume_ms,
              static_cast<unsigned long long>(final_stats.resume_attempts));
}

// ---- coordinator mode (--shards N) ----

/// One stood-up replicated tier with a fault-injection layer between
/// the coordinator and every shard, so a "killed" shard is one
/// SetOptions call. Stores must outlive the coordinator.
struct ReplicatedTier {
  std::vector<std::unique_ptr<core::TrassStore>> stores;
  std::vector<std::shared_ptr<serve::FaultInjectionTransport>> faults;
  std::unique_ptr<serve::ShardCoordinator> coordinator;
};

ReplicatedTier OpenReplicatedTier(const std::string& dir,
                                  const std::string& name, size_t num_shards,
                                  serve::CoordinatorOptions options) {
  ReplicatedTier tier;
  const std::string base = dir + "/" + name;
  kv::Env::Default()->RemoveDirRecursively(base);
  kv::Env::Default()->CreateDir(base);
  core::TrassOptions store_options;
  options.max_resolution = store_options.max_resolution;
  std::vector<std::shared_ptr<serve::ShardTransport>> transports;
  for (size_t i = 0; i < num_shards; ++i) {
    std::unique_ptr<core::TrassStore> store;
    if (!core::TrassStore::Open(store_options,
                                base + "/shard" + std::to_string(i), &store)
             .ok()) {
      return ReplicatedTier{};
    }
    auto fault = std::make_shared<serve::FaultInjectionTransport>(
        std::make_shared<serve::DirectShardTransport>(store.get()),
        serve::FaultInjectionTransport::Options{});
    transports.push_back(fault);
    tier.faults.push_back(std::move(fault));
    tier.stores.push_back(std::move(store));
  }
  if (!options.hint_journal_dir.empty()) {
    kv::Env::Default()->CreateDir(options.hint_journal_dir);
  }
  tier.coordinator = std::make_unique<serve::ShardCoordinator>(
      options, std::move(transports));
  return tier;
}

void RunQuorumWriteTable(const Dataset& dataset, const std::string& dir,
                         size_t num_shards) {
  std::printf("\n=== Coordinator quorum writes — %zu shards — %s "
              "(%zu trajectories, batch 32) ===\n",
              num_shards, dataset.name.c_str(), dataset.data.size());
  std::printf("%-12s %12s %12s %10s %12s %12s\n", "config", "time-ms",
              "rows/s", "vs R=1", "acked", "under-repl");
  PrintRule(76);

  struct Config {
    int replication;
    int quorum;
  };
  std::vector<Config> configs = {{1, 1}, {2, 1}, {2, 2}};
  if (num_shards >= 3) configs.push_back({3, 2});

  double r1_ms = 0.0;
  for (const Config& config : configs) {
    serve::CoordinatorOptions options;
    options.replication_factor = config.replication;
    options.write_quorum = config.quorum;
    ReplicatedTier tier = OpenReplicatedTier(dir, "quorum", num_shards,
                                             options);
    if (!tier.coordinator) return;
    serve::WriteReport report;
    uint64_t acked = 0, under = 0;
    Stopwatch timer;
    for (size_t i = 0; i < dataset.data.size(); i += 32) {
      const size_t end = std::min(i + 32, dataset.data.size());
      std::vector<core::Trajectory> chunk(dataset.data.begin() + i,
                                          dataset.data.begin() + end);
      if (!tier.coordinator->PutBatch(chunk, &report).ok()) return;
      acked += report.acked;
      under += report.under_replicated;
    }
    const double ms = timer.ElapsedMillis();
    if (config.replication == 1) r1_ms = ms;
    char label[32];
    std::snprintf(label, sizeof(label), "R=%d W=%d", config.replication,
                  config.quorum);
    std::printf("%-12s %12.1f %12.0f %9.2fx %12llu %12llu\n", label, ms,
                dataset.data.size() / ms * 1000.0,
                r1_ms > 0.0 ? r1_ms / ms : 1.0,
                static_cast<unsigned long long>(acked),
                static_cast<unsigned long long>(under));
  }
}

void RunHintedHandoffTable(const Dataset& dataset, const std::string& dir,
                           size_t num_shards) {
  std::printf("\n=== Coordinator hinted handoff — kill one of %zu shards "
              "mid-ingest (R=2 W=1) — %s ===\n",
              num_shards, dataset.name.c_str());
  serve::CoordinatorOptions options;
  options.replication_factor = 2;
  options.write_quorum = 1;
  options.write_deadline_ms = 200.0;
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 100.0;
  options.hint_journal_dir = dir + "/handoff_hints";
  kv::Env::Default()->RemoveDirRecursively(options.hint_journal_dir);
  ReplicatedTier tier = OpenReplicatedTier(dir, "handoff", num_shards,
                                           options);
  if (!tier.coordinator) return;

  const size_t half = dataset.data.size() / 2;
  auto ingest = [&](size_t begin, size_t end, uint64_t* hinted) -> double {
    serve::WriteReport report;
    Stopwatch timer;
    for (size_t i = begin; i < end; i += 32) {
      const size_t stop = std::min(i + 32, end);
      std::vector<core::Trajectory> chunk(dataset.data.begin() + i,
                                          dataset.data.begin() + stop);
      if (!tier.coordinator->PutBatch(chunk, &report).ok()) return -1.0;
      if (hinted) *hinted += report.hinted_rows;
    }
    return timer.ElapsedMillis();
  };

  const double healthy_ms = ingest(0, half, nullptr);
  if (healthy_ms < 0.0) return;
  std::printf("healthy ingest: %zu rows in %.1f ms (%.0f rows/s)\n", half,
              healthy_ms, half / healthy_ms * 1000.0);

  // Kill shard 0: every request errors until the fault is lifted. The
  // first failed write trips its breaker, so later batches fast-reject
  // the dead replica and divert its rows straight to the hint journal.
  serve::FaultInjectionTransport::Options dead;
  dead.error_probability = 1.0;
  tier.faults[0]->SetOptions(dead);
  uint64_t hinted = 0;
  const double degraded_ms = ingest(half, dataset.data.size(), &hinted);
  if (degraded_ms < 0.0) return;
  const size_t rest = dataset.data.size() - half;
  std::printf("shard 0 dead:   %zu rows in %.1f ms (%.0f rows/s), all "
              "acked at quorum 1, %llu rows hinted\n",
              rest, degraded_ms, rest / degraded_ms * 1000.0,
              static_cast<unsigned long long>(hinted));

  // Heal the shard and measure catch-up: wall clock from lifting the
  // fault to an empty hint journal (replay is breaker-gated, so the
  // first pass rides the half-open probe once the cooldown expires).
  tier.faults[0]->SetOptions(serve::FaultInjectionTransport::Options{});
  serve::HintJournal* journal = tier.coordinator->hint_journal();
  if (journal == nullptr) return;
  const uint64_t backlog_rows = journal->stats().pending_rows;
  uint64_t replayed_rows = 0;
  Stopwatch catchup;
  while (journal->pending_records() > 0 &&
         catchup.ElapsedMillis() < 60000.0) {
    serve::HintReplayReport replay;
    if (!tier.coordinator->ReplayHints(&replay).ok()) return;
    replayed_rows += replay.replayed_rows;
    if (journal->pending_records() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  const double catchup_ms = catchup.ElapsedMillis();
  serve::ShardScrubReport scrub;
  if (!tier.coordinator->ScrubShards(&scrub).ok()) return;
  std::printf("shard 0 healed: %llu backlog rows replayed in %.1f ms "
              "(%.0f rows/s); scrub found %llu divergent groups\n",
              static_cast<unsigned long long>(backlog_rows), catchup_ms,
              catchup_ms > 0.0 ? replayed_rows / catchup_ms * 1000.0 : 0.0,
              static_cast<unsigned long long>(scrub.groups_divergent));
}

void RunCoordinatorMode(const Dataset& dataset, const std::string& dir,
                        size_t num_shards) {
  RunQuorumWriteTable(dataset, dir, num_shards);
  RunHintedHandoffTable(dataset, dir, num_shards);
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  using namespace trass::bench;
  size_t coordinator_shards = 0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      coordinator_shards = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::string dir = ScratchDir("ingest");
  if (smoke) {
    // CI regression gate: a scaled-down write-path pass plus the mixed
    // ingest+query pass. Exit 1 if any store op failed or a concurrent
    // query errored — the mixed pass is what background compaction must
    // not break.
    Dataset tdrive = MakeTDrive(std::min<size_t>(DefaultN(), 1500),
                                DefaultQueries());
    const bool ok = RunWritePathTable(tdrive, dir, /*durable=*/false) &&
                    RunConcurrentQueryTable(tdrive, dir);
    if (!ok) {
      std::fprintf(stderr, "bench_ingest --smoke: FAILED\n");
      return 1;
    }
    return 0;
  }
  // The write-path comparison dominates runtime; a reduced N keeps the
  // default bench sweep snappy while staying far above batch sizes.
  const size_t n = std::min<size_t>(DefaultN(), 8000);
  Dataset tdrive = MakeTDrive(n, DefaultQueries());
  if (coordinator_shards > 0) {
    RunCoordinatorMode(tdrive, dir, coordinator_shards);
    return 0;
  }
  RunWritePathTable(tdrive, dir, /*durable=*/true);
  RunWritePathTable(tdrive, dir, /*durable=*/false);
  RunConcurrentQueryTable(tdrive, dir);
  RunBackpressureTable(tdrive, dir);
  RunLowSpaceTable(tdrive, dir);
  return 0;
}
