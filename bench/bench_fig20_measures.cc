// Figure 20: efficiency under the other measures (Section VII) —
// Hausdorff and DTW. Per the paper: DITA has no Hausdorff support, DFT
// no DTW, REPOSE is top-k only; TraSS supports everything.

#include "bench_common.h"

#include "core/metrics.h"

namespace trass {
namespace bench {
namespace {

void RunMeasure(const Dataset& dataset, const std::string& dir,
                core::Measure measure, double eps) {
  std::printf("\n=== Figure 20 — %s — %s (eps=%.3g for threshold, k=50) "
              "===\n",
              core::MeasureName(measure), dataset.name.c_str(), eps);
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %18s %16s\n", "solution", "threshold-ms(p50)",
              "topk-ms(p50)");
  PrintRule(60);
  for (auto& searcher : searchers) {
    if (!searcher->Supports(measure)) {
      std::printf("%-22s (measure unsupported; skipped)\n",
                  searcher->name().c_str());
      continue;
    }
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    std::vector<double> threshold_ms, topk_ms;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (searcher->SupportsThreshold() &&
          searcher->Threshold(dataset.Query(q), EpsNorm(eps), measure, &found,
                              &metrics)
              .ok()) {
        threshold_ms.push_back(metrics.total_ms);
      }
      if (searcher->TopK(dataset.Query(q), 50, measure, &found, &metrics)
              .ok()) {
        topk_ms.push_back(metrics.total_ms);
      }
    }
    char tbuf[32] = "n/a";
    if (!threshold_ms.empty()) {
      std::snprintf(tbuf, sizeof(tbuf), "%.2f", Median(threshold_ms));
    }
    char kbuf[32] = "n/a";
    if (!topk_ms.empty()) {
      std::snprintf(kbuf, sizeof(kbuf), "%.2f", Median(topk_ms));
    }
    std::printf("%-22s %18s %16s\n", searcher->name().c_str(), tbuf, kbuf);
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig20");
  const Dataset tdrive = MakeTDrive(DefaultN(), DefaultQueries());
  RunMeasure(tdrive, dir, trass::core::Measure::kHausdorff, 0.01);
  // DTW sums point distances, so its thresholds live on a larger scale.
  RunMeasure(tdrive, dir, trass::core::Measure::kDtw, 0.2);
  return 0;
}
