// Shared plumbing for the figure-reproduction harnesses: dataset
// construction, the solution roster of Section VI, and table printing.
//
// Scale knobs (environment variables):
//   TRASS_BENCH_N        trajectories per dataset   (default 20000)
//   TRASS_BENCH_QUERIES  query trajectories sampled (default 40;
//                        the paper uses 400 — raise this on a beefier
//                        machine for tighter medians)

#ifndef TRASS_BENCH_BENCH_COMMON_H_
#define TRASS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/brute_force.h"
#include "baselines/dft_baseline.h"
#include "baselines/dita_baseline.h"
#include "baselines/repose_baseline.h"
#include "baselines/trass_searcher.h"
#include "baselines/xz2_store.h"
#include "geo/units.h"
#include "kv/env.h"
#include "util/histogram.h"
#include "workload/generator.h"

namespace trass {
namespace bench {

/// The paper quotes eps in degrees (0.001..0.02); convert to the
/// earth-normalized units the engine works in.
inline double EpsNorm(double eps_degrees) {
  return eps_degrees * geo::kDegree;
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

inline size_t DefaultN() { return EnvSize("TRASS_BENCH_N", 20000); }
inline size_t DefaultQueries() { return EnvSize("TRASS_BENCH_QUERIES", 24); }

struct Dataset {
  std::string name;
  std::vector<core::Trajectory> data;
  std::vector<size_t> query_indices;

  const std::vector<geo::Point>& Query(size_t i) const {
    return data[query_indices[i % query_indices.size()]].points;
  }
  size_t num_queries() const { return query_indices.size(); }
};

inline Dataset MakeTDrive(size_t n, size_t queries) {
  Dataset d;
  d.name = "T-Drive-like";
  d.data = workload::TDriveLike(n, /*seed=*/20260707);
  d.query_indices = workload::SampleIndices(d.data.size(), queries, 1);
  return d;
}

inline Dataset MakeLorry(size_t n, size_t queries) {
  Dataset d;
  d.name = "Lorry-like";
  d.data = workload::LorryLike(n, /*seed=*/20260708);
  d.query_indices = workload::SampleIndices(d.data.size(), queries, 2);
  return d;
}

/// The solution roster of the evaluation. `dir` hosts the on-disk stores.
inline std::vector<std::unique_ptr<baselines::SimilaritySearcher>>
MakeAllSearchers(const std::string& dir) {
  std::vector<std::unique_ptr<baselines::SimilaritySearcher>> searchers;
  core::TrassOptions trass_options;
  searchers.push_back(std::make_unique<baselines::TrassSearcher>(
      trass_options, dir + "/trass"));
  baselines::Xz2Store::Options xz2_options;
  searchers.push_back(
      std::make_unique<baselines::Xz2Store>(xz2_options, dir + "/xz2"));
  searchers.push_back(std::make_unique<baselines::DftBaseline>());
  searchers.push_back(std::make_unique<baselines::DitaBaseline>());
  searchers.push_back(std::make_unique<baselines::ReposeBaseline>());
  return searchers;
}

/// Median over per-query values.
inline double Median(std::vector<double> values) {
  Histogram h;
  for (double v : values) h.Add(v);
  return h.Median();
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string ScratchDir(const std::string& name) {
  const std::string path = "/tmp/trass_bench_" + name;
  kv::Env::Default()->RemoveDirRecursively(path);
  kv::Env::Default()->CreateDir(path);
  return path;
}

}  // namespace bench
}  // namespace trass

#endif  // TRASS_BENCH_BENCH_COMMON_H_
