// Figure 18: tail latency (p50/p99) of threshold and top-k search per
// solution, plus a second pass exercising the serving-path controls on
// TraSS: per-query deadlines (miss and partial-result rates) and
// admission control under synthetic overload (shed rate).

#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "core/admission.h"
#include "core/metrics.h"
#include "core/trass_store.h"
#include "kv/fault_injection_env.h"
#include "util/histogram.h"

namespace trass {
namespace bench {
namespace {

void FormatMs(char* buf, size_t len, const Histogram& h, double pct) {
  if (h.Count() == 0) {
    std::snprintf(buf, len, "n/a");
  } else {
    std::snprintf(buf, len, "%.2f", h.Percentile(pct));
  }
}

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf(
      "\n=== Figure 18 — tail latency — %s (%zu queries) ===\n",
      dataset.name.c_str(), dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %14s %14s %14s %14s\n", "solution", "thr-p50-ms",
              "thr-p99-ms", "topk50-p50-ms", "topk50-p99-ms");
  PrintRule(84);
  for (auto& searcher : searchers) {
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    Histogram threshold_latency, topk_latency;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (searcher->SupportsThreshold() &&
          searcher->Threshold(dataset.Query(q), EpsNorm(0.01),
                              core::Measure::kFrechet,
                              &found, &metrics)
              .ok()) {
        threshold_latency.Add(metrics.total_ms);
      }
      if (searcher->TopK(dataset.Query(q), 50, core::Measure::kFrechet,
                         &found, &metrics)
              .ok()) {
        topk_latency.Add(metrics.total_ms);
      }
    }
    char thr_p50[32], thr_p99[32], topk_p50[32], topk_p99[32];
    FormatMs(thr_p50, sizeof(thr_p50), threshold_latency, 50);
    FormatMs(thr_p99, sizeof(thr_p99), threshold_latency, 99);
    FormatMs(topk_p50, sizeof(topk_p50), topk_latency, 50);
    FormatMs(topk_p99, sizeof(topk_p99), topk_latency, 99);
    std::printf("%-22s %14s %14s %14s %14s\n", searcher->name().c_str(),
                thr_p50, thr_p99, topk_p50, topk_p99);
  }
}

/// Pass 2: the serving-path controls, TraSS only. The deadline is set to
/// half the undeadlined median so a realistic fraction of queries trips
/// it; the overload phase squeezes the store down to two slots and a
/// two-deep queue while eight client threads hammer it.
void RunServingControls(const Dataset& dataset, const std::string& dir) {
  std::printf(
      "\n=== Figure 18b — deadlines & admission — %s (%zu queries) ===\n",
      dataset.name.c_str(), dataset.num_queries());
  core::TrassOptions options;
  baselines::TrassSearcher searcher(options, dir + "/trass_controls");
  if (!searcher.Build(dataset.data).ok()) {
    std::printf("build failed; skipping\n");
    return;
  }
  core::TrassStore* store = searcher.store();

  // Undeadlined baseline: calibrates the deadline and anchors the table.
  Histogram base;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                               core::Measure::kFrechet, &found, &metrics)
            .ok()) {
      base.Add(metrics.total_ms);
    }
  }
  if (base.Count() == 0) {
    std::printf("no successful baseline queries; skipping\n");
    return;
  }
  const double deadline_ms = std::max(1.0, base.Median() * 0.5);

  // Deadlined, fail-fast: an expired deadline surfaces as TimedOut.
  Histogram deadlined;
  size_t missed = 0;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    core::QueryOptions qo;
    qo.deadline_ms = deadline_ms;
    const Status s = store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                                            core::Measure::kFrechet, &found,
                                            &metrics, qo);
    deadlined.Add(metrics.total_ms);
    if (s.IsTimedOut()) ++missed;
  }

  // Deadlined, allow_partial: same budget, but the verified prefix is
  // returned and the truncation is flagged in the metrics.
  Histogram partial_latency;
  size_t partials = 0;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    core::QueryOptions qo;
    qo.deadline_ms = deadline_ms;
    qo.allow_partial = true;
    if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                               core::Measure::kFrechet, &found, &metrics, qo)
            .ok()) {
      partial_latency.Add(metrics.total_ms);
      if (metrics.partial) ++partials;
    }
  }

  // Overload: 2 slots, 2-deep queue, 5 ms queue timeout, 8 client
  // threads. Shed queries surface as Busy and bump the shed counters.
  core::AdmissionController* admission = store->admission_controller();
  const uint64_t sheds_before = admission->counters().sheds();
  core::AdmissionController::Options squeeze;
  squeeze.max_concurrent = 2;
  squeeze.max_queue = 2;
  squeeze.queue_timeout_ms = 5.0;
  admission->Configure(squeeze);
  constexpr int kClients = 8;
  constexpr int kPerClient = 8;
  std::atomic<size_t> attempts{0};
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < kPerClient; ++i) {
          std::vector<core::SearchResult> found;
          core::QueryMetrics metrics;
          core::QueryOptions qo;
          qo.deadline_ms = deadline_ms;
          qo.allow_partial = true;
          (void)store->ThresholdSearch(
              dataset.Query(static_cast<size_t>(t * kPerClient + i)),
              EpsNorm(0.01), core::Measure::kFrechet, &found, &metrics, qo);
          attempts.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  const uint64_t sheds = admission->counters().sheds() - sheds_before;
  admission->Configure(core::AdmissionController::Options());  // re-open

  const double n = static_cast<double>(dataset.num_queries());
  std::printf("deadline          : %.2f ms (half of undeadlined p50)\n",
              deadline_ms);
  std::printf("%-28s %10s %10s %12s\n", "mode", "p50-ms", "p99-ms", "rate");
  PrintRule(64);
  std::printf("%-28s %10.2f %10.2f %12s\n", "no deadline", base.Median(),
              base.Percentile(99), "-");
  std::printf("%-28s %10.2f %10.2f %11.1f%%\n", "deadline (miss rate)",
              deadlined.Median(), deadlined.Percentile(99),
              100.0 * static_cast<double>(missed) / n);
  std::printf("%-28s %10.2f %10.2f %11.1f%%\n", "deadline+partial (partial)",
              partial_latency.Median(), partial_latency.Percentile(99),
              100.0 * static_cast<double>(partials) /
                  static_cast<double>(std::max<size_t>(
                      partial_latency.Count(), 1)));
  std::printf("%-28s %10s %10s %11.1f%%\n", "overload 8x (shed rate)", "-",
              "-",
              100.0 * static_cast<double>(sheds) /
                  static_cast<double>(std::max<size_t>(attempts.load(), 1)));
}

/// Pass 3: availability under a single-replica fault — replication
/// factor 1 (every query degrades to a skip) against factor
/// `replication` (every query fails over and stays complete). The
/// primary replica of every shard is fault-injected down, the hardest
/// single-replica failure the store can see.
void RunFailoverVsSkip(const Dataset& dataset, const std::string& dir,
                       int replication) {
  std::printf(
      "\n=== Figure 18c — failover vs skip, 1 replica/shard down — %s "
      "(%zu queries) ===\n",
      dataset.name.c_str(), dataset.num_queries());
  std::printf("%-22s %10s %10s %12s %12s\n", "config", "p50-ms", "p99-ms",
              "skip-rate", "failovers");
  PrintRule(72);
  for (const int factor : {1, replication}) {
    kv::FaultInjectionEnv env(kv::Env::Default());
    core::TrassOptions options;
    options.degraded_scans = true;
    options.max_scan_retries = 1;
    options.scan_retry_backoff_ms = 1;
    options.replication_factor = factor;
    options.db_options.env = &env;
    const std::string store_dir =
        dir + "/" + dataset.name + "_failover_f" + std::to_string(factor);
    std::unique_ptr<core::TrassStore> store;
    if (!core::TrassStore::Open(options, store_dir, &store).ok()) {
      std::printf("open failed for factor %d; skipping\n", factor);
      continue;
    }
    bool built = true;
    for (const core::Trajectory& t : dataset.data) {
      if (!store->Put(t).ok()) {
        built = false;
        break;
      }
    }
    if (!built || !store->Flush().ok()) {
      std::printf("build failed for factor %d; skipping\n", factor);
      continue;
    }
    // Down the primary replica of every shard ("region-N/" matches only
    // the replica-0 directories).
    for (int shard = 0; shard < options.shards; ++shard) {
      for (kv::FaultOp op : {kv::FaultOp::kOpenRead, kv::FaultOp::kRead}) {
        kv::FaultPoint fault;
        fault.op = op;
        fault.permanent = true;
        fault.path_substring = "region-" + std::to_string(shard) + "/";
        env.InjectFault(fault);
      }
    }
    Histogram latency;
    size_t skipped_queries = 0;
    uint64_t failovers = 0;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                                 core::Measure::kFrechet, &found, &metrics)
              .ok()) {
        latency.Add(metrics.total_ms);
        if (metrics.skipped_regions > 0) ++skipped_queries;
        failovers += metrics.replica_failovers;
      }
    }
    char p50[32], p99[32];
    FormatMs(p50, sizeof(p50), latency, 50);
    FormatMs(p99, sizeof(p99), latency, 99);
    char config[32];
    std::snprintf(config, sizeof(config), "replication=%d", factor);
    std::printf("%-22s %10s %10s %11.1f%% %12llu\n", config, p50, p99,
                100.0 * static_cast<double>(skipped_queries) /
                    static_cast<double>(std::max<size_t>(
                        dataset.num_queries(), 1)),
                static_cast<unsigned long long>(failovers));
    if (replication == 1) break;  // both configs would be identical
  }
}

/// Replication factor for the failover pass: --replication=N (or
/// "--replication N"), else TRASS_BENCH_REPLICATION, else 2.
int ParseReplication(int argc, char** argv) {
  int factor = static_cast<int>(EnvSize("TRASS_BENCH_REPLICATION", 2));
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--replication=", 14) == 0) {
      factor = std::atoi(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--replication") == 0 &&
               i + 1 < argc) {
      factor = std::atoi(argv[++i]);
    }
  }
  return std::max(1, std::min(8, factor));
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  using namespace trass::bench;
  const int replication = ParseReplication(argc, argv);
  const std::string dir = ScratchDir("fig18");
  const Dataset tdrive = MakeTDrive(DefaultN(), DefaultQueries());
  const Dataset lorry = MakeLorry(DefaultN(), DefaultQueries());
  RunDataset(tdrive, dir);
  RunDataset(lorry, dir);
  RunServingControls(tdrive, dir);
  RunServingControls(lorry, dir);
  RunFailoverVsSkip(tdrive, dir, replication);
  RunFailoverVsSkip(lorry, dir, replication);
  return 0;
}
