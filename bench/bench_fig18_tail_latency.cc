// Figure 18: 99th-percentile tail latency of threshold and top-k search
// per solution.

#include "bench_common.h"

#include "core/metrics.h"
#include "util/histogram.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 18 — tail latency (p99) — %s (%zu queries) ===\n",
              dataset.name.c_str(), dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %20s %20s\n", "solution", "threshold-p99-ms",
              "topk50-p99-ms");
  PrintRule(66);
  for (auto& searcher : searchers) {
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    Histogram threshold_latency, topk_latency;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (searcher->SupportsThreshold() &&
          searcher->Threshold(dataset.Query(q), EpsNorm(0.01),
                              core::Measure::kFrechet,
                              &found, &metrics)
              .ok()) {
        threshold_latency.Add(metrics.total_ms);
      }
      if (searcher->TopK(dataset.Query(q), 50, core::Measure::kFrechet,
                         &found, &metrics)
              .ok()) {
        topk_latency.Add(metrics.total_ms);
      }
    }
    char threshold_buf[32] = "n/a";
    if (threshold_latency.Count() > 0) {
      std::snprintf(threshold_buf, sizeof(threshold_buf), "%.2f",
                    threshold_latency.Percentile(99));
    }
    char topk_buf[32] = "n/a";
    if (topk_latency.Count() > 0) {
      std::snprintf(topk_buf, sizeof(topk_buf), "%.2f",
                    topk_latency.Percentile(99));
    }
    std::printf("%-22s %20s %20s\n", searcher->name().c_str(), threshold_buf,
                topk_buf);
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig18");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
