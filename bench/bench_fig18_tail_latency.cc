// Figure 18: tail latency (p50/p99) of threshold and top-k search per
// solution, plus a second pass exercising the serving-path controls on
// TraSS: per-query deadlines (miss and partial-result rates) and
// admission control under synthetic overload (shed rate).

#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/admission.h"
#include "core/metrics.h"
#include "util/histogram.h"

namespace trass {
namespace bench {
namespace {

void FormatMs(char* buf, size_t len, const Histogram& h, double pct) {
  if (h.Count() == 0) {
    std::snprintf(buf, len, "n/a");
  } else {
    std::snprintf(buf, len, "%.2f", h.Percentile(pct));
  }
}

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf(
      "\n=== Figure 18 — tail latency — %s (%zu queries) ===\n",
      dataset.name.c_str(), dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %14s %14s %14s %14s\n", "solution", "thr-p50-ms",
              "thr-p99-ms", "topk50-p50-ms", "topk50-p99-ms");
  PrintRule(84);
  for (auto& searcher : searchers) {
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    Histogram threshold_latency, topk_latency;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (searcher->SupportsThreshold() &&
          searcher->Threshold(dataset.Query(q), EpsNorm(0.01),
                              core::Measure::kFrechet,
                              &found, &metrics)
              .ok()) {
        threshold_latency.Add(metrics.total_ms);
      }
      if (searcher->TopK(dataset.Query(q), 50, core::Measure::kFrechet,
                         &found, &metrics)
              .ok()) {
        topk_latency.Add(metrics.total_ms);
      }
    }
    char thr_p50[32], thr_p99[32], topk_p50[32], topk_p99[32];
    FormatMs(thr_p50, sizeof(thr_p50), threshold_latency, 50);
    FormatMs(thr_p99, sizeof(thr_p99), threshold_latency, 99);
    FormatMs(topk_p50, sizeof(topk_p50), topk_latency, 50);
    FormatMs(topk_p99, sizeof(topk_p99), topk_latency, 99);
    std::printf("%-22s %14s %14s %14s %14s\n", searcher->name().c_str(),
                thr_p50, thr_p99, topk_p50, topk_p99);
  }
}

/// Pass 2: the serving-path controls, TraSS only. The deadline is set to
/// half the undeadlined median so a realistic fraction of queries trips
/// it; the overload phase squeezes the store down to two slots and a
/// two-deep queue while eight client threads hammer it.
void RunServingControls(const Dataset& dataset, const std::string& dir) {
  std::printf(
      "\n=== Figure 18b — deadlines & admission — %s (%zu queries) ===\n",
      dataset.name.c_str(), dataset.num_queries());
  core::TrassOptions options;
  baselines::TrassSearcher searcher(options, dir + "/trass_controls");
  if (!searcher.Build(dataset.data).ok()) {
    std::printf("build failed; skipping\n");
    return;
  }
  core::TrassStore* store = searcher.store();

  // Undeadlined baseline: calibrates the deadline and anchors the table.
  Histogram base;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                               core::Measure::kFrechet, &found, &metrics)
            .ok()) {
      base.Add(metrics.total_ms);
    }
  }
  if (base.Count() == 0) {
    std::printf("no successful baseline queries; skipping\n");
    return;
  }
  const double deadline_ms = std::max(1.0, base.Median() * 0.5);

  // Deadlined, fail-fast: an expired deadline surfaces as TimedOut.
  Histogram deadlined;
  size_t missed = 0;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    core::QueryOptions qo;
    qo.deadline_ms = deadline_ms;
    const Status s = store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                                            core::Measure::kFrechet, &found,
                                            &metrics, qo);
    deadlined.Add(metrics.total_ms);
    if (s.IsTimedOut()) ++missed;
  }

  // Deadlined, allow_partial: same budget, but the verified prefix is
  // returned and the truncation is flagged in the metrics.
  Histogram partial_latency;
  size_t partials = 0;
  for (size_t q = 0; q < dataset.num_queries(); ++q) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics metrics;
    core::QueryOptions qo;
    qo.deadline_ms = deadline_ms;
    qo.allow_partial = true;
    if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                               core::Measure::kFrechet, &found, &metrics, qo)
            .ok()) {
      partial_latency.Add(metrics.total_ms);
      if (metrics.partial) ++partials;
    }
  }

  // Overload: 2 slots, 2-deep queue, 5 ms queue timeout, 8 client
  // threads. Shed queries surface as Busy and bump the shed counters.
  core::AdmissionController* admission = store->admission_controller();
  const uint64_t sheds_before = admission->counters().sheds();
  core::AdmissionController::Options squeeze;
  squeeze.max_concurrent = 2;
  squeeze.max_queue = 2;
  squeeze.queue_timeout_ms = 5.0;
  admission->Configure(squeeze);
  constexpr int kClients = 8;
  constexpr int kPerClient = 8;
  std::atomic<size_t> attempts{0};
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < kPerClient; ++i) {
          std::vector<core::SearchResult> found;
          core::QueryMetrics metrics;
          core::QueryOptions qo;
          qo.deadline_ms = deadline_ms;
          qo.allow_partial = true;
          (void)store->ThresholdSearch(
              dataset.Query(static_cast<size_t>(t * kPerClient + i)),
              EpsNorm(0.01), core::Measure::kFrechet, &found, &metrics, qo);
          attempts.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  const uint64_t sheds = admission->counters().sheds() - sheds_before;
  admission->Configure(core::AdmissionController::Options());  // re-open

  const double n = static_cast<double>(dataset.num_queries());
  std::printf("deadline          : %.2f ms (half of undeadlined p50)\n",
              deadline_ms);
  std::printf("%-28s %10s %10s %12s\n", "mode", "p50-ms", "p99-ms", "rate");
  PrintRule(64);
  std::printf("%-28s %10.2f %10.2f %12s\n", "no deadline", base.Median(),
              base.Percentile(99), "-");
  std::printf("%-28s %10.2f %10.2f %11.1f%%\n", "deadline (miss rate)",
              deadlined.Median(), deadlined.Percentile(99),
              100.0 * static_cast<double>(missed) / n);
  std::printf("%-28s %10.2f %10.2f %11.1f%%\n", "deadline+partial (partial)",
              partial_latency.Median(), partial_latency.Percentile(99),
              100.0 * static_cast<double>(partials) /
                  static_cast<double>(std::max<size_t>(
                      partial_latency.Count(), 1)));
  std::printf("%-28s %10s %10s %11.1f%%\n", "overload 8x (shed rate)", "-",
              "-",
              100.0 * static_cast<double>(sheds) /
                  static_cast<double>(std::max<size_t>(attempts.load(), 1)));
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig18");
  const Dataset tdrive = MakeTDrive(DefaultN(), DefaultQueries());
  const Dataset lorry = MakeLorry(DefaultN(), DefaultQueries());
  RunDataset(tdrive, dir);
  RunDataset(lorry, dir);
  RunServingControls(tdrive, dir);
  RunServingControls(lorry, dir);
  return 0;
}
