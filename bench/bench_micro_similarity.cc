// Micro-benchmarks of the similarity kernels and the local filter: the
// point of Lemmas 12-14 is that the filter is orders of magnitude cheaper
// than the exact O(n*m) computations it avoids.

#include <benchmark/benchmark.h>

#include "core/local_filter.h"
#include "core/similarity.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

using trass::core::Measure;

const std::vector<trass::core::Trajectory>& SharedData() {
  static const auto data = trass::workload::TDriveLike(500, 78);
  return data;
}

void BM_DiscreteFrechet(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::DiscreteFrechet(a, b));
    ++i;
  }
}
BENCHMARK(BM_DiscreteFrechet);

void BM_FrechetWithinEarlyAbandon(benchmark::State& state) {
  const auto& data = SharedData();
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::FrechetWithin(a, b, eps));
    ++i;
  }
}
BENCHMARK(BM_FrechetWithinEarlyAbandon)->Arg(1)->Arg(100);

void BM_Hausdorff(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::Hausdorff(a, b));
    ++i;
  }
}
BENCHMARK(BM_Hausdorff);

void BM_Dtw(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::Dtw(a, b));
    ++i;
  }
}
BENCHMARK(BM_Dtw);

void BM_DpFeatureComputation(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trass::core::DpFeatures::Compute(
        data[i % data.size()].points, 0.01));
    ++i;
  }
}
BENCHMARK(BM_DpFeatureComputation);

void BM_LocalFilter(benchmark::State& state) {
  const auto& data = SharedData();
  const auto ctx = trass::core::QueryGeometry::Make(data[0].points, 0.01);
  std::vector<trass::core::StoredTrajectory> stored;
  for (const auto& t : data) {
    trass::core::StoredTrajectory s;
    s.id = t.id;
    s.points = t.points;
    s.features = trass::core::DpFeatures::Compute(t.points, 0.01);
    stored.push_back(std::move(s));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trass::core::LocalFilterPass(
        ctx, stored[i % stored.size()], 0.01, Measure::kFrechet));
    ++i;
  }
}
BENCHMARK(BM_LocalFilter);

}  // namespace

BENCHMARK_MAIN();
