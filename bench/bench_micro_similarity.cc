// Micro-benchmarks of the similarity kernels and the local filter: the
// point of Lemmas 12-14 is that the filter is orders of magnitude cheaper
// than the exact O(n*m) computations it avoids.
//
// The BM_*Flat passes measure the structure-of-arrays kernels the
// refinement engine (core/refiner.h) serves queries with, against the
// scalar vector-of-Point reference right above them — the before/after
// pair behind the engine's kernel speedup claim. BM_LowerBoundCascade
// measures the per-pair cost of the cascade that lets refinement skip
// the O(n*m) DP entirely.
//
// `--smoke` runs a randomized flat-vs-scalar parity self-check instead
// of timing anything (non-zero exit on any mismatch); ci.sh runs it in
// the release configuration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "core/local_filter.h"
#include "core/refiner.h"
#include "core/similarity.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

using trass::core::DpScratch;
using trass::core::FlatView;
using trass::core::Measure;

const std::vector<trass::core::Trajectory>& SharedData() {
  static const auto data = trass::workload::TDriveLike(500, 78);
  return data;
}

/// SharedData() flattened once into SoA buffers (plus MBRs for the
/// lower-bound passes), mirroring what the engine's scratch arena holds.
struct FlatTrajectory {
  std::vector<double> x, y;
  trass::geo::Mbr mbr;
  FlatView view() const { return FlatView{x.data(), y.data(), x.size()}; }
};

const std::vector<FlatTrajectory>& SharedFlatData() {
  static const auto flat = [] {
    std::vector<FlatTrajectory> out;
    for (const auto& t : SharedData()) {
      FlatTrajectory f;
      for (const auto& p : t.points) {
        f.x.push_back(p.x);
        f.y.push_back(p.y);
        f.mbr.Extend(p);
      }
      out.push_back(std::move(f));
    }
    return out;
  }();
  return flat;
}

void BM_DiscreteFrechet(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::DiscreteFrechet(a, b));
    ++i;
  }
}
BENCHMARK(BM_DiscreteFrechet);

void BM_DiscreteFrechetFlat(benchmark::State& state) {
  const auto& flat = SharedFlatData();
  DpScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = flat[i % flat.size()];
    const auto& b = flat[(i + 1) % flat.size()];
    benchmark::DoNotOptimize(
        trass::core::DiscreteFrechetFlat(a.view(), b.view(), &scratch));
    ++i;
  }
}
BENCHMARK(BM_DiscreteFrechetFlat);

void BM_FrechetWithinEarlyAbandon(benchmark::State& state) {
  const auto& data = SharedData();
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::FrechetWithin(a, b, eps));
    ++i;
  }
}
BENCHMARK(BM_FrechetWithinEarlyAbandon)->Arg(1)->Arg(100);

void BM_FrechetWithinDistanceFlat(benchmark::State& state) {
  const auto& flat = SharedFlatData();
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  DpScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = flat[i % flat.size()];
    const auto& b = flat[(i + 1) % flat.size()];
    double d = 0.0;
    benchmark::DoNotOptimize(trass::core::FrechetWithinDistanceFlat(
        a.view(), b.view(), eps, &d, &scratch));
    ++i;
  }
}
BENCHMARK(BM_FrechetWithinDistanceFlat)->Arg(1)->Arg(100);

void BM_Hausdorff(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::Hausdorff(a, b));
    ++i;
  }
}
BENCHMARK(BM_Hausdorff);

void BM_HausdorffFlat(benchmark::State& state) {
  const auto& flat = SharedFlatData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = flat[i % flat.size()];
    const auto& b = flat[(i + 1) % flat.size()];
    benchmark::DoNotOptimize(trass::core::HausdorffFlat(a.view(), b.view()));
    ++i;
  }
}
BENCHMARK(BM_HausdorffFlat);

void BM_Dtw(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = data[i % data.size()].points;
    const auto& b = data[(i + 1) % data.size()].points;
    benchmark::DoNotOptimize(trass::core::Dtw(a, b));
    ++i;
  }
}
BENCHMARK(BM_Dtw);

void BM_DtwFlat(benchmark::State& state) {
  const auto& flat = SharedFlatData();
  DpScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = flat[i % flat.size()];
    const auto& b = flat[(i + 1) % flat.size()];
    benchmark::DoNotOptimize(
        trass::core::DtwFlat(a.view(), b.view(), &scratch));
    ++i;
  }
}
BENCHMARK(BM_DtwFlat);

// The engine's per-pair cascade: arg is eps in milli-units. At tight
// bounds nearly every pair is disposed of here instead of in the DP.
void BM_LowerBoundCascade(benchmark::State& state) {
  const auto& data = SharedData();
  const auto& flat = SharedFlatData();
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  const auto query = trass::core::RefineQuery::Make(data[0].points);
  size_t i = 0;
  size_t rejected = 0;
  for (auto _ : state) {
    const auto& t = flat[i % flat.size()];
    rejected += trass::core::LowerBoundExceeds(Measure::kFrechet, query,
                                               t.view(), t.mbr, eps);
    ++i;
  }
  benchmark::DoNotOptimize(rejected);
  state.counters["reject_rate"] =
      i == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(i);
}
BENCHMARK(BM_LowerBoundCascade)->Arg(1)->Arg(100);

void BM_DpFeatureComputation(benchmark::State& state) {
  const auto& data = SharedData();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trass::core::DpFeatures::Compute(
        data[i % data.size()].points, 0.01));
    ++i;
  }
}
BENCHMARK(BM_DpFeatureComputation);

void BM_LocalFilter(benchmark::State& state) {
  const auto& data = SharedData();
  const auto ctx = trass::core::QueryGeometry::Make(data[0].points, 0.01);
  std::vector<trass::core::StoredTrajectory> stored;
  for (const auto& t : data) {
    trass::core::StoredTrajectory s;
    s.id = t.id;
    s.points = t.points;
    s.features = trass::core::DpFeatures::Compute(t.points, 0.01);
    stored.push_back(std::move(s));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trass::core::LocalFilterPass(
        ctx, stored[i % stored.size()], 0.01, Measure::kFrechet));
    ++i;
  }
}
BENCHMARK(BM_LocalFilter);

/// Randomized flat-vs-scalar parity sweep. Returns the number of
/// mismatches (0 = parity holds).
int RunSmoke() {
  trass::Random rnd(20260806);
  int mismatches = 0;
  DpScratch scratch;
  const Measure measures[] = {Measure::kFrechet, Measure::kHausdorff,
                              Measure::kDtw};
  for (int iter = 0; iter < 200; ++iter) {
    const size_t na = 1 + rnd.Uniform(120);
    const size_t nb = 1 + rnd.Uniform(120);
    std::vector<trass::geo::Point> a, b;
    FlatTrajectory fa, fb;
    for (size_t i = 0; i < na; ++i) {
      const trass::geo::Point p{rnd.UniformDouble(0.0, 1.0),
                                rnd.UniformDouble(0.0, 1.0)};
      a.push_back(p);
      fa.x.push_back(p.x);
      fa.y.push_back(p.y);
      fa.mbr.Extend(p);
    }
    for (size_t i = 0; i < nb; ++i) {
      const trass::geo::Point p{rnd.UniformDouble(0.0, 1.0),
                                rnd.UniformDouble(0.0, 1.0)};
      b.push_back(p);
      fb.x.push_back(p.x);
      fb.y.push_back(p.y);
      fb.mbr.Extend(p);
    }
    for (Measure m : measures) {
      const double scalar = trass::core::Similarity(m, a, b);
      const double flat =
          trass::core::SimilarityFlat(m, fa.view(), fb.view(), &scratch);
      if (scalar != flat) {
        std::fprintf(stderr,
                     "smoke: %s mismatch iter=%d scalar=%.17g flat=%.17g\n",
                     trass::core::MeasureName(m), iter, scalar, flat);
        ++mismatches;
      }
      // The cascade must never reject a pair the within-DP accepts.
      const auto query = trass::core::RefineQuery::Make(a);
      const double bound = scalar * rnd.UniformDouble(0.5, 1.5);
      if (trass::core::LowerBoundExceeds(m, query, fb.view(), fb.mbr,
                                         bound) &&
          trass::core::SimilarityWithin(m, a, b, bound)) {
        std::fprintf(stderr, "smoke: %s unsound lower bound iter=%d\n",
                     trass::core::MeasureName(m), iter);
        ++mismatches;
      }
    }
  }
  if (mismatches == 0) {
    std::printf("bench_micro_similarity --smoke: kernel parity OK\n");
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return RunSmoke() == 0 ? 0 : 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
