// Ablation of TraSS's design choices (DESIGN.md): starting from the full
// system, disable one mechanism at a time and measure threshold-search
// cost at eps = 0.01 (degrees):
//
//   full          — global pruning (Lemmas 6-11) + DP local filter (12-14)
//   no-pos-codes  — stop global pruning at Lemma 9 (XZ-Ordering-granular
//                   elements); quantifies the paper's XZ* contribution
//   endpoints-LF  — replace the DP-feature local filter with the
//                   endpoints-only filter of prior work (Lemma 12 alone)
//   no-local-fltr — ship every retrieved row to refinement
//   no-global     — scan the whole table, local filter pushed down

#include "bench_common.h"

#include <atomic>

#include "core/local_filter.h"
#include "core/metrics.h"
#include "core/similarity.h"
#include "core/trass_store.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

// Lemma 12 only — the local filtering the paper attributes to prior work.
class EndpointOnlyFilter final : public kv::ScanFilter {
 public:
  EndpointOnlyFilter(const std::vector<geo::Point>* query, double eps)
      : query_(query), eps_(eps) {}

  bool Keep(const Slice& key, const Slice& value) const override {
    scanned_.fetch_add(1, std::memory_order_relaxed);
    core::StoredTrajectory t;
    if (!core::DecodeRow(key, value, &t).ok() || t.points.empty()) {
      return false;
    }
    if (geo::Distance(query_->front(), t.points.front()) > eps_ ||
        geo::Distance(query_->back(), t.points.back()) > eps_) {
      return false;
    }
    kept_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t scanned() const { return scanned_.load(); }
  uint64_t kept() const { return kept_.load(); }

 private:
  const std::vector<geo::Point>* query_;
  const double eps_;
  mutable std::atomic<uint64_t> scanned_{0};
  mutable std::atomic<uint64_t> kept_{0};
};

struct VariantResult {
  double time_ms = 0.0;
  uint64_t retrieved = 0;
  uint64_t candidates = 0;
  size_t results = 0;
};

// Runs one query under a configurable pipeline.
VariantResult RunVariant(core::TrassStore* store,
                         const std::vector<geo::Point>& query, double eps,
                         bool global_pruning, bool position_codes,
                         int local_filter /*0=none,1=endpoints,2=full*/) {
  VariantResult out;
  Stopwatch total;
  const core::QueryGeometry ctx =
      core::QueryGeometry::Make(query, store->options().dp_tolerance);
  std::vector<kv::ScanRange> scan_ranges;
  if (global_pruning) {
    const auto directory = store->value_directory();
    core::GlobalPruner pruner(&store->xz_index(), &ctx, directory.get());
    const auto ranges = pruner.CandidateRanges(
        eps, core::GlobalPruner::kDefaultVisitBudget, position_codes);
    for (const auto& [lo, hi] : ranges) {
      kv::ScanRange range;
      core::IndexValueRange(lo, hi, &range.start, &range.end);
      scan_ranges.push_back(std::move(range));
    }
  } else {
    scan_ranges.push_back(kv::ScanRange{"", ""});
  }

  std::vector<kv::Row> rows;
  core::LocalScanFilter full_filter(&ctx, eps, core::Measure::kFrechet);
  EndpointOnlyFilter endpoint_filter(&query, eps);
  const kv::ScanFilter* filter = nullptr;
  if (local_filter == 1) filter = &endpoint_filter;
  if (local_filter == 2) filter = &full_filter;
  kv::RegionStore* region_store = store->region_store();
  const auto before = region_store->TotalIoStats();
  if (!region_store->Scan(scan_ranges, filter, &rows).ok()) return out;
  const auto after = region_store->TotalIoStats();
  out.retrieved = after.rows_scanned - before.rows_scanned;
  out.candidates = rows.size();

  for (const kv::Row& row : rows) {
    core::StoredTrajectory t;
    if (!core::DecodeRow(Slice(row.key), Slice(row.value), &t).ok()) {
      continue;
    }
    if (core::SimilarityWithin(core::Measure::kFrechet, query, t.points,
                               eps)) {
      ++out.results;
    }
  }
  out.time_ms = total.ElapsedMillis();
  return out;
}

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Ablation — threshold search, eps = 0.01 deg — %s (%zu "
              "trajectories, %zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  core::TrassOptions options;
  const std::string path = dir + "/store";
  kv::Env::Default()->RemoveDirRecursively(path);
  std::unique_ptr<core::TrassStore> store;
  if (!core::TrassStore::Open(options, path, &store).ok()) return;
  for (const auto& t : dataset.data) {
    if (!store->Put(t).ok()) return;
  }
  store->Flush();

  struct Variant {
    const char* name;
    bool global;
    bool pos_codes;
    int local;
  };
  const Variant variants[] = {
      {"full", true, true, 2},
      {"no-pos-codes", true, false, 2},
      {"endpoints-LF", true, true, 1},
      {"no-local-fltr", true, true, 0},
      {"no-global", false, true, 2},
  };
  const double eps = EpsNorm(0.01);
  std::printf("%-16s %14s %14s %14s %10s\n", "variant", "time-ms(p50)",
              "retrieved(p50)", "cands(p50)", "results");
  PrintRule(76);
  size_t full_results = 0;
  for (const Variant& variant : variants) {
    std::vector<double> times, retrieved, candidates;
    size_t results_total = 0;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      const VariantResult r =
          RunVariant(store.get(), dataset.Query(q), eps, variant.global,
                     variant.pos_codes, variant.local);
      times.push_back(r.time_ms);
      retrieved.push_back(static_cast<double>(r.retrieved));
      candidates.push_back(static_cast<double>(r.candidates));
      results_total += r.results;
    }
    std::printf("%-16s %14.2f %14.0f %14.0f %10zu\n", variant.name,
                Median(times), Median(retrieved), Median(candidates),
                results_total);
    if (variant.name == std::string("full")) {
      full_results = results_total;
    } else if (results_total != full_results) {
      std::printf("  !! answer mismatch vs full (%zu vs %zu)\n",
                  results_total, full_results);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("ablation");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
