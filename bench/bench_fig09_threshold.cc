// Figure 9: threshold similarity search — (a) median query time and
// (b) number of candidates after pruning, per solution, varying the
// threshold eps on both datasets.

#include "bench_common.h"

#include "core/metrics.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 9 — threshold similarity search — %s (%zu "
              "trajectories, %zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  const std::vector<double> epsilons = {0.001, 0.005, 0.01, 0.015, 0.02};

  for (auto& searcher : searchers) {
    if (!searcher->SupportsThreshold()) {
      std::printf("%-22s (threshold search unsupported; skipped)\n",
                  searcher->name().c_str());
      continue;
    }
    Stopwatch build;
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) {
      std::printf("%-22s build failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s (built in %.1f s)\n", searcher->name().c_str(),
                build.ElapsedSeconds());
    std::printf("  %-8s %14s %16s %14s\n", "eps", "time-ms(p50)",
                "candidates(p50)", "results(p50)");
    for (double eps : epsilons) {
      std::vector<double> times, candidates, results;
      for (size_t q = 0; q < dataset.num_queries(); ++q) {
        std::vector<core::SearchResult> found;
        core::QueryMetrics metrics;
        s = searcher->Threshold(dataset.Query(q), EpsNorm(eps),
                                core::Measure::kFrechet, &found, &metrics);
        if (!s.ok()) break;
        times.push_back(metrics.total_ms);
        candidates.push_back(static_cast<double>(metrics.candidates));
        results.push_back(static_cast<double>(found.size()));
      }
      if (!s.ok()) {
        std::printf("  %-8.3f failed: %s\n", eps, s.ToString().c_str());
        continue;
      }
      std::printf("  %-8.3f %14.2f %16.0f %14.0f\n", eps, Median(times),
                  Median(candidates), Median(results));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig09");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
