// Micro-benchmarks of the XZ* hot path: indexing a trajectory, the
// encode/decode bijection, and global-pruning range generation.

#include <benchmark/benchmark.h>

#include "core/pruning.h"
#include "index/xz2.h"
#include "index/xzstar.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

using trass::index::XzStar;

std::vector<trass::core::Trajectory> SharedData() {
  static const auto data = trass::workload::TDriveLike(2000, 77);
  return data;
}

void BM_XzStarIndex(benchmark::State& state) {
  const auto data = SharedData();
  XzStar xz(16);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xz.Index(data[i % data.size()].points));
    ++i;
  }
}
BENCHMARK(BM_XzStarIndex);

void BM_XzStarEncode(benchmark::State& state) {
  const auto data = SharedData();
  XzStar xz(16);
  std::vector<XzStar::IndexSpace> spaces;
  for (const auto& t : data) spaces.push_back(xz.Index(t.points));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xz.Encode(spaces[i % spaces.size()]));
    ++i;
  }
}
BENCHMARK(BM_XzStarEncode);

void BM_XzStarDecode(benchmark::State& state) {
  const auto data = SharedData();
  XzStar xz(16);
  std::vector<int64_t> values;
  for (const auto& t : data) values.push_back(xz.Encode(xz.Index(t.points)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xz.Decode(values[i % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_XzStarDecode);

void BM_Xz2Index(benchmark::State& state) {
  const auto data = SharedData();
  trass::index::Xz2 xz(16);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        xz.Encode(xz.Index(trass::geo::Mbr::Of(data[i % data.size()].points))));
    ++i;
  }
}
BENCHMARK(BM_Xz2Index);

void BM_GlobalPruningRangeGeneration(benchmark::State& state) {
  const auto data = SharedData();
  XzStar xz(16);
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& query = data[i % data.size()].points;
    const trass::core::QueryGeometry ctx =
        trass::core::QueryGeometry::Make(query, 0.01);
    trass::core::GlobalPruner pruner(&xz, &ctx);
    benchmark::DoNotOptimize(pruner.CandidateRanges(eps));
    ++i;
  }
}
BENCHMARK(BM_GlobalPruningRangeGeneration)->Arg(1)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
