// Figure 17: scalability on synthetic datasets built by replicating the
// Lorry-like dataset t times — (a) ingest time, (b) threshold query time,
// (c) top-k query time. TraSS's query time should grow slowly because the
// pruning work is independent of dataset size (fixed spatial partitions).

#include <cstring>

#include "bench_common.h"
#include "bench_serve_common.h"

#include "core/metrics.h"
#include "core/trass_store.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

void Run() {
  const size_t base_n = EnvSize("TRASS_BENCH_N", 20000) / 2;
  const size_t queries = DefaultQueries();
  const auto base = workload::LorryLike(base_n, 20260708);
  const std::string dir = ScratchDir("fig17");

  std::printf("=== Figure 17 — scalability on synthetic x-t datasets "
              "(base = %zu lorry-like trajectories) ===\n",
              base_n);
  std::printf("%-4s %10s %14s %20s %16s\n", "t", "size", "ingest-s",
              "threshold-ms(p50)", "topk-ms(p50)");
  PrintRule(70);
  for (int t = 1; t <= 5; ++t) {
    const auto data = workload::Scale(base, t, 0.0005, 33 + t);
    const std::string path = dir + "/x" + std::to_string(t);
    kv::Env::Default()->RemoveDirRecursively(path);
    core::TrassOptions options;
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(options, path, &store);
    if (!s.ok()) continue;
    Stopwatch ingest;
    for (const auto& trajectory : data) {
      s = store->Put(trajectory);
      if (!s.ok()) break;
    }
    store->Flush();
    const double ingest_s = ingest.ElapsedSeconds();

    const auto query_indices =
        workload::SampleIndices(data.size(), queries, 3);
    std::vector<double> threshold_ms, topk_ms;
    for (size_t qi : query_indices) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (store->ThresholdSearch(data[qi].points, EpsNorm(0.01),
                                 core::Measure::kFrechet, &found, &metrics)
              .ok()) {
        threshold_ms.push_back(metrics.total_ms);
      }
      if (store->TopKSearch(data[qi].points, 50, core::Measure::kFrechet,
                            &found, &metrics)
              .ok()) {
        topk_ms.push_back(metrics.total_ms);
      }
    }
    std::printf("%-4d %10zu %14.2f %20.2f %16.2f\n", t, data.size(),
                ingest_s, Median(threshold_ms), Median(topk_ms));
  }
}

/// Coordinator mode (--shards N): the same scaling sweep served by an
/// N-shard scatter-gather tier — query time should stay flat as t grows
/// because each shard holds 1/N of the replicated dataset.
void RunCoordinator(size_t num_shards) {
  const size_t base_n = EnvSize("TRASS_BENCH_N", 20000) / 2;
  const size_t queries = DefaultQueries();
  const auto base = workload::LorryLike(base_n, 20260708);
  const std::string dir = ScratchDir("fig17_coord");

  std::printf("=== Figure 17 (coordinator mode) — %zu-shard scatter-gather "
              "over synthetic x-t datasets (base = %zu lorry-like "
              "trajectories) ===\n",
              num_shards, base_n);
  std::printf("%-4s %10s %14s ", "t", "size", "ingest-s");
  PrintCoordinatorHeader();
  for (int t = 1; t <= 3; ++t) {
    const auto data = workload::Scale(base, t, 0.0005, 33 + t);
    Stopwatch ingest;
    CoordinatorTier tier = OpenCoordinatorTier(
        data, num_shards, dir + "/x" + std::to_string(t));
    if (tier.coordinator == nullptr) continue;
    const double ingest_s = ingest.ElapsedSeconds();
    const auto query_indices =
        workload::SampleIndices(data.size(), queries, 3);
    const CoordinatorPassResult r = RunCoordinatorQueries(
        tier, data, query_indices, EpsNorm(0.01), 50);
    std::printf("%-4d %10zu %14.2f ", t, data.size(), ingest_s);
    PrintCoordinatorRow(num_shards, r);
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  size_t coordinator_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      coordinator_shards = static_cast<size_t>(std::atoll(argv[++i]));
    }
  }
  if (coordinator_shards > 0) {
    trass::bench::RunCoordinator(coordinator_shards);
  } else {
    trass::bench::Run();
  }
  return 0;
}
