// Figure 13: indexing overhead — (a)(b) indexing/ingest time per
// solution (static XZ*/XZ2 vs dynamic DFT/DITA/REPOSE structures), and
// (c) average row-key bytes: TraSS integer encoding vs TraSS-S string
// encoding (the paper reports 27-32% savings).

#include "bench_common.h"

#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 13(a/b) — indexing time — %s (%zu trajectories) "
              "===\n",
              dataset.name.c_str(), dataset.data.size());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %14s\n", "solution", "build-time-s");
  PrintRule(40);
  for (auto& searcher : searchers) {
    Stopwatch build;
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) {
      std::printf("%-22s failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s %14.2f\n", searcher->name().c_str(),
                build.ElapsedSeconds());
  }

  std::printf("\n=== Figure 13(c) — row-key storage — %s ===\n",
              dataset.name.c_str());
  auto build_store = [&](bool string_keys, double* avg_bytes) {
    core::TrassOptions options;
    options.string_keys = string_keys;
    const std::string path =
        dir + (string_keys ? "/keys_string" : "/keys_int");
    kv::Env::Default()->RemoveDirRecursively(path);
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(options, path, &store);
    if (!s.ok()) return s;
    for (const auto& t : dataset.data) {
      s = store->Put(t);
      if (!s.ok()) return s;
    }
    *avg_bytes = store->average_rowkey_bytes();
    return Status::OK();
  };
  double int_bytes = 0.0, str_bytes = 0.0;
  if (build_store(false, &int_bytes).ok() &&
      build_store(true, &str_bytes).ok()) {
    std::printf("%-28s %10.2f bytes/rowkey\n", "TraSS (integer encoding)",
                int_bytes);
    std::printf("%-28s %10.2f bytes/rowkey\n", "TraSS-S (string encoding)",
                str_bytes);
    std::printf("reduction: %.1f%% (paper: 32%% T-Drive, 27%% Lorry)\n",
                100.0 * (1.0 - int_bytes / str_bytes));
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig13");
  RunDataset(MakeTDrive(DefaultN(), 1), dir);
  RunDataset(MakeLorry(DefaultN(), 1), dir);
  return 0;
}
