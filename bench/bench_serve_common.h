// Coordinator-mode plumbing for the figure harnesses: stand up N
// TrassStore shards behind in-process transports, ingest through the
// partitioner, and drive the scatter-gather query path, reporting the
// serving-tier rates (hedges, verified partials, quota sheds) next to
// the latency medians. Enabled per-bench with --shards N.

#ifndef TRASS_BENCH_BENCH_SERVE_COMMON_H_
#define TRASS_BENCH_BENCH_SERVE_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/trass_store.h"
#include "serve/coordinator.h"
#include "serve/direct_transport.h"

namespace trass {
namespace bench {

/// One stood-up serving tier: the shard stores plus the coordinator
/// over them. Stores must outlive the coordinator (declared first).
struct CoordinatorTier {
  std::vector<std::unique_ptr<core::TrassStore>> stores;
  std::unique_ptr<serve::ShardCoordinator> coordinator;
};

/// Opens `num_shards` stores under `dir` and ingests `data` through the
/// coordinator's hash partitioner. Returns an empty tier on error.
inline CoordinatorTier OpenCoordinatorTier(
    const std::vector<core::Trajectory>& data, size_t num_shards,
    const std::string& dir) {
  CoordinatorTier tier;
  kv::Env::Default()->CreateDir(dir);  // mkdir is non-recursive
  core::TrassOptions store_options;
  std::vector<std::shared_ptr<serve::ShardTransport>> transports;
  for (size_t i = 0; i < num_shards; ++i) {
    const std::string path = dir + "/shard" + std::to_string(i);
    kv::Env::Default()->RemoveDirRecursively(path);
    std::unique_ptr<core::TrassStore> store;
    if (!core::TrassStore::Open(store_options, path, &store).ok()) {
      return CoordinatorTier{};
    }
    transports.push_back(
        std::make_shared<serve::DirectShardTransport>(store.get()));
    tier.stores.push_back(std::move(store));
  }
  serve::CoordinatorOptions options;
  options.max_resolution = store_options.max_resolution;
  tier.coordinator = std::make_unique<serve::ShardCoordinator>(
      options, std::move(transports));
  if (!tier.coordinator->PutBatch(data).ok()) return CoordinatorTier{};
  for (auto& store : tier.stores) store->Flush();
  return tier;
}

/// Latency medians plus the serving-tier health rates for one pass.
struct CoordinatorPassResult {
  double threshold_p50_ms = 0.0;
  double topk_p50_ms = 0.0;
  double hedge_rate = 0.0;    // hedges sent / shard attempts
  double partial_rate = 0.0;  // queries answered as verified partials
  double shed_rate = 0.0;     // queries rejected by the tenant quota
  size_t queries = 0;
};

/// Runs each query as a threshold search (at `eps`) and a top-`k`
/// search through the coordinator, allow_partial with a generous
/// deadline — the production serving posture.
inline CoordinatorPassResult RunCoordinatorQueries(
    CoordinatorTier& tier, const std::vector<core::Trajectory>& data,
    const std::vector<size_t>& query_indices, double eps, int k) {
  CoordinatorPassResult result;
  serve::CoordinatorQueryOptions query_options;
  query_options.query.allow_partial = true;
  query_options.query.deadline_ms = 10000.0;
  std::vector<double> threshold_ms, topk_ms;
  uint64_t partials = 0, sheds = 0;
  for (size_t qi : query_indices) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics m;
    Status s = tier.coordinator->ThresholdSearch(
        data[qi].points, eps, core::Measure::kFrechet, &found, &m,
        query_options);
    result.queries++;
    if (s.IsBusy()) {
      sheds++;
    } else if (s.ok()) {
      threshold_ms.push_back(m.total_ms);
      if (m.partial) partials++;
    }
    s = tier.coordinator->TopKSearch(data[qi].points, k,
                                     core::Measure::kFrechet, &found, &m,
                                     query_options);
    result.queries++;
    if (s.IsBusy()) {
      sheds++;
    } else if (s.ok()) {
      topk_ms.push_back(m.total_ms);
      if (m.partial) partials++;
    }
  }
  result.threshold_p50_ms = Median(threshold_ms);
  result.topk_p50_ms = Median(topk_ms);
  uint64_t attempts = 0, hedges = 0;
  for (const serve::ShardStats& stats : tier.coordinator->Stats()) {
    attempts += stats.attempts;
    hedges += stats.hedges_sent;
  }
  if (attempts > 0) {
    result.hedge_rate = static_cast<double>(hedges) /
                        static_cast<double>(attempts);
  }
  if (result.queries > 0) {
    result.partial_rate = static_cast<double>(partials) /
                          static_cast<double>(result.queries);
    result.shed_rate = static_cast<double>(sheds) /
                       static_cast<double>(result.queries);
  }
  return result;
}

inline void PrintCoordinatorHeader() {
  std::printf("%-8s %18s %16s %12s %13s %10s\n", "shards",
              "threshold-ms(p50)", "topk-ms(p50)", "hedge-rate",
              "partial-rate", "shed-rate");
  PrintRule(84);
}

inline void PrintCoordinatorRow(size_t shards,
                                const CoordinatorPassResult& r) {
  std::printf("%-8zu %18.2f %16.2f %12.4f %13.4f %10.4f\n", shards,
              r.threshold_p50_ms, r.topk_p50_ms, r.hedge_rate,
              r.partial_rate, r.shed_rate);
}

}  // namespace bench
}  // namespace trass

#endif  // TRASS_BENCH_BENCH_SERVE_COMMON_H_
