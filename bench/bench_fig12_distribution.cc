// Figure 12: distribution of trajectories over (a) XZ* resolutions and
// (b) position codes. Reproduces the paper's shape: driving-range trips
// land around resolutions 10-16, waiting vehicles peak at the maximum
// resolution, and position codes spread across all ten combinations.

#include "bench_common.h"

#include "index/xzstar.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset) {
  std::printf("\n=== Figure 12 — distribution — %s (%zu trajectories) ===\n",
              dataset.name.c_str(), dataset.data.size());
  index::XzStar xz(16);
  std::vector<uint64_t> by_resolution(17, 0);
  std::vector<uint64_t> by_code(11, 0);
  for (const auto& t : dataset.data) {
    const auto space = xz.Index(t.points);
    ++by_resolution[space.seq.length()];
    ++by_code[space.pos];
  }
  std::printf("(a) trajectories per resolution\n");
  for (int r = 0; r <= 16; ++r) {
    std::printf("  res %2d: %8llu  ", r,
                static_cast<unsigned long long>(by_resolution[r]));
    const int bar = static_cast<int>(60.0 * static_cast<double>(by_resolution[r]) /
                                     static_cast<double>(dataset.data.size()));
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("(b) trajectories per position code\n");
  for (int code = 1; code <= 10; ++code) {
    std::printf("  code %2d: %8llu  ", code,
                static_cast<unsigned long long>(by_code[code]));
    const int bar = static_cast<int>(60.0 * static_cast<double>(by_code[code]) /
                                     static_cast<double>(dataset.data.size()));
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  RunDataset(MakeTDrive(DefaultN(), 1));
  RunDataset(MakeLorry(DefaultN(), 1));
  return 0;
}
