// Micro-benchmarks of the storage substrate: sequential/random writes,
// point gets, and range scans on the embedded LSM engine.

#include <benchmark/benchmark.h>

#include <memory>

#include "kv/db.h"
#include "kv/env.h"
#include "util/random.h"

namespace {

using trass::Random;
using trass::Slice;
namespace kv = trass::kv;

std::string KeyOf(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::unique_ptr<kv::DB> FreshDb(const std::string& name) {
  const std::string path = "/tmp/trass_bench_kv/" + name;
  kv::Env::Default()->RemoveDirRecursively(path);
  kv::Env::Default()->CreateDir("/tmp/trass_bench_kv");
  kv::Options options;
  std::unique_ptr<kv::DB> db;
  kv::DB::Open(options, path, &db);
  return db;
}

void BM_SequentialPut(benchmark::State& state) {
  auto db = FreshDb("seq_put");
  const std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    db->Put(kv::WriteOptions(), KeyOf(i++), value);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SequentialPut);

void BM_RandomPut(benchmark::State& state) {
  auto db = FreshDb("rand_put");
  const std::string value(256, 'v');
  Random rnd(1);
  uint64_t count = 0;
  for (auto _ : state) {
    db->Put(kv::WriteOptions(), KeyOf(rnd.Uniform(1u << 20)), value);
    ++count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(count));
}
BENCHMARK(BM_RandomPut);

void BM_PointGet(benchmark::State& state) {
  auto db = FreshDb("get");
  const std::string value(256, 'v');
  constexpr uint64_t kKeys = 50000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    db->Put(kv::WriteOptions(), KeyOf(i), value);
  }
  db->Flush();
  Random rnd(2);
  std::string out;
  uint64_t count = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(kv::ReadOptions(), KeyOf(rnd.Uniform(kKeys)), &out));
    ++count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(count));
}
BENCHMARK(BM_PointGet);

void BM_RangeScan(benchmark::State& state) {
  auto db = FreshDb("scan");
  const std::string value(256, 'v');
  constexpr uint64_t kKeys = 50000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    db->Put(kv::WriteOptions(), KeyOf(i), value);
  }
  db->Flush();
  Random rnd(3);
  const int64_t scan_len = state.range(0);
  uint64_t rows = 0;
  for (auto _ : state) {
    std::unique_ptr<kv::Iterator> iter(db->NewIterator(kv::ReadOptions()));
    iter->Seek(KeyOf(rnd.Uniform(kKeys - static_cast<uint64_t>(scan_len))));
    for (int64_t i = 0; i < scan_len && iter->Valid(); ++i, iter->Next()) {
      benchmark::DoNotOptimize(iter->value());
      ++rows;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_RangeScan)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
