// Figure 10: top-k similarity search — (a) median query time and
// (b) candidate counts, per solution, varying k.

#include "bench_common.h"

#include <cstring>

#include "core/metrics.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 10 — top-k similarity search — %s (%zu "
              "trajectories, %zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  const std::vector<int> ks = {50, 100, 150, 200, 250};

  for (auto& searcher : searchers) {
    Stopwatch build;
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) {
      std::printf("%-22s build failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s (built in %.1f s)\n", searcher->name().c_str(),
                build.ElapsedSeconds());
    std::printf("  %-6s %14s %16s\n", "k", "time-ms(p50)",
                "candidates(p50)");
    for (int k : ks) {
      std::vector<double> times, candidates;
      for (size_t q = 0; q < dataset.num_queries(); ++q) {
        std::vector<core::SearchResult> found;
        core::QueryMetrics metrics;
        s = searcher->TopK(dataset.Query(q), k, core::Measure::kFrechet,
                           &found, &metrics);
        if (!s.ok()) break;
        times.push_back(metrics.total_ms);
        candidates.push_back(static_cast<double>(metrics.candidates));
      }
      if (!s.ok()) {
        std::printf("  %-6d failed: %s\n", k, s.ToString().c_str());
        continue;
      }
      std::printf("  %-6d %14.2f %16.0f\n", k, Median(times),
                  Median(candidates));
    }
  }
}

// Refine-scaling pass: top-k at refine_threads 1/2/4/8 on one store.
// Top-k refinement shares a monotonically tightening k-th-distance bound
// across workers with a sequential-equivalence guarantee, so every
// thread count must return the single-thread answers exactly (non-zero
// exit otherwise).
int RefineScalingPass(const Dataset& dataset, const std::string& dir,
                      int k) {
  std::printf("\n=== Figure 10 (supplement) — top-k refine scaling — %s "
              "(k=%d) ===\n",
              dataset.name.c_str(), k);
  {
    baselines::TrassSearcher builder(core::TrassOptions(),
                                     dir + "/trass_scale");
    Status s = builder.Build(dataset.data);
    if (!s.ok()) {
      std::printf("build failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }  // closed here so the per-thread-count reopens below get the lock

  std::vector<std::vector<core::SearchResult>> reference;
  int rc = 0;
  std::printf("  %-8s %14s %14s %14s\n", "threads", "time-ms(p50)",
              "refine-ms(p50)", "lb-reject(p50)");
  for (size_t threads : {1, 2, 4, 8}) {
    core::TrassOptions options;
    options.refine_threads = threads;
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(options, dir + "/trass_scale", &store);
    if (!s.ok()) {
      std::printf("  %-8zu open failed: %s\n", threads, s.ToString().c_str());
      return 1;
    }
    std::vector<double> times, refine, rejected;
    bool identical = true;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      s = store->TopKSearch(dataset.Query(q), k, core::Measure::kFrechet,
                            &found, &metrics);
      if (!s.ok()) break;
      times.push_back(metrics.total_ms);
      refine.push_back(metrics.refine_ms);
      rejected.push_back(static_cast<double>(metrics.lb_rejected));
      if (threads == 1) {
        reference.push_back(found);
      } else if (found.size() != reference[q].size()) {
        identical = false;
      } else {
        for (size_t i = 0; i < found.size(); ++i) {
          if (found[i].id != reference[q][i].id ||
              found[i].distance != reference[q][i].distance) {
            identical = false;
          }
        }
      }
    }
    if (!s.ok()) {
      std::printf("  %-8zu failed: %s\n", threads, s.ToString().c_str());
      return 1;
    }
    std::printf("  %-8zu %14.2f %14.2f %14.0f%s\n", threads, Median(times),
                Median(refine), Median(rejected),
                identical ? "" : "  RESULTS DIVERGED");
    if (!identical) rc = 1;
  }
  if (rc == 0) {
    std::printf("  results identical across thread counts\n");
  }
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  using namespace trass::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string dir = ScratchDir("fig10");
  if (smoke) {
    return RefineScalingPass(MakeTDrive(400, 4), dir, 25);
  }
  const Dataset tdrive = MakeTDrive(DefaultN(), DefaultQueries());
  RunDataset(tdrive, dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return RefineScalingPass(tdrive, dir, 100);
}
