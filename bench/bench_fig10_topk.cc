// Figure 10: top-k similarity search — (a) median query time and
// (b) candidate counts, per solution, varying k.

#include "bench_common.h"

#include "core/metrics.h"
#include "util/stopwatch.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 10 — top-k similarity search — %s (%zu "
              "trajectories, %zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  auto searchers = MakeAllSearchers(dir);
  const std::vector<int> ks = {50, 100, 150, 200, 250};

  for (auto& searcher : searchers) {
    Stopwatch build;
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) {
      std::printf("%-22s build failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s (built in %.1f s)\n", searcher->name().c_str(),
                build.ElapsedSeconds());
    std::printf("  %-6s %14s %16s\n", "k", "time-ms(p50)",
                "candidates(p50)");
    for (int k : ks) {
      std::vector<double> times, candidates;
      for (size_t q = 0; q < dataset.num_queries(); ++q) {
        std::vector<core::SearchResult> found;
        core::QueryMetrics metrics;
        s = searcher->TopK(dataset.Query(q), k, core::Measure::kFrechet,
                           &found, &metrics);
        if (!s.ok()) break;
        times.push_back(metrics.total_ms);
        candidates.push_back(static_cast<double>(metrics.candidates));
      }
      if (!s.ok()) {
        std::printf("  %-6d failed: %s\n", k, s.ToString().c_str());
        continue;
      }
      std::printf("  %-6d %14.2f %16.0f\n", k, Median(times),
                  Median(candidates));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig10");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
