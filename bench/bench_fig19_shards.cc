// Figure 19: effect of the shards row-key component. Too few shards
// serialize similar trajectories into one region (skew); too many spread
// each scan across every region (coordination cost). The paper lands on
// shards = 8 for a five-node cluster.

#include <cstring>

#include "bench_common.h"
#include "bench_serve_common.h"

#include "core/metrics.h"
#include "core/trass_store.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 19 — effect of shards — %s (%zu trajectories, "
              "%zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  std::printf("%-8s %18s %16s\n", "shards", "threshold-ms(p50)",
              "topk-ms(p50)");
  PrintRule(46);
  for (int shards : {1, 2, 4, 8, 16, 32}) {
    core::TrassOptions options;
    options.shards = shards;
    options.scan_threads = 4;
    const std::string path = dir + "/s" + std::to_string(shards);
    kv::Env::Default()->RemoveDirRecursively(path);
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(options, path, &store);
    if (!s.ok()) continue;
    for (const auto& t : dataset.data) {
      s = store->Put(t);
      if (!s.ok()) break;
    }
    store->Flush();
    std::vector<double> threshold_ms, topk_ms;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                                 core::Measure::kFrechet, &found, &metrics)
              .ok()) {
        threshold_ms.push_back(metrics.total_ms);
      }
      if (store->TopKSearch(dataset.Query(q), 50, core::Measure::kFrechet,
                            &found, &metrics)
              .ok()) {
        topk_ms.push_back(metrics.total_ms);
      }
    }
    std::printf("%-8d %18.2f %16.2f\n", shards, Median(threshold_ms),
                Median(topk_ms));
  }
}

/// Coordinator mode (--shards N): the same dataset served by an N-shard
/// scatter-gather tier instead of one store, with the serving-tier
/// health rates next to the latency medians.
void RunCoordinator(const Dataset& dataset, const std::string& dir,
                    size_t num_shards) {
  std::printf("\n=== Figure 19 (coordinator mode) — %zu-shard scatter-gather "
              "— %s (%zu trajectories, %zu queries) ===\n",
              num_shards, dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  PrintCoordinatorHeader();
  CoordinatorTier tier =
      OpenCoordinatorTier(dataset.data, num_shards, dir + "/coord");
  if (tier.coordinator == nullptr) {
    std::printf("(coordinator tier failed to open)\n");
    return;
  }
  const CoordinatorPassResult r = RunCoordinatorQueries(
      tier, dataset.data, dataset.query_indices, EpsNorm(0.01), 50);
  PrintCoordinatorRow(num_shards, r);
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  using namespace trass::bench;
  size_t coordinator_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      coordinator_shards = static_cast<size_t>(std::atoll(argv[++i]));
    }
  }
  const std::string dir = ScratchDir("fig19");
  const Dataset dataset = MakeTDrive(DefaultN(), DefaultQueries());
  if (coordinator_shards > 0) {
    RunCoordinator(dataset, dir, coordinator_shards);
  } else {
    RunDataset(dataset, dir);
  }
  return 0;
}
