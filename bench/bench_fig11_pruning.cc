// Figure 11: effect of the pruning strategies at eps = 0.01 —
// (a) pruning time, (b) trajectories retrieved from storage (global
// pruning quality), (c) precision (final answers / candidates after
// local filtering).

#include "bench_common.h"

#include "core/metrics.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 11 — pruning strategies (eps = 0.01) — %s ===\n",
              dataset.name.c_str());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %16s %18s %14s %12s\n", "solution", "prune-ms(p50)",
              "retrieved(p50)", "cands(p50)", "precision");
  PrintRule();
  for (auto& searcher : searchers) {
    if (!searcher->SupportsThreshold()) {
      std::printf("%-22s (threshold search unsupported; skipped)\n",
                  searcher->name().c_str());
      continue;
    }
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    std::vector<double> prune_ms, retrieved, candidates, precision;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      s = searcher->Threshold(dataset.Query(q), EpsNorm(0.01),
                              core::Measure::kFrechet,
                              &found, &metrics);
      if (!s.ok()) break;
      prune_ms.push_back(metrics.pruning_ms);
      retrieved.push_back(static_cast<double>(metrics.retrieved));
      candidates.push_back(static_cast<double>(metrics.candidates));
      precision.push_back(metrics.precision());
    }
    if (!s.ok()) {
      std::printf("%-22s failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s %16.3f %18.0f %14.0f %12.3f\n",
                searcher->name().c_str(), Median(prune_ms),
                Median(retrieved), Median(candidates), Median(precision));
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig11");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
