// Figure 11: effect of the pruning strategies at eps = 0.01 —
// (a) pruning time, (b) trajectories retrieved from storage (global
// pruning quality), (c) precision (final answers / candidates after
// local filtering).
//
// Supplement: the memory-resident filter-tier pass (--filter-only runs
// just it). The dataset is a thin horizontal band of trajectories; the
// sparse probes sit a few dozen eps above the band — inside the
// enlarged regions of the band's XZ* elements (so Lemma 8/9 cannot
// drop them and the value directory sees them as non-empty candidate
// values) but provably farther than eps from every actual row. That
// position skew between an element's region and where its rows really
// are is exactly what the tier's aggregate-MBR bound captures. The
// pass enforces byte-identical answers filter-on vs filter-off and a
// >= 5x drop in both index values submitted and rows read on the
// sparse probes (rows scanned ∝ bytes read; the store has no finer
// byte counter). --filter_out=PATH additionally writes a JSON snapshot
// (BENCH_fig11_filter.json in run_benches.sh).

#include "bench_common.h"

#include <cstring>
#include <string>

#include "core/metrics.h"
#include "util/random.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figure 11 — pruning strategies (eps = 0.01) — %s ===\n",
              dataset.name.c_str());
  auto searchers = MakeAllSearchers(dir);
  std::printf("%-22s %16s %18s %14s %12s\n", "solution", "prune-ms(p50)",
              "retrieved(p50)", "cands(p50)", "precision");
  PrintRule();
  for (auto& searcher : searchers) {
    if (!searcher->SupportsThreshold()) {
      std::printf("%-22s (threshold search unsupported; skipped)\n",
                  searcher->name().c_str());
      continue;
    }
    Status s = searcher->Build(dataset.data);
    if (!s.ok()) continue;
    std::vector<double> prune_ms, retrieved, candidates, precision;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      s = searcher->Threshold(dataset.Query(q), EpsNorm(0.01),
                              core::Measure::kFrechet,
                              &found, &metrics);
      if (!s.ok()) break;
      prune_ms.push_back(metrics.pruning_ms);
      retrieved.push_back(static_cast<double>(metrics.retrieved));
      candidates.push_back(static_cast<double>(metrics.candidates));
      precision.push_back(metrics.precision());
    }
    if (!s.ok()) {
      std::printf("%-22s failed: %s\n", searcher->name().c_str(),
                  s.ToString().c_str());
      continue;
    }
    std::printf("%-22s %16.3f %18.0f %14.0f %12.3f\n",
                searcher->name().c_str(), Median(prune_ms),
                Median(retrieved), Median(candidates), Median(precision));
  }
}

// ----------------------------------------------------- filter tier pass

// All geometry below is denominated in eps units (E = EpsNorm(0.01))
// so the probe/row distances line up with the query threshold by
// construction. The band sits at y = kBandY and spans kStripWidth in
// x; every trajectory is a rightward walk of ~12 points so probes and
// rows share a resolution window (Lemmas 6/7 would otherwise exclude
// the band's elements from the probes' candidates).
constexpr double kBandY = 0.25;
constexpr int kWalkPoints = 12;

std::vector<geo::Point> BandWalk(Random* rnd, double x0, double y0,
                                 double eps) {
  std::vector<geo::Point> out;
  double x = x0;
  double y = y0;
  for (int i = 0; i < kWalkPoints; ++i) {
    out.push_back(geo::Point{x, y});
    x += 0.5 * eps;
    y += rnd->UniformDouble(-0.1 * eps, 0.1 * eps);
  }
  return out;
}

std::vector<core::Trajectory> BandDataset(size_t n, double eps,
                                          double strip_width) {
  Random rnd(20260809);
  std::vector<core::Trajectory> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core::Trajectory t;
    t.id = i + 1;
    t.points = BandWalk(&rnd, 0.4 + rnd.UniformDouble(0, strip_width),
                        kBandY + rnd.UniformDouble(0, 0.5 * eps), eps);
    data.push_back(std::move(t));
  }
  return data;
}

struct PassTotals {
  double index_values = 0;
  double rows_read = 0;
  uint64_t elements_pruned = 0;
  uint64_t mbr_pruned = 0;
  uint64_t fingerprint_skips = 0;
  uint64_t memory_bytes = 0;
};

// Runs the probe set against both stores, enforcing byte-identical
// answers. Returns false on divergence or query failure.
bool RunProbes(baselines::TrassSearcher* off, baselines::TrassSearcher* on,
               const std::vector<std::vector<geo::Point>>& probes,
               double eps, PassTotals* t_off, PassTotals* t_on) {
  for (const auto& probe : probes) {
    std::vector<core::SearchResult> r_off, r_on;
    core::QueryMetrics m_off, m_on;
    Status s = off->Threshold(probe, eps, core::Measure::kFrechet, &r_off,
                              &m_off);
    if (s.ok()) {
      s = on->Threshold(probe, eps, core::Measure::kFrechet, &r_on, &m_on);
    }
    if (!s.ok()) {
      std::printf("filter pass query failed: %s\n", s.ToString().c_str());
      return false;
    }
    if (r_off.size() != r_on.size()) {
      std::printf("filter pass DIVERGED: %zu vs %zu results\n", r_off.size(),
                  r_on.size());
      return false;
    }
    for (size_t i = 0; i < r_off.size(); ++i) {
      if (r_off[i].id != r_on[i].id ||
          r_off[i].distance != r_on[i].distance) {
        std::printf("filter pass DIVERGED at result %zu (id %llu vs %llu)\n",
                    i, static_cast<unsigned long long>(r_off[i].id),
                    static_cast<unsigned long long>(r_on[i].id));
        return false;
      }
    }
    t_off->index_values += static_cast<double>(m_off.index_values);
    t_off->rows_read += static_cast<double>(m_off.retrieved);
    t_on->index_values += static_cast<double>(m_on.index_values);
    t_on->rows_read += static_cast<double>(m_on.retrieved);
    t_on->elements_pruned += m_on.filter_elements_pruned;
    t_on->mbr_pruned += m_on.filter_mbr_pruned;
    t_on->fingerprint_skips += m_on.fingerprint_skips;
    t_on->memory_bytes = m_on.filter_memory_bytes;  // gauge
  }
  return true;
}

void PrintPassRow(const char* name, size_t queries, const PassTotals& t) {
  std::printf("%-14s %12.1f %12.1f %12llu %12llu %12llu %12.2f\n", name,
              t.index_values / queries, t.rows_read / queries,
              static_cast<unsigned long long>(t.elements_pruned),
              static_cast<unsigned long long>(t.mbr_pruned),
              static_cast<unsigned long long>(t.fingerprint_skips),
              static_cast<double>(t.memory_bytes) / (1024.0 * 1024.0));
}

int FilterTierPass(const std::string& dir, size_t n,
                   const std::string& json_out) {
  std::printf("\n=== Figure 11 (supplement) — memory-resident filter tier "
              "(%zu trajectories) ===\n", n);
  const double eps = EpsNorm(0.01);
  const double strip_width = 600.0 * eps;
  const auto data = BandDataset(n, eps, strip_width);

  core::TrassOptions off_options;
  baselines::TrassSearcher off(off_options, dir + "/filter_off");
  core::TrassOptions on_options;
  on_options.filter_tier.enable = true;
  baselines::TrassSearcher on(on_options, dir + "/filter_on");
  Status s = off.Build(data);
  if (s.ok()) s = on.Build(data);
  if (!s.ok()) {
    std::printf("build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Two probe shapes: dense probes on the band itself (equivalence with
  // real matches) and sparse probes 5-10 eps above it — within the
  // band elements' enlarged regions, farther than eps from every row.
  Random rnd(7);
  std::vector<std::vector<geo::Point>> dense, sparse;
  for (int i = 0; i < 16; ++i) {
    const double x0 = 0.4 + rnd.UniformDouble(0, strip_width);
    dense.push_back(
        BandWalk(&rnd, x0, kBandY + rnd.UniformDouble(0, 0.5 * eps), eps));
    sparse.push_back(BandWalk(
        &rnd, 0.4 + rnd.UniformDouble(0, strip_width),
        kBandY + rnd.UniformDouble(5.0 * eps, 10.0 * eps), eps));
  }

  PassTotals dense_off, dense_on, sparse_off, sparse_on;
  if (!RunProbes(&off, &on, dense, eps, &dense_off, &dense_on) ||
      !RunProbes(&off, &on, sparse, eps, &sparse_off, &sparse_on)) {
    return 1;
  }

  std::printf("%-14s %12s %12s %12s %12s %12s %12s\n", "pass",
              "idx-vals(avg)", "rows(avg)", "elems-pruned", "mbr-pruned",
              "fp-skips", "tier-MiB");
  PrintRule();
  PrintPassRow("dense off", dense.size(), dense_off);
  PrintPassRow("dense on", dense.size(), dense_on);
  PrintPassRow("sparse off", sparse.size(), sparse_off);
  PrintPassRow("sparse on", sparse.size(), sparse_on);

  // The acceptance gate: on sparse-region probes the tier must cut both
  // the index values submitted to scans and the rows read by >= 5x.
  const double iv_ratio =
      sparse_off.index_values / std::max(1.0, sparse_on.index_values);
  const double row_ratio =
      sparse_off.rows_read / std::max(1.0, sparse_on.rows_read);
  std::printf("sparse-region reduction: index_values %.1fx, rows read "
              "%.1fx (gate: >= 5x)\n", iv_ratio, row_ratio);

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig11_filter_tier\",\n"
                 "  \"trajectories\": %zu,\n"
                 "  \"sparse_index_values_off\": %.1f,\n"
                 "  \"sparse_index_values_on\": %.1f,\n"
                 "  \"sparse_rows_read_off\": %.1f,\n"
                 "  \"sparse_rows_read_on\": %.1f,\n"
                 "  \"sparse_index_value_reduction\": %.2f,\n"
                 "  \"sparse_rows_read_reduction\": %.2f,\n"
                 "  \"elements_pruned\": %llu,\n"
                 "  \"mbr_pruned\": %llu,\n"
                 "  \"fingerprint_skips\": %llu,\n"
                 "  \"filter_memory_bytes\": %llu\n"
                 "}\n",
                 n, sparse_off.index_values, sparse_on.index_values,
                 sparse_off.rows_read, sparse_on.rows_read, iv_ratio,
                 row_ratio,
                 static_cast<unsigned long long>(sparse_on.elements_pruned +
                                                 dense_on.elements_pruned),
                 static_cast<unsigned long long>(sparse_on.mbr_pruned +
                                                 dense_on.mbr_pruned),
                 static_cast<unsigned long long>(
                     sparse_on.fingerprint_skips +
                     dense_on.fingerprint_skips),
                 static_cast<unsigned long long>(sparse_on.memory_bytes));
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (iv_ratio < 5.0 || row_ratio < 5.0) {
    std::printf("FAILED: sparse-region reduction below the 5x gate\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main(int argc, char** argv) {
  using namespace trass::bench;
  bool smoke = false, filter_only = false;
  std::string filter_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--filter-only") == 0) filter_only = true;
    if (std::strncmp(argv[i], "--filter_out=", 13) == 0) {
      filter_out = argv[i] + 13;
    }
  }
  const std::string dir = ScratchDir("fig11");
  const size_t filter_n = smoke ? 2000 : DefaultN();
  if (smoke || filter_only) {
    return FilterTierPass(dir, filter_n, filter_out);
  }
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return FilterTierPass(dir, filter_n, filter_out);
}
