// Section IV-B's analytic claim and Section V-B's empirical claim:
//
//  * position codes reduce I/O by 83.6% on average over the 14 "far
//    sub-quad" scenarios (re-derived here directly from the shipped
//    code->combination mapping);
//  * XZ* global pruning retrieves up to 66.4% fewer rows than
//    XZ-Ordering on the same store (measured here head-to-head).

#include "bench_common.h"

#include "core/metrics.h"
#include "index/xzstar.h"

namespace trass {
namespace bench {
namespace {

void TheoreticalReduction() {
  std::printf("=== Section IV-B — theoretical I/O reduction of position "
              "codes ===\n");
  auto reduction = [](unsigned far_mask) {
    int pruned = 0;
    for (int code = 1; code <= 10; ++code) {
      if (index::MaskFromPositionCode(code) & far_mask) ++pruned;
    }
    return pruned * 10.0;
  };
  const char* quad_names = "abcd";
  double total = 0.0;
  int cases = 0;
  for (unsigned mask = 1; mask < 15; ++mask) {  // 1-3 quads far from Q
    std::string label;
    for (int q = 0; q < 4; ++q) {
      if (mask & (1u << q)) label.push_back(quad_names[q]);
    }
    const double r = reduction(mask);
    std::printf("  far quads {%-3s}: prune %.0f%% of index spaces\n",
                label.c_str(), r);
    total += r;
    ++cases;
  }
  std::printf("  average over %d cases: %.1f%% (paper: 83.6%%)\n\n", cases,
              total / cases);
}

void EmpiricalReduction(const Dataset& dataset, const std::string& dir) {
  std::printf("=== Section V-B — rows retrieved: XZ* vs XZ-Ordering — %s "
              "===\n",
              dataset.name.c_str());
  baselines::TrassSearcher trass_searcher(core::TrassOptions(),
                                          dir + "/trass");
  baselines::Xz2Store xz2(baselines::Xz2Store::Options(), dir + "/xz2");
  if (!trass_searcher.Build(dataset.data).ok() ||
      !xz2.Build(dataset.data).ok()) {
    std::printf("  build failed\n");
    return;
  }
  std::printf("  %-8s %14s %14s %12s\n", "eps", "XZ*-rows", "XZ2-rows",
              "reduction");
  for (double eps : {0.001, 0.005, 0.01, 0.02}) {
    uint64_t trass_rows = 0, xz2_rows = 0;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> a, b;
      core::QueryMetrics ma, mb;
      trass_searcher.Threshold(dataset.Query(q), EpsNorm(eps),
                               core::Measure::kFrechet,
                               &a, &ma);
      xz2.Threshold(dataset.Query(q), EpsNorm(eps), core::Measure::kFrechet,
                    &b, &mb);
      trass_rows += ma.retrieved;
      xz2_rows += mb.retrieved;
    }
    const double reduction =
        xz2_rows == 0 ? 0.0
                      : 100.0 * (1.0 - static_cast<double>(trass_rows) /
                                           static_cast<double>(xz2_rows));
    std::printf("  %-8.3f %14llu %14llu %11.1f%%\n", eps,
                static_cast<unsigned long long>(trass_rows),
                static_cast<unsigned long long>(xz2_rows), reduction);
  }
  std::printf("  (paper: up to 66.4%% fewer rows than XZ-Ordering)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  TheoreticalReduction();
  const std::string dir = ScratchDir("theory_io");
  EmpiricalReduction(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  EmpiricalReduction(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
