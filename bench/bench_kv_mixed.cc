// Mixed-load KV engine bench: one writer ingesting while scan threads
// stream range reads and compactions churn underneath — the regime the
// background-compaction + readahead work targets. Two passes over the
// same workload:
//
//   legacy — background_compaction off, scan_readahead_bytes 0 (the
//            seed engine: compactions run synchronously under the DB
//            mutex on the writing thread, scans pay block-at-a-time
//            cached preads)
//   tuned  — the defaults (dedicated compaction thread + L0 ingest
//            throttle, 256 KB zero-copy readahead windows on scans)
//
// Reported per pass: Put latency percentiles, write-stall count/ms,
// scan MB/s, block-cache hit rate, and readahead traffic.
//
// --smoke: scaled-down run gating the deterministic invariants (both
// passes finish healthy, identical final row counts, the tuned pass
// really used readahead and background compactions, the legacy pass
// used neither) with exit status 1 on violation — the ci.sh regression
// gate. Timing ratios are printed, not gated: sanitizer and CI load
// would make them flaky.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kv/db.h"
#include "kv/env.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using trass::Histogram;
using trass::Random;
using trass::Status;
using trass::Stopwatch;
namespace kv = trass::kv;

std::string KeyOf(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueOf(uint64_t i) {
  return std::string(256, static_cast<char>('a' + i % 26));
}

struct PassResult {
  std::string name;
  bool ok = false;
  std::string error;
  double mixed_ms = 0.0;
  double put_p50_us = 0.0, put_p99_us = 0.0, put_max_us = 0.0;
  uint64_t write_stalls = 0, stall_ms = 0;
  uint64_t scanned_rows = 0;
  double scanned_mb = 0.0, scan_mb_s = 0.0;
  uint64_t cache_hits = 0, cache_misses = 0;
  uint64_t readahead_reads = 0, readahead_bytes = 0;
  uint64_t final_rows = 0;
  int deep_files = 0;

  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

PassResult Fail(PassResult r, const std::string& what, const Status& s) {
  r.error = what + ": " + s.ToString();
  return r;
}

PassResult RunPass(const std::string& name, bool tuned, size_t preload,
                   size_t mixed_writes, size_t scan_len, int scan_threads) {
  PassResult r;
  r.name = name;
  const std::string base = "/tmp/trass_bench_kv_mixed";
  kv::Env::Default()->CreateDir(base);
  const std::string path = base + "/" + name;
  kv::Env::Default()->RemoveDirRecursively(path);

  kv::Options options;
  options.write_buffer_size = 256 << 10;  // flush often: real churn
  options.target_file_size = 256 << 10;
  options.background_compaction = tuned;
  options.scan_readahead_bytes = tuned ? 256 * 1024 : 0;
  std::unique_ptr<kv::DB> db;
  Status s = kv::DB::Open(options, path, &db);
  if (!s.ok()) return Fail(std::move(r), "open", s);

  for (uint64_t i = 0; i < preload; ++i) {
    s = db->Put(kv::WriteOptions(), KeyOf(i), ValueOf(i));
    if (!s.ok()) return Fail(std::move(r), "preload put", s);
  }
  s = db->Flush();
  if (!s.ok()) return Fail(std::move(r), "preload flush", s);
  db->WaitForCompactions();
  db->mutable_io_stats()->Reset();

  // Scan threads stream ranges over the preloaded keyspace until the
  // writer finishes; the writer appends past it, so compactions keep
  // rewriting the very tables being scanned.
  std::atomic<bool> done{false};
  std::atomic<bool> scan_failed{false};
  std::atomic<uint64_t> scanned_rows{0};
  std::atomic<uint64_t> scanned_bytes{0};
  std::vector<std::thread> scanners;
  scanners.reserve(static_cast<size_t>(scan_threads));
  for (int t = 0; t < scan_threads; ++t) {
    scanners.emplace_back([&, t] {
      Random rnd(static_cast<uint32_t>(100 + t));
      while (!done.load(std::memory_order_relaxed)) {
        std::unique_ptr<kv::Iterator> iter(
            db->NewIterator(kv::ReadOptions()));
        iter->Seek(KeyOf(rnd.Uniform(preload)));
        uint64_t rows = 0, bytes = 0;
        for (size_t i = 0; i < scan_len && iter->Valid();
             ++i, iter->Next()) {
          bytes += iter->key().size() + iter->value().size();
          ++rows;
        }
        if (!iter->status().ok()) {
          scan_failed.store(true);
          return;
        }
        scanned_rows.fetch_add(rows, std::memory_order_relaxed);
        scanned_bytes.fetch_add(bytes, std::memory_order_relaxed);
      }
    });
  }

  Histogram put_latency;  // microseconds
  Stopwatch mixed;
  for (uint64_t i = 0; i < mixed_writes; ++i) {
    Stopwatch one;
    s = db->Put(kv::WriteOptions(), KeyOf(preload + i),
                ValueOf(preload + i));
    put_latency.Add(one.ElapsedMillis() * 1000.0);
    if (!s.ok()) break;
  }
  r.mixed_ms = mixed.ElapsedMillis();
  done.store(true);
  for (std::thread& t : scanners) t.join();
  if (!s.ok()) return Fail(std::move(r), "mixed put", s);
  if (scan_failed.load()) {
    r.error = "scan iterator errored";
    return r;
  }
  db->WaitForCompactions();
  if (!db->background_error().ok()) {
    return Fail(std::move(r), "background error", db->background_error());
  }

  const auto stats = db->io_stats().Read();
  r.put_p50_us = put_latency.Percentile(50);
  r.put_p99_us = put_latency.Percentile(99);
  r.put_max_us = put_latency.Max();
  r.write_stalls = stats.write_stalls;
  r.stall_ms = stats.stall_ms;
  r.scanned_rows = scanned_rows.load();
  r.scanned_mb =
      static_cast<double>(scanned_bytes.load()) / (1024.0 * 1024.0);
  r.scan_mb_s = r.mixed_ms > 0.0 ? r.scanned_mb / (r.mixed_ms / 1000.0) : 0.0;
  r.cache_hits = stats.cache_hits;
  r.cache_misses = stats.cache_misses;
  r.readahead_reads = stats.readahead_reads;
  r.readahead_bytes = stats.readahead_bytes_read;

  // Settled verification scan: every preloaded and ingested key, once.
  std::unique_ptr<kv::Iterator> iter(db->NewIterator(kv::ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++r.final_rows;
  if (!iter->status().ok()) {
    return Fail(std::move(r), "verification scan", iter->status());
  }
  for (int level = 1; level < kv::kNumLevels; ++level) {
    r.deep_files += db->NumFilesAtLevel(level);
  }
  r.ok = true;
  return r;
}

void PrintPass(const PassResult& r) {
  std::printf("%-8s %9.1f %9.1f %9.1f %7llu %9llu %9.1f %8.1f%% %10.1f\n",
              r.name.c_str(), r.put_p50_us, r.put_p99_us, r.put_max_us,
              static_cast<unsigned long long>(r.write_stalls),
              static_cast<unsigned long long>(r.stall_ms), r.scan_mb_s,
              100.0 * r.hit_rate(),
              static_cast<double>(r.readahead_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t preload = smoke ? 6000 : 60000;
  const size_t mixed_writes = smoke ? 3000 : 30000;
  const size_t scan_len = smoke ? 500 : 2000;
  const int scan_threads = 2;

  std::printf("=== Mixed load: %zu preloaded rows, %zu concurrent writes, "
              "%d scan threads x %zu-row scans%s ===\n",
              preload, mixed_writes, scan_threads, scan_len,
              smoke ? " (smoke)" : "");
  std::printf("%-8s %9s %9s %9s %7s %9s %9s %9s %10s\n", "pass", "p50-us",
              "p99-us", "max-us", "stalls", "stall-ms", "scan-MB/s",
              "hit-rate", "ra-MB");

  const PassResult legacy =
      RunPass("legacy", false, preload, mixed_writes, scan_len, scan_threads);
  const PassResult tuned =
      RunPass("tuned", true, preload, mixed_writes, scan_len, scan_threads);
  if (!legacy.ok || !tuned.ok) {
    std::fprintf(stderr, "bench_kv_mixed: pass failed: %s\n",
                 (!legacy.ok ? legacy : tuned).error.c_str());
    return 1;
  }
  PrintPass(legacy);
  PrintPass(tuned);
  std::printf("tuned vs legacy: put p99 %.2fx, scan throughput %.2fx, "
              "scanned %.1f/%.1f MB\n",
              tuned.put_p99_us > 0.0 ? legacy.put_p99_us / tuned.put_p99_us
                                     : 0.0,
              legacy.scan_mb_s > 0.0 ? tuned.scan_mb_s / legacy.scan_mb_s
                                     : 0.0,
              legacy.scanned_mb, tuned.scanned_mb);

  // Correctness invariants hold in every mode; --smoke turns them into
  // the CI gate (exit 1).
  std::vector<std::string> violations;
  const uint64_t expected_rows =
      static_cast<uint64_t>(preload + mixed_writes);
  if (legacy.final_rows != expected_rows) {
    violations.push_back("legacy row count " +
                         std::to_string(legacy.final_rows) + " != " +
                         std::to_string(expected_rows));
  }
  if (tuned.final_rows != expected_rows) {
    violations.push_back("tuned row count " +
                         std::to_string(tuned.final_rows) + " != " +
                         std::to_string(expected_rows));
  }
  if (legacy.readahead_reads != 0) {
    violations.push_back("legacy pass issued readahead reads");
  }
  if (tuned.readahead_bytes == 0) {
    violations.push_back("tuned pass never used readahead");
  }
  if (tuned.deep_files == 0) {
    violations.push_back("tuned pass never compacted past L0");
  }
  for (const std::string& v : violations) {
    std::fprintf(stderr, "bench_kv_mixed: INVARIANT VIOLATED: %s\n",
                 v.c_str());
  }
  return violations.empty() ? 0 : 1;
}
