// Figures 14 & 15: varying the XZ* maximum resolution — selectivity
// (distinct index values / row keys) and median query time for both
// searches, on both datasets. The paper finds low resolutions (e.g. 14)
// hurt selectivity and query time, while very high resolutions add range
// fragmentation for little gain.

#include "bench_common.h"

#include "core/metrics.h"
#include "core/trass_store.h"

namespace trass {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, const std::string& dir) {
  std::printf("\n=== Figures 14/15 — varying max resolution — %s (%zu "
              "trajectories, %zu queries) ===\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.num_queries());
  std::printf("%-6s %12s %18s %18s\n", "res", "selectivity",
              "threshold-ms(p50)", "topk-ms(p50)");
  PrintRule(60);
  for (int resolution : {10, 12, 14, 16, 18}) {
    core::TrassOptions options;
    options.max_resolution = resolution;
    const std::string path = dir + "/res" + std::to_string(resolution);
    kv::Env::Default()->RemoveDirRecursively(path);
    std::unique_ptr<core::TrassStore> store;
    Status s = core::TrassStore::Open(options, path, &store);
    if (!s.ok()) continue;
    for (const auto& t : dataset.data) {
      s = store->Put(t);
      if (!s.ok()) break;
    }
    if (!s.ok()) continue;
    store->Flush();
    const double selectivity =
        static_cast<double>(store->distinct_index_values()) /
        static_cast<double>(store->num_trajectories());

    std::vector<double> threshold_ms, topk_ms;
    for (size_t q = 0; q < dataset.num_queries(); ++q) {
      std::vector<core::SearchResult> found;
      core::QueryMetrics metrics;
      if (store->ThresholdSearch(dataset.Query(q), EpsNorm(0.01),
                                 core::Measure::kFrechet, &found, &metrics)
              .ok()) {
        threshold_ms.push_back(metrics.total_ms);
      }
      if (store->TopKSearch(dataset.Query(q), 50, core::Measure::kFrechet,
                            &found, &metrics)
              .ok()) {
        topk_ms.push_back(metrics.total_ms);
      }
    }
    std::printf("%-6d %12.4f %18.2f %18.2f\n", resolution, selectivity,
                Median(threshold_ms), Median(topk_ms));
  }
}

}  // namespace
}  // namespace bench
}  // namespace trass

int main() {
  using namespace trass::bench;
  const std::string dir = ScratchDir("fig14");
  RunDataset(MakeTDrive(DefaultN(), DefaultQueries()), dir);
  RunDataset(MakeLorry(DefaultN(), DefaultQueries()), dir);
  return 0;
}
