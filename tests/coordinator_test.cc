// ShardCoordinator: cross-shard merge equivalence (N shards must be
// byte-identical to one store over the union dataset, per measure and
// query shape), plus the fault behaviors — retries, hedges, circuit
// breakers, tenant quotas, deadline budgeting, and the seeded chaos
// matrix (CoordinatorChaos.*, rerun a failure with TRASS_CHAOS_SEED).

#include "serve/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace serve {
namespace {

using core::Measure;
using core::QueryMetrics;
using core::SearchResult;
using core::Trajectory;
using core::TrassOptions;
using core::TrassStore;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TrassOptions SmallStoreOptions(int refine_threads = 1) {
  TrassOptions options;
  options.shards = 2;
  options.max_resolution = 12;
  options.scan_threads = 2;
  options.refine_threads = refine_threads;
  options.db_options.write_buffer_size = 256 * 1024;
  return options;
}

CoordinatorOptions FastCoordinatorOptions() {
  CoordinatorOptions options;
  options.max_resolution = 12;  // must match SmallStoreOptions
  options.retry_base_backoff_ms = 1;
  options.retry_max_backoff_ms = 8;
  options.retry_jitter = 0.0;
  return options;
}

/// A single reference store over the union dataset plus N shard stores
/// behind direct transports — the setup every equivalence test shares.
class Tier {
 public:
  Tier(const std::string& scratch, size_t num_shards, int refine_threads)
      : dir_(scratch) {
    EXPECT_TRUE(TrassStore::Open(SmallStoreOptions(refine_threads),
                                 dir_.path() + "/reference", &reference_)
                    .ok());
    for (size_t i = 0; i < num_shards; ++i) {
      std::unique_ptr<TrassStore> store;
      EXPECT_TRUE(TrassStore::Open(SmallStoreOptions(refine_threads),
                                   dir_.path() + "/shard" + std::to_string(i),
                                   &store)
                      .ok());
      shards_.push_back(std::move(store));
    }
  }

  /// Wraps each shard in `wrap` (identity by default) and builds the
  /// coordinator.
  void BuildCoordinator(
      const CoordinatorOptions& options,
      const std::function<std::shared_ptr<ShardTransport>(
          size_t, std::shared_ptr<ShardTransport>)>& wrap = {}) {
    std::vector<std::shared_ptr<ShardTransport>> transports;
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::shared_ptr<ShardTransport> t =
          std::make_shared<DirectShardTransport>(shards_[i].get());
      if (wrap) t = wrap(i, std::move(t));
      transports.push_back(std::move(t));
    }
    coordinator_ =
        std::make_unique<ShardCoordinator>(options, std::move(transports));
  }

  void Load(const std::vector<Trajectory>& data) {
    for (const Trajectory& t : data) {
      ASSERT_TRUE(reference_->Put(t).ok());
    }
    ASSERT_TRUE(coordinator_->PutBatch(data).ok());
    ASSERT_TRUE(reference_->Flush().ok());
    for (auto& shard : shards_) ASSERT_TRUE(shard->Flush().ok());
  }

  TrassStore* reference() { return reference_.get(); }
  TrassStore* shard(size_t i) { return shards_[i].get(); }
  const std::string& path() const { return dir_.path(); }
  size_t num_shards() const { return shards_.size(); }
  ShardCoordinator* coordinator() { return coordinator_.get(); }
  /// The coordinator fans work out from pool threads; destroy it before
  /// the stores it borrows.
  void Reset() { coordinator_.reset(); }
  ~Tier() { coordinator_.reset(); }

 private:
  trass::testing::ScratchDir dir_;
  std::unique_ptr<TrassStore> reference_;
  std::vector<std::unique_ptr<TrassStore>> shards_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

void ExpectSameResults(const std::vector<SearchResult>& expected,
                       const std::vector<SearchResult>& actual,
                       const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << what << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].distance, actual[i].distance)
        << what << " rank " << i;
  }
}

/// Every measure and query shape: the N-shard merge must be
/// byte-identical to the single store over the union dataset.
void RunEquivalenceSuite(int refine_threads) {
  Tier tier("coord_equiv_rt" + std::to_string(refine_threads), 3,
            refine_threads);
  tier.BuildCoordinator(FastCoordinatorOptions());
  const auto data = trass::testing::RandomDataset(23, 120);
  tier.Load(data);

  // Distribution sanity: the partitioner actually spread the data.
  size_t populated = 0;
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ShardRequest export_request;
    export_request.op = ShardOp::kExport;
    ShardResponse exported;
    DirectShardTransport direct(tier.shard(i));
    ASSERT_TRUE(direct.Execute(export_request, nullptr, &exported).ok());
    if (!exported.trajectories.empty()) populated++;
  }
  EXPECT_GE(populated, 2u) << "hash partitioner left shards empty";

  for (const bool allow_partial : {false, true}) {
    CoordinatorQueryOptions options;
    options.query.allow_partial = allow_partial;
    for (const Measure measure :
         {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
      const std::string label = std::string(MeasureName(measure)) +
                                (allow_partial ? "/partial-ok" : "/strict");
      const double eps = measure == Measure::kDtw ? 0.5 : 0.05;
      for (const size_t probe : {size_t{3}, size_t{57}, size_t{111}}) {
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->ThresholdSearch(data[probe].points, eps, measure,
                                          &expected)
                        .ok());
        ASSERT_TRUE(tier.coordinator()
                        ->ThresholdSearch(data[probe].points, eps, measure,
                                          &actual, &m, options)
                        .ok());
        ExpectSameResults(expected, actual,
                          label + " threshold probe " + std::to_string(probe));
        EXPECT_FALSE(m.partial);
        EXPECT_EQ(m.shards_skipped, 0u);
        EXPECT_EQ(m.shards_contacted, 3u);

        for (const int k : {1, 7, 23}) {
          ASSERT_TRUE(tier.reference()
                          ->TopKSearch(data[probe].points, k, measure,
                                       &expected)
                          .ok());
          ASSERT_TRUE(tier.coordinator()
                          ->TopKSearch(data[probe].points, k, measure,
                                       &actual, &m, options)
                          .ok());
          ExpectSameResults(expected, actual,
                            label + " top-" + std::to_string(k) + " probe " +
                                std::to_string(probe));
        }
      }
    }

    // Range windows (measure-independent).
    for (const auto& window :
         {geo::Mbr(0.3, 0.3, 0.5, 0.5), geo::Mbr(0.0, 0.0, 1.0, 1.0),
          geo::Mbr(0.9, 0.9, 0.95, 0.95)}) {
      std::vector<uint64_t> expected_ids, actual_ids;
      ASSERT_TRUE(tier.reference()->RangeQuery(window, &expected_ids).ok());
      ASSERT_TRUE(
          tier.coordinator()->RangeQuery(window, &actual_ids, nullptr, options)
              .ok());
      EXPECT_EQ(expected_ids, actual_ids);
    }

    // Self-join.
    std::vector<std::pair<uint64_t, uint64_t>> expected_pairs, actual_pairs;
    ASSERT_TRUE(
        tier.reference()->SimilarityJoin(0.02, Measure::kFrechet,
                                         &expected_pairs)
            .ok());
    ASSERT_TRUE(tier.coordinator()
                    ->SimilarityJoin(0.02, Measure::kFrechet, &actual_pairs,
                                     nullptr, options)
                    .ok());
    EXPECT_EQ(expected_pairs, actual_pairs);
  }
  tier.Reset();
}

TEST(CoordinatorEquivalence, SingleRefineThread) { RunEquivalenceSuite(1); }

TEST(CoordinatorEquivalence, ParallelRefine) { RunEquivalenceSuite(8); }

// ---------------------------------------------------------------------------
// Deterministic fault behaviors

/// True for the ops a query fans out; ingest and pings pass through the
/// test doubles untouched so loading the tier does not burn their fault
/// budget.
bool IsQueryOp(ShardOp op) {
  return op != ShardOp::kPut && op != ShardOp::kPing;
}

/// Fails the first `failures` query calls with IoError, forwards the
/// rest.
class FlakyTransport : public ShardTransport {
 public:
  FlakyTransport(std::shared_ptr<ShardTransport> inner, int failures)
      : inner_(std::move(inner)), remaining_(failures) {}

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    if (IsQueryOp(request.op) &&
        remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return Status::IoError("flaky: injected failure");
    }
    return inner_->Execute(request, cancel, response);
  }
  std::string Describe() const override {
    return "flaky(" + inner_->Describe() + ")";
  }

 private:
  std::shared_ptr<ShardTransport> inner_;
  std::atomic<int> remaining_;
};

/// First query call sleeps (cancellably) then forwards; later calls
/// forward immediately — a one-off straggler for hedging tests.
class SlowOnceTransport : public ShardTransport {
 public:
  SlowOnceTransport(std::shared_ptr<ShardTransport> inner, double slow_ms)
      : inner_(std::move(inner)), slow_ms_(slow_ms) {}

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    if (IsQueryOp(request.op) && !first_consumed_.exchange(true)) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 slow_ms_));
      while (std::chrono::steady_clock::now() < until) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          return Status::Cancelled("slow attempt cancelled");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return inner_->Execute(request, cancel, response);
  }
  std::string Describe() const override {
    return "slow-once(" + inner_->Describe() + ")";
  }

 private:
  std::shared_ptr<ShardTransport> inner_;
  double slow_ms_;
  std::atomic<bool> first_consumed_{false};
};

TEST(CoordinatorFaults, RetriesTransientShardFailuresToCompletion) {
  Tier tier("coord_retry", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.max_shard_retries = 2;
  options.enable_hedging = false;  // isolate the retry path
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 1) {
                            return std::make_shared<FlakyTransport>(
                                std::move(t), 2);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(31, 80);
  tier.Load(data);

  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[10].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  const Status s = tier.coordinator()->ThresholdSearch(
      data[10].points, 0.05, Measure::kFrechet, &actual, &m);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "post-retry threshold");
  EXPECT_FALSE(m.partial);
  EXPECT_EQ(m.shards_skipped, 0u);
  const auto stats = tier.coordinator()->Stats();
  EXPECT_GE(stats[1].attempts, 3u);  // primary + 2 retries
  EXPECT_GE(stats[1].failures, 2u);
  tier.Reset();
}

TEST(CoordinatorFaults, TopKRetryCarriesTheBoundAndStaysExact) {
  Tier tier("coord_topk_retry", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 2) {
                            return std::make_shared<FlakyTransport>(
                                std::move(t), 1);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(37, 100);
  tier.Load(data);

  // The retried shard answers a follow-up wave carrying the merged
  // k-th-distance bound; the final answer must still be exact.
  std::vector<SearchResult> expected, actual;
  ASSERT_TRUE(
      tier.reference()
          ->TopKSearch(data[20].points, 9, Measure::kFrechet, &expected)
          .ok());
  const Status s = tier.coordinator()->TopKSearch(data[20].points, 9,
                                                  Measure::kFrechet, &actual);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "bounded follow-up top-k");
  tier.Reset();
}

TEST(CoordinatorFaults, HedgeReclaimsAStragglerShard) {
  Tier tier("coord_hedge", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = true;
  options.hedge_min_delay_ms = 15.0;
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 0) {
                            return std::make_shared<SlowOnceTransport>(
                                std::move(t), 2000.0);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(41, 60);
  tier.Load(data);

  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  const auto start = std::chrono::steady_clock::now();
  const Status s = tier.coordinator()->ThresholdSearch(
      data[5].points, 0.05, Measure::kFrechet, &actual, &m);
  const double elapsed = ElapsedMs(start);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "hedged threshold");
  EXPECT_GE(m.hedges_sent, 1u);
  EXPECT_GE(m.hedge_wins, 1u);
  EXPECT_LT(elapsed, 1900.0) << "hedge did not beat the 2s straggler";
  EXPECT_FALSE(m.partial);
  tier.Reset();
}

TEST(CoordinatorFaults, WedgedShardDegradesToVerifiedPartialAndTripsBreaker) {
  Tier tier("coord_wedge", 4, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 60000.0;  // stays open for the test
  std::shared_ptr<FaultInjectionTransport> wedgeable;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 2) {
          wedgeable = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return wedgeable;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(43, 80);
  tier.Load(data);
  wedgeable->SetWedged(true);

  CoordinatorQueryOptions query_options;
  query_options.query.deadline_ms = 300.0;
  query_options.query.allow_partial = true;

  // Wedged-shard queries: verified partial, the gap reported.
  QueryMetrics m;
  for (int i = 0; i < 3; ++i) {
    std::vector<SearchResult> results;
    const Status s = tier.coordinator()->ThresholdSearch(
        data[7].points, 0.05, Measure::kFrechet, &results, &m, query_options);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(m.partial);
    EXPECT_GE(m.shards_skipped, 1u);
    // Everything returned is verified: it appears in the reference
    // answer with the same distance.
    std::vector<SearchResult> reference;
    ASSERT_TRUE(tier.reference()
                    ->ThresholdSearch(data[7].points, 0.05, Measure::kFrechet,
                                      &reference)
                    .ok());
    for (const SearchResult& r : results) {
      const auto it = std::find_if(
          reference.begin(), reference.end(),
          [&](const SearchResult& e) { return e.id == r.id; });
      ASSERT_NE(it, reference.end()) << "unverified result id " << r.id;
      EXPECT_DOUBLE_EQ(it->distance, r.distance);
    }
    // Give the cancelled straggler a beat to record its failure.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The breaker absorbed the wedge: open state, fast rejection.
  EXPECT_EQ(tier.coordinator()->breaker(2)->state(),
            CircuitBreaker::State::kOpen);
  std::vector<SearchResult> results;
  const auto start = std::chrono::steady_clock::now();
  const Status s = tier.coordinator()->ThresholdSearch(
      data[7].points, 0.05, Measure::kFrechet, &results, &m, query_options);
  const double elapsed = ElapsedMs(start);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(m.breaker_open, 1u);
  EXPECT_GE(m.shards_skipped, 1u);
  EXPECT_LT(elapsed, 250.0) << "open breaker should skip the wedged shard "
                               "without burning the deadline";
  tier.Reset();
}

TEST(CoordinatorFaults, ShardRecoversAfterACancelledHalfOpenProbe) {
  // Regression: a half-open probe attempt cancelled at fan-out teardown
  // (deadline expiry) must release the probe slot. Leaking it left the
  // shard permanently excluded — every later Admit() rejected — even
  // after the shard recovered.
  Tier tier("coord_probe_cancel", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 50.0;
  std::shared_ptr<FaultInjectionTransport> faulty;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 1) {
          faulty = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return faulty;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(59, 60);
  tier.Load(data);

  CoordinatorQueryOptions degraded;
  degraded.query.deadline_ms = 100.0;
  degraded.query.allow_partial = true;

  // Trip the breaker: the wedged attempt reports IoError once reclaimed.
  faulty->SetWedged(true);
  std::vector<SearchResult> results;
  QueryMetrics m;
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &results, &m, degraded)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kOpen);

  // Cooldown elapsed: the next query claims the half-open probe, but a
  // long injected delay gets it cancelled at the deadline — the exact
  // no-recorded-outcome path that used to leak the slot.
  faulty->SetWedged(false);
  FaultInjectionTransport::Options slow;
  slow.delay_probability = 1.0;
  slow.delay_ms = 5000.0;
  faulty->SetOptions(slow);
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &results, &m, degraded)
                  .ok());
  EXPECT_TRUE(m.partial);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kHalfOpen);

  // Shard healthy again: a strict query must be able to re-probe,
  // succeed on every shard, and reinstate the breaker.
  faulty->SetOptions(FaultInjectionTransport::Options{});
  CoordinatorQueryOptions strict;
  const Status s = tier.coordinator()->ThresholdSearch(
      data[5].points, 0.05, Measure::kFrechet, &results, &m, strict);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(m.partial);
  EXPECT_EQ(m.shards_skipped, 0u);
  EXPECT_EQ(m.shards_contacted, 3u);
  EXPECT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kClosed);
  std::vector<SearchResult> reference;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &reference)
                  .ok());
  ExpectSameResults(reference, results, "post-recovery strict query");
  tier.Reset();
}

TEST(CoordinatorFaults, StrictModeFailsFastWithShardAttribution) {
  Tier tier("coord_strict", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 1;
  std::shared_ptr<FaultInjectionTransport> faulty;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 1) {
          faulty = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return faulty;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(47, 60);
  tier.Load(data);
  FaultInjectionTransport::Options always_fail;
  always_fail.error_probability = 1.0;
  faulty->SetOptions(always_fail);

  std::vector<SearchResult> results;
  const Status s = tier.coordinator()->ThresholdSearch(
      data[3].points, 0.05, Measure::kFrechet, &results);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_NE(s.ToString().find("shard 1"), std::string::npos) << s.ToString();
  tier.Reset();
}

TEST(CoordinatorFaults, DeadlineExpiresToTimedOutOrVerifiedPartial) {
  Tier tier("coord_deadline", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  std::vector<std::shared_ptr<FaultInjectionTransport>> wedges;
  tier.BuildCoordinator(
      options, [&](size_t, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        auto w = std::make_shared<FaultInjectionTransport>(
            std::move(t), FaultInjectionTransport::Options{});
        wedges.push_back(w);
        return w;
      });
  const auto data = trass::testing::RandomDataset(53, 40);
  tier.Load(data);
  for (auto& w : wedges) w->SetWedged(true);

  CoordinatorQueryOptions strict;
  strict.query.deadline_ms = 150.0;
  std::vector<SearchResult> results;
  auto start = std::chrono::steady_clock::now();
  Status s = tier.coordinator()->ThresholdSearch(
      data[1].points, 0.05, Measure::kFrechet, &results, nullptr, strict);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_LT(ElapsedMs(start), 5000.0) << "hung past its deadline";

  CoordinatorQueryOptions lenient = strict;
  lenient.query.allow_partial = true;
  QueryMetrics m;
  start = std::chrono::steady_clock::now();
  s = tier.coordinator()->ThresholdSearch(data[1].points, 0.05,
                                          Measure::kFrechet, &results, &m,
                                          lenient);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_LT(ElapsedMs(start), 5000.0);
  EXPECT_TRUE(m.partial);
  EXPECT_EQ(m.shards_skipped, 2u);
  EXPECT_TRUE(m.deadline_expired);
  EXPECT_TRUE(results.empty());
  tier.Reset();
}

TEST(CoordinatorFaults, TenantQuotaShedsAtTheRouter) {
  Tier tier("coord_quota", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.tenant_tokens_per_sec = 0.001;  // effectively no refill mid-test
  options.tenant_burst = 2.0;
  tier.BuildCoordinator(options);
  const auto data = trass::testing::RandomDataset(59, 40);
  tier.Load(data);

  CoordinatorQueryOptions alice;
  alice.tenant = "alice";
  std::vector<SearchResult> results;
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, alice)
                  .ok());
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, alice)
                  .ok());
  const Status shed = tier.coordinator()->ThresholdSearch(
      data[0].points, 0.05, Measure::kFrechet, &results, nullptr, alice);
  EXPECT_TRUE(shed.IsBusy()) << shed.ToString();

  CoordinatorQueryOptions bob;
  bob.tenant = "bob";
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, bob)
                  .ok());
  EXPECT_EQ(tier.coordinator()->quota()->counters().shed, 1u);
  tier.Reset();
}

// ---------------------------------------------------------------------------
// Seeded chaos matrix

// The robustness acceptance bar: under a randomized schedule of drops,
// delays, duplicates, errors, and one mid-run wedge, every query either
// completes with the exact single-store answer or returns a verified
// partial subset with the gap reported (shards_skipped > 0) — never a
// wrong merged result, never a hang past the deadline, never a silent
// gap. Rerun one failing schedule with TRASS_CHAOS_SEED=<seed>.
TEST(CoordinatorChaos, SeededFaultMatrix) {
  uint64_t base_seed = 20240808;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 2;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));

    Tier tier("coord_chaos_" + std::to_string(seed), 3, 1);
    CoordinatorOptions options = FastCoordinatorOptions();
    options.hedge_min_delay_ms = 10.0;
    options.breaker_cooldown_ms = 100.0;
    // Each transport is constructed benign but seeded; the fault
    // probabilities switch on after the (fault-free) load, so the
    // chaos schedule exercises the query path the acceptance bar is
    // about. SetOptions keeps the seeded RNG.
    std::vector<std::shared_ptr<FaultInjectionTransport>> chaos;
    tier.BuildCoordinator(
        options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                     -> std::shared_ptr<ShardTransport> {
          FaultInjectionTransport::Options benign;
          benign.seed = seed * 7919 + shard;
          auto wrapped = std::make_shared<FaultInjectionTransport>(
              std::move(t), benign);
          chaos.push_back(wrapped);
          return wrapped;
        });
    const auto data = trass::testing::RandomDataset(seed, 90);
    tier.Load(data);
    FaultInjectionTransport::Options fault;
    fault.error_probability = 0.10;
    fault.drop_probability = 0.05;
    fault.delay_probability = 0.20;
    fault.duplicate_probability = 0.10;
    fault.delay_ms = 10.0;
    for (auto& c : chaos) c->SetOptions(fault);

    CoordinatorQueryOptions query_options;
    query_options.query.deadline_ms = 3000.0;
    query_options.query.allow_partial = true;

    uint64_t partials = 0;
    for (int q = 0; q < 30; ++q) {
      // One shard wedges for the middle third of the schedule.
      if (q == 10) chaos[rnd.Uniform(3)]->SetWedged(true);
      if (q == 20) {
        for (auto& c : chaos) c->SetWedged(false);
      }
      const size_t probe = rnd.Uniform(static_cast<uint32_t>(data.size()));
      const auto start = std::chrono::steady_clock::now();

      if (q % 3 == 2) {
        // Top-k shape.
        const int k = 1 + static_cast<int>(rnd.Uniform(10));
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->TopKSearch(data[probe].points, k, Measure::kFrechet,
                                     &expected)
                        .ok());
        const Status s = tier.coordinator()->TopKSearch(
            data[probe].points, k, Measure::kFrechet, &actual, &m,
            query_options);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_LT(ElapsedMs(start), 30000.0) << "hung well past the deadline";
        if (!m.partial) {
          ExpectSameResults(expected, actual, "chaos top-k q" +
                                                  std::to_string(q));
        } else {
          partials++;
          EXPECT_GT(m.shards_skipped + m.skipped_regions, 0u)
              << "partial without a reported gap";
          // A partial top-k is a verified subset of the dataset ranked
          // by true distance: each entry must match the reference entry
          // for the same id.
          std::vector<SearchResult> full;
          ASSERT_TRUE(tier.reference()
                          ->ThresholdSearch(data[probe].points,
                                            std::numeric_limits<double>::max(),
                                            Measure::kFrechet, &full)
                          .ok());
          for (const SearchResult& r : actual) {
            const auto it = std::find_if(
                full.begin(), full.end(),
                [&](const SearchResult& e) { return e.id == r.id; });
            ASSERT_NE(it, full.end()) << "invented id " << r.id;
            EXPECT_DOUBLE_EQ(it->distance, r.distance);
          }
        }
      } else {
        // Threshold shape.
        const double eps = 0.02 + 0.02 * rnd.UniformDouble(0.0, 1.0);
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->ThresholdSearch(data[probe].points, eps,
                                          Measure::kFrechet, &expected)
                        .ok());
        const Status s = tier.coordinator()->ThresholdSearch(
            data[probe].points, eps, Measure::kFrechet, &actual, &m,
            query_options);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_LT(ElapsedMs(start), 30000.0) << "hung well past the deadline";
        // Duplicate faults and hedges must never double-merge.
        for (size_t i = 1; i < actual.size(); ++i) {
          ASSERT_NE(actual[i - 1].id, actual[i].id) << "duplicated result";
        }
        if (!m.partial) {
          ExpectSameResults(expected, actual,
                            "chaos threshold q" + std::to_string(q));
        } else {
          partials++;
          EXPECT_GT(m.shards_skipped + m.skipped_regions, 0u)
              << "partial without a reported gap";
          for (const SearchResult& r : actual) {
            const auto it = std::find_if(
                expected.begin(), expected.end(),
                [&](const SearchResult& e) { return e.id == r.id; });
            ASSERT_NE(it, expected.end()) << "invented id " << r.id;
            EXPECT_DOUBLE_EQ(it->distance, r.distance);
          }
        }
      }
    }
    // The schedule exercised the degraded path at least once (a wedged
    // shard for a third of the run guarantees it).
    EXPECT_GT(partials, 0u) << "chaos schedule never degraded — faults too "
                               "weak to prove anything";
    tier.Reset();
  }
}

// ---------------------------------------------------------------------------
// Replication: quorum writes, hinted handoff, read failover, anti-entropy

CoordinatorOptions ReplicatedOptions(int replication = 2, int quorum = 2) {
  CoordinatorOptions options = FastCoordinatorOptions();
  options.replication_factor = replication;
  options.write_quorum = quorum;
  options.write_deadline_ms = 500.0;
  return options;
}

/// Full export of one shard via a direct transport.
size_t ShardRowCount(TrassStore* store) {
  ShardRequest request;
  request.op = ShardOp::kExport;
  ShardResponse response;
  DirectShardTransport direct(store);
  EXPECT_TRUE(direct.Execute(request, nullptr, &response).ok());
  return response.trajectories.size();
}

TEST(CoordinatorReplication, WritesEveryReplicaAndReportsQuorum) {
  Tier tier("coord_repl_place", 3, 1);
  tier.BuildCoordinator(ReplicatedOptions(2, 2));
  const auto data = trass::testing::RandomDataset(61, 60);
  for (const Trajectory& t : data) {
    ASSERT_TRUE(tier.reference()->Put(t).ok());
  }

  WriteReport report;
  ASSERT_TRUE(tier.coordinator()->PutBatch(data, &report).ok());
  EXPECT_EQ(report.acked, data.size());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.under_replicated, 0u);
  EXPECT_EQ(report.hinted_rows, 0u);

  // Ring placement: two distinct shards per trajectory, and the
  // per-shard row counts in the report add up to 2 copies per row.
  uint64_t reported_rows = 0;
  for (const ShardWriteOutcome& outcome : report.shards) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_FALSE(outcome.breaker_open);
    reported_rows += outcome.rows;
  }
  EXPECT_EQ(reported_rows, 2 * data.size());
  for (const Trajectory& t : data) {
    const auto replicas = tier.coordinator()->partitioner().ReplicasOf(t);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);
  }

  ASSERT_TRUE(tier.reference()->Flush().ok());
  size_t stored = 0;
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ASSERT_TRUE(tier.shard(i)->Flush().ok());
    stored += ShardRowCount(tier.shard(i));
  }
  EXPECT_EQ(stored, 2 * data.size());

  // Replicated reads dedup back to the single-store answer.
  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[9].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[9].points, 0.05, Measure::kFrechet,
                                    &actual, &m)
                  .ok());
  ExpectSameResults(expected, actual, "replicated threshold");
  EXPECT_FALSE(m.partial);
  tier.Reset();
}

// Satellite: the old write path walked shards sequentially and bailed at
// the first failure, leaving later shards silently unwritten with no way
// to tell which. Writes must go out in parallel and the report must name
// every shard's outcome — and the healthy shards must actually commit.
TEST(CoordinatorReplication, ParallelWritesReportPerShardOutcomes) {
  Tier tier("coord_repl_outcomes", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.max_shard_retries = 0;
  std::shared_ptr<FaultInjectionTransport> faulty;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 1) {
          FaultInjectionTransport::Options always_fail;
          always_fail.error_probability = 1.0;
          faulty = std::make_shared<FaultInjectionTransport>(std::move(t),
                                                             always_fail);
          return faulty;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(67, 90);

  WriteReport report;
  const Status s = tier.coordinator()->PutBatch(data, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("shard 1"), std::string::npos) << s.ToString();

  uint64_t failed_rows = 0;
  for (const ShardWriteOutcome& outcome : report.shards) {
    if (outcome.shard == 1) {
      EXPECT_FALSE(outcome.status.ok());
      failed_rows = outcome.rows;
    } else {
      EXPECT_TRUE(outcome.status.ok()) << "shard " << outcome.shard << ": "
                                       << outcome.status.ToString();
    }
  }
  ASSERT_GT(failed_rows, 0u);
  EXPECT_EQ(report.failed, failed_rows);
  EXPECT_EQ(report.acked, data.size() - failed_rows);

  // The shards after the failing one committed their rows — no silent
  // fail-fast truncation of the batch.
  size_t stored = 0;
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ASSERT_TRUE(tier.shard(i)->Flush().ok());
    if (i != 1) stored += ShardRowCount(tier.shard(i));
  }
  EXPECT_EQ(stored, data.size() - failed_rows);
  tier.Reset();
}

// Satellite: the write path must honor circuit-breaker state instead of
// burning a transport attempt (and its retry schedule) against a shard
// already known to be down: fast reject, rows diverted to the journal.
TEST(CoordinatorReplication, WritesRespectOpenBreakerAndDivertToHints) {
  Tier tier("coord_repl_breaker_write", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 60000.0;  // stays open for the test
  options.hint_journal_dir = tier.path() + "/hints";
  std::shared_ptr<FaultInjectionTransport> gated;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 2) {
          gated = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return gated;
        }
        return t;
      });
  ASSERT_TRUE(tier.coordinator()->hint_journal_status().ok());
  tier.coordinator()->breaker(2)->RecordFailure(Status::IoError("shard down"));
  ASSERT_EQ(tier.coordinator()->breaker(2)->state(),
            CircuitBreaker::State::kOpen);

  const auto data = trass::testing::RandomDataset(71, 90);
  const uint64_t forwarded_before = gated->counters().forwarded;
  WriteReport report;
  const Status s = tier.coordinator()->PutBatch(data, &report);
  ASSERT_FALSE(s.ok());  // R=1: the gated shard's rows missed quorum

  bool saw_gated = false;
  for (const ShardWriteOutcome& outcome : report.shards) {
    if (outcome.shard != 2) continue;
    saw_gated = true;
    EXPECT_TRUE(outcome.breaker_open);
    EXPECT_TRUE(outcome.hinted);
    EXPECT_FALSE(outcome.status.ok());
    EXPECT_GT(outcome.rows, 0u);
  }
  ASSERT_TRUE(saw_gated);
  // Fast reject means the transport never saw the batch.
  EXPECT_EQ(gated->counters().forwarded, forwarded_before);
  EXPECT_GT(report.hinted_rows, 0u);
  ASSERT_NE(tier.coordinator()->hint_journal(), nullptr);
  EXPECT_EQ(tier.coordinator()->hint_journal()->stats().pending_rows,
            report.hinted_rows);

  // Replay while the breaker is still open must not sneak past it.
  HintReplayReport replay;
  ASSERT_TRUE(tier.coordinator()->ReplayHints(&replay).ok());
  EXPECT_EQ(replay.replayed, 0u);
  EXPECT_GE(replay.skipped_breaker_open, 1u);
  tier.Reset();
}

// Tentpole: ingest rides out a dead shard — W=1 acks via the surviving
// replica, the dead shard's rows are journaled durably, strict reads
// fail over, and replay heals the shard once its probe reinstates it.
TEST(CoordinatorReplication, HintedHandoffReplayHealsDeadShard) {
  Tier tier("coord_repl_hints", 3, 1);
  CoordinatorOptions options = ReplicatedOptions(2, 1);
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 50.0;
  options.hint_journal_dir = tier.path() + "/hints";
  std::vector<std::shared_ptr<FaultInjectionTransport>> faults;
  tier.BuildCoordinator(
      options, [&](size_t, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        auto w = std::make_shared<FaultInjectionTransport>(
            std::move(t), FaultInjectionTransport::Options{});
        faults.push_back(w);
        return w;
      });
  ASSERT_TRUE(tier.coordinator()->hint_journal_status().ok());

  // Shard 0 is dead before the first write arrives.
  FaultInjectionTransport::Options dead;
  dead.error_probability = 1.0;
  faults[0]->SetOptions(dead);

  const auto data = trass::testing::RandomDataset(73, 80);
  for (const Trajectory& t : data) {
    ASSERT_TRUE(tier.reference()->Put(t).ok());
  }
  WriteReport report;
  const Status s = tier.coordinator()->PutBatch(data, &report);
  ASSERT_TRUE(s.ok()) << "W=1 must ack via the surviving replica: "
                      << s.ToString();
  EXPECT_EQ(report.acked, data.size());
  EXPECT_GT(report.under_replicated, 0u);
  EXPECT_GT(report.hinted_rows, 0u);
  const uint64_t pending =
      tier.coordinator()->hint_journal()->pending_records();
  EXPECT_GT(pending, 0u);

  // Strict reads stay exact while the shard is down: its replica
  // partner covers, the loss is absorbed as a failover, not a partial.
  ASSERT_TRUE(tier.reference()->Flush().ok());
  for (size_t i = 1; i < tier.num_shards(); ++i) {
    ASSERT_TRUE(tier.shard(i)->Flush().ok());
  }
  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[4].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[4].points, 0.05, Measure::kFrechet,
                                    &actual, &m)
                  .ok());
  ExpectSameResults(expected, actual, "strict read during shard loss");
  EXPECT_FALSE(m.partial);
  EXPECT_GE(m.shard_failovers, 1u);

  // Shard recovers; after the cooldown the replay delivery rides the
  // half-open probe, reinstates the breaker, and drains the journal.
  faults[0]->SetOptions(FaultInjectionTransport::Options{});
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  HintReplayReport replay;
  ASSERT_TRUE(tier.coordinator()->ReplayHints(&replay).ok());
  EXPECT_EQ(replay.replayed, pending);
  EXPECT_GT(replay.replayed_rows, 0u);
  EXPECT_EQ(replay.failed, 0u);
  EXPECT_EQ(tier.coordinator()->hint_journal()->pending_records(), 0u);
  EXPECT_EQ(tier.coordinator()->breaker(0)->state(),
            CircuitBreaker::State::kClosed);

  // The healed shard holds its full complement: the replica groups
  // agree again...
  ASSERT_TRUE(tier.shard(0)->Flush().ok());
  ShardScrubReport scrub;
  ASSERT_TRUE(tier.coordinator()->ScrubShards(&scrub).ok());
  EXPECT_EQ(scrub.groups_divergent, 0u);
  // ...and strict queries survive losing the *other* member of each
  // group, which only works if shard 0 really caught up.
  faults[1]->SetOptions(dead);
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[4].points, 0.05, Measure::kFrechet,
                                    &actual, &m)
                  .ok());
  ExpectSameResults(expected, actual, "strict read after failback");
  EXPECT_FALSE(m.partial);
  tier.Reset();
}

// Tentpole: with R=2 the loss of ANY single shard is invisible to
// strict queries across every query shape — exact answers, partial
// never set, the absorbed loss observable as shard_failovers.
TEST(CoordinatorReplication, AnySingleShardLossKeepsStrictQueriesExact) {
  Tier tier("coord_repl_loss", 3, 1);
  CoordinatorOptions options = ReplicatedOptions(2, 2);
  options.enable_hedging = false;
  options.breaker_failure_threshold = 1000;  // isolate pure failover
  std::vector<std::shared_ptr<FaultInjectionTransport>> faults;
  tier.BuildCoordinator(
      options, [&](size_t, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        auto w = std::make_shared<FaultInjectionTransport>(
            std::move(t), FaultInjectionTransport::Options{});
        faults.push_back(w);
        return w;
      });
  const auto data = trass::testing::RandomDataset(79, 100);
  tier.Load(data);

  CoordinatorQueryOptions strict;
  strict.query.deadline_ms = 10000.0;
  for (size_t victim = 0; victim < tier.num_shards(); ++victim) {
    SCOPED_TRACE("victim shard " + std::to_string(victim));
    faults[victim]->SetWedged(true);

    std::vector<SearchResult> expected, actual;
    QueryMetrics m;
    ASSERT_TRUE(tier.reference()
                    ->ThresholdSearch(data[11].points, 0.05, Measure::kFrechet,
                                      &expected)
                    .ok());
    Status s = tier.coordinator()->ThresholdSearch(
        data[11].points, 0.05, Measure::kFrechet, &actual, &m, strict);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ExpectSameResults(expected, actual, "threshold");
    EXPECT_FALSE(m.partial);
    EXPECT_GE(m.shard_failovers, 1u);

    ASSERT_TRUE(tier.reference()
                    ->TopKSearch(data[11].points, 7, Measure::kFrechet,
                                 &expected)
                    .ok());
    s = tier.coordinator()->TopKSearch(data[11].points, 7, Measure::kFrechet,
                                       &actual, &m, strict);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ExpectSameResults(expected, actual, "top-k");
    EXPECT_FALSE(m.partial);

    const geo::Mbr window(0.2, 0.2, 0.7, 0.7);
    std::vector<uint64_t> expected_ids, actual_ids;
    ASSERT_TRUE(tier.reference()->RangeQuery(window, &expected_ids).ok());
    s = tier.coordinator()->RangeQuery(window, &actual_ids, &m, strict);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(expected_ids, actual_ids);
    EXPECT_FALSE(m.partial);

    std::vector<std::pair<uint64_t, uint64_t>> expected_pairs, actual_pairs;
    ASSERT_TRUE(tier.reference()
                    ->SimilarityJoin(0.02, Measure::kFrechet, &expected_pairs)
                    .ok());
    s = tier.coordinator()->SimilarityJoin(0.02, Measure::kFrechet,
                                           &actual_pairs, &m, strict);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(expected_pairs, actual_pairs);
    EXPECT_FALSE(m.partial);

    faults[victim]->SetWedged(false);
  }
  tier.Reset();
}

// Anti-entropy: a replica that silently missed writes (no hints — the
// journal is off) diverges from its group; the scrub detects it via the
// wire fingerprints and rebuilds it from the fullest peer.
TEST(CoordinatorReplication, ScrubRebuildsDivergentReplicaFromPeers) {
  Tier tier("coord_repl_scrub", 3, 1);
  CoordinatorOptions options = ReplicatedOptions(2, 1);
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 1000;  // keep every shard admitted
  std::vector<std::shared_ptr<FaultInjectionTransport>> faults;
  tier.BuildCoordinator(
      options, [&](size_t, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        auto w = std::make_shared<FaultInjectionTransport>(
            std::move(t), FaultInjectionTransport::Options{});
        faults.push_back(w);
        return w;
      });

  // Shard 1 drops every write; W=1 still acks via its group partners,
  // and with no journal the misses are only visible as
  // under_replicated.
  FaultInjectionTransport::Options dead;
  dead.error_probability = 1.0;
  faults[1]->SetOptions(dead);
  const auto data = trass::testing::RandomDataset(83, 80);
  for (const Trajectory& t : data) {
    ASSERT_TRUE(tier.reference()->Put(t).ok());
  }
  WriteReport report;
  ASSERT_TRUE(tier.coordinator()->PutBatch(data, &report).ok());
  EXPECT_GT(report.under_replicated, 0u);
  EXPECT_EQ(report.hinted_rows, 0u);

  faults[1]->SetOptions(FaultInjectionTransport::Options{});
  ASSERT_TRUE(tier.reference()->Flush().ok());
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ASSERT_TRUE(tier.shard(i)->Flush().ok());
  }
  const size_t missing = ShardRowCount(tier.shard(1));

  ShardScrubReport scrub;
  ASSERT_TRUE(tier.coordinator()->ScrubShards(&scrub).ok());
  EXPECT_EQ(scrub.shards_unreachable, 0u);
  EXPECT_EQ(scrub.groups_checked, tier.num_shards());
  EXPECT_GT(scrub.groups_divergent, 0u);
  EXPECT_GT(scrub.rows_repaired, 0u);

  // Convergence: a second pass finds nothing to do, and the repaired
  // shard now holds every row its two partitions own.
  ShardScrubReport again;
  ASSERT_TRUE(tier.coordinator()->ScrubShards(&again).ok());
  EXPECT_EQ(again.groups_divergent, 0u);
  EXPECT_EQ(again.rows_repaired, 0u);
  ASSERT_TRUE(tier.shard(1)->Flush().ok());
  EXPECT_GT(ShardRowCount(tier.shard(1)), missing);

  // The rebuilt replica really serves: lose each of its partners in
  // turn and strict queries stay exact.
  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[7].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  for (const size_t partner : {size_t{0}, size_t{2}}) {
    SCOPED_TRACE("partner " + std::to_string(partner) + " down");
    faults[partner]->SetOptions(dead);
    ASSERT_TRUE(tier.coordinator()
                    ->ThresholdSearch(data[7].points, 0.05, Measure::kFrechet,
                                      &actual, &m)
                    .ok());
    ExpectSameResults(expected, actual, "post-scrub failover");
    EXPECT_FALSE(m.partial);
    faults[partner]->SetOptions(FaultInjectionTransport::Options{});
  }
  tier.Reset();
}

// Satellite: duplicated write delivery (the transport forwards every
// kPut twice) must leave ingest statistics, the XZ* histograms, and
// query results exactly as a single clean delivery would — the
// idempotence hint replay and scrub repair lean on.
TEST(CoordinatorReplication, DuplicateWriteDeliveryIsIdempotent) {
  Tier tier("coord_repl_dup", 3, 1);
  std::vector<std::shared_ptr<FaultInjectionTransport>> dups;
  tier.BuildCoordinator(
      FastCoordinatorOptions(), [&](size_t, std::shared_ptr<ShardTransport> t)
                                    -> std::shared_ptr<ShardTransport> {
        FaultInjectionTransport::Options duplicate;
        duplicate.duplicate_probability = 1.0;
        auto w = std::make_shared<FaultInjectionTransport>(std::move(t),
                                                           duplicate);
        dups.push_back(w);
        return w;
      });
  const auto data = trass::testing::RandomDataset(89, 100);
  for (const Trajectory& t : data) {
    ASSERT_TRUE(tier.reference()->Put(t).ok());
  }
  ASSERT_TRUE(tier.coordinator()->PutBatch(data).ok());
  // The batch then arrives a second time wholesale — a replayed hint.
  ASSERT_TRUE(tier.coordinator()->PutBatch(data).ok());
  uint64_t duplicates = 0;
  for (const auto& d : dups) duplicates += d->counters().duplicates;
  ASSERT_GT(duplicates, 0u) << "schedule never duplicated a delivery";

  // Stats count trajectories, not deliveries.
  uint64_t stored = 0;
  std::vector<uint64_t> resolution_sum, position_sum;
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    stored += tier.shard(i)->num_trajectories();
    const auto res = tier.shard(i)->resolution_histogram();
    const auto pos = tier.shard(i)->position_code_histogram();
    resolution_sum.resize(std::max(resolution_sum.size(), res.size()), 0);
    position_sum.resize(std::max(position_sum.size(), pos.size()), 0);
    for (size_t b = 0; b < res.size(); ++b) resolution_sum[b] += res[b];
    for (size_t b = 0; b < pos.size(); ++b) position_sum[b] += pos[b];
  }
  EXPECT_EQ(stored, data.size());
  EXPECT_EQ(resolution_sum, tier.reference()->resolution_histogram());
  EXPECT_EQ(position_sum, tier.reference()->position_code_histogram());

  // And the merged answers match the single clean store byte for byte.
  ASSERT_TRUE(tier.reference()->Flush().ok());
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ASSERT_TRUE(tier.shard(i)->Flush().ok());
  }
  std::vector<SearchResult> expected, actual;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[13].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[13].points, 0.05, Measure::kFrechet,
                                    &actual)
                  .ok());
  ExpectSameResults(expected, actual, "post-duplicate threshold");
  std::vector<uint64_t> expected_ids, actual_ids;
  const geo::Mbr all(0.0, 0.0, 1.0, 1.0);
  ASSERT_TRUE(tier.reference()->RangeQuery(all, &expected_ids).ok());
  ASSERT_TRUE(tier.coordinator()->RangeQuery(all, &actual_ids).ok());
  EXPECT_EQ(expected_ids, actual_ids);
  tier.Reset();
}

// ---------------------------------------------------------------------------
// Write-path chaos matrix

// The replication acceptance bar: a seeded schedule kills or wedges one
// shard in the middle of a replicated ingest (R=2, W=1). Every batch the
// coordinator acked must survive to the end — after replay + scrub the
// strict answers are byte-identical to the reference store, including a
// full-world range listing every acked id. Rerun one failing schedule
// with TRASS_CHAOS_SEED=<seed>.
TEST(CoordinatorWriteChaos, AckedWritesSurviveShardKillAndWedge) {
  uint64_t base_seed = 20250809;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 2;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));

    Tier tier("coord_wchaos_" + std::to_string(seed), 3, 1);
    CoordinatorOptions options = ReplicatedOptions(2, 1);
    options.max_shard_retries = 1;
    options.write_deadline_ms = 150.0;
    options.breaker_failure_threshold = 2;
    options.breaker_cooldown_ms = 100.0;
    options.hint_journal_dir = tier.path() + "/hints";
    std::vector<std::shared_ptr<FaultInjectionTransport>> chaos;
    tier.BuildCoordinator(
        options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                     -> std::shared_ptr<ShardTransport> {
          FaultInjectionTransport::Options benign;
          benign.seed = seed * 6151 + shard;
          benign.max_block_ms = 300.0;  // bound wedged write attempts
          auto w = std::make_shared<FaultInjectionTransport>(std::move(t),
                                                             benign);
          chaos.push_back(w);
          return w;
        });
    ASSERT_TRUE(tier.coordinator()->hint_journal_status().ok());

    const auto data = trass::testing::RandomDataset(seed, 120);
    const size_t victim = rnd.Uniform(3);
    const bool wedge = rnd.Uniform(2) == 0;
    CoordinatorQueryOptions strict;
    strict.query.deadline_ms = 10000.0;

    // 12 batches of 10; the victim dies before batch 4 and comes back
    // after batch 8. W=1 over R=2 must ack every batch throughout.
    for (size_t batch = 0; batch < 12; ++batch) {
      if (batch == 4) {
        if (wedge) {
          chaos[victim]->SetWedged(true);
        } else {
          FaultInjectionTransport::Options kill;
          kill.error_probability = 1.0;
          kill.seed = seed * 6151 + victim;
          kill.max_block_ms = 300.0;
          chaos[victim]->SetOptions(kill);
        }
      }
      if (batch == 9) {
        chaos[victim]->SetWedged(false);
        FaultInjectionTransport::Options benign;
        benign.seed = seed * 6151 + victim;
        benign.max_block_ms = 300.0;
        chaos[victim]->SetOptions(benign);
      }
      std::vector<Trajectory> slice(data.begin() + batch * 10,
                                    data.begin() + (batch + 1) * 10);
      for (const Trajectory& t : slice) {
        ASSERT_TRUE(tier.reference()->Put(t).ok());
      }
      WriteReport report;
      const Status s = tier.coordinator()->PutBatch(slice, &report);
      ASSERT_TRUE(s.ok()) << "batch " << batch << ": " << s.ToString();
      ASSERT_EQ(report.acked, slice.size()) << "batch " << batch;

      // Mid-outage strict read: acked data answers exactly even while
      // the victim is down.
      if (batch == 6) {
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        const auto& probe = data[batch * 10 - 3];
        ASSERT_TRUE(tier.reference()
                        ->ThresholdSearch(probe.points, 0.05,
                                          Measure::kFrechet, &expected)
                        .ok());
        const Status q = tier.coordinator()->ThresholdSearch(
            probe.points, 0.05, Measure::kFrechet, &actual, &m, strict);
        ASSERT_TRUE(q.ok()) << q.ToString();
        ExpectSameResults(expected, actual, "mid-outage strict threshold");
        EXPECT_FALSE(m.partial);
      }
    }

    // Recovery: drain the journal (the first delivery may need the
    // breaker cooldown to elapse), then scrub to converge the groups.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (tier.coordinator()->hint_journal()->pending_records() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      (void)tier.coordinator()->ReplayHints();
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    ASSERT_EQ(tier.coordinator()->hint_journal()->pending_records(), 0u)
        << "journal failed to drain after recovery";
    ShardScrubReport scrub;
    ASSERT_TRUE(tier.coordinator()->ScrubShards(&scrub).ok());

    ASSERT_TRUE(tier.reference()->Flush().ok());
    for (size_t i = 0; i < tier.num_shards(); ++i) {
      ASSERT_TRUE(tier.shard(i)->Flush().ok());
    }

    // Zero lost acked writes: every acked id is present and every
    // strict shape answers byte-identically to the reference.
    std::vector<uint64_t> expected_ids, actual_ids;
    const geo::Mbr all(0.0, 0.0, 1.0, 1.0);
    ASSERT_TRUE(tier.reference()->RangeQuery(all, &expected_ids).ok());
    ASSERT_TRUE(
        tier.coordinator()->RangeQuery(all, &actual_ids, nullptr, strict)
            .ok());
    ASSERT_EQ(expected_ids, actual_ids) << "acked writes lost";

    for (const size_t probe : {size_t{5}, size_t{55}, size_t{115}}) {
      std::vector<SearchResult> expected, actual;
      QueryMetrics m;
      ASSERT_TRUE(tier.reference()
                      ->ThresholdSearch(data[probe].points, 0.05,
                                        Measure::kFrechet, &expected)
                      .ok());
      ASSERT_TRUE(tier.coordinator()
                      ->ThresholdSearch(data[probe].points, 0.05,
                                        Measure::kFrechet, &actual, &m,
                                        strict)
                      .ok());
      ExpectSameResults(expected, actual,
                        "post-recovery threshold probe " +
                            std::to_string(probe));
      EXPECT_FALSE(m.partial);
      ASSERT_TRUE(tier.reference()
                      ->TopKSearch(data[probe].points, 8, Measure::kFrechet,
                                   &expected)
                      .ok());
      ASSERT_TRUE(tier.coordinator()
                      ->TopKSearch(data[probe].points, 8, Measure::kFrechet,
                                   &actual, &m, strict)
                      .ok());
      ExpectSameResults(expected, actual,
                        "post-recovery top-k probe " + std::to_string(probe));
    }
    tier.Reset();
  }
}

}  // namespace
}  // namespace serve
}  // namespace trass
