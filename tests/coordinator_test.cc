// ShardCoordinator: cross-shard merge equivalence (N shards must be
// byte-identical to one store over the union dataset, per measure and
// query shape), plus the fault behaviors — retries, hedges, circuit
// breakers, tenant quotas, deadline budgeting, and the seeded chaos
// matrix (CoordinatorChaos.*, rerun a failure with TRASS_CHAOS_SEED).

#include "serve/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace serve {
namespace {

using core::Measure;
using core::QueryMetrics;
using core::SearchResult;
using core::Trajectory;
using core::TrassOptions;
using core::TrassStore;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TrassOptions SmallStoreOptions(int refine_threads = 1) {
  TrassOptions options;
  options.shards = 2;
  options.max_resolution = 12;
  options.scan_threads = 2;
  options.refine_threads = refine_threads;
  options.db_options.write_buffer_size = 256 * 1024;
  return options;
}

CoordinatorOptions FastCoordinatorOptions() {
  CoordinatorOptions options;
  options.max_resolution = 12;  // must match SmallStoreOptions
  options.retry_base_backoff_ms = 1;
  options.retry_max_backoff_ms = 8;
  options.retry_jitter = 0.0;
  return options;
}

/// A single reference store over the union dataset plus N shard stores
/// behind direct transports — the setup every equivalence test shares.
class Tier {
 public:
  Tier(const std::string& scratch, size_t num_shards, int refine_threads)
      : dir_(scratch) {
    EXPECT_TRUE(TrassStore::Open(SmallStoreOptions(refine_threads),
                                 dir_.path() + "/reference", &reference_)
                    .ok());
    for (size_t i = 0; i < num_shards; ++i) {
      std::unique_ptr<TrassStore> store;
      EXPECT_TRUE(TrassStore::Open(SmallStoreOptions(refine_threads),
                                   dir_.path() + "/shard" + std::to_string(i),
                                   &store)
                      .ok());
      shards_.push_back(std::move(store));
    }
  }

  /// Wraps each shard in `wrap` (identity by default) and builds the
  /// coordinator.
  void BuildCoordinator(
      const CoordinatorOptions& options,
      const std::function<std::shared_ptr<ShardTransport>(
          size_t, std::shared_ptr<ShardTransport>)>& wrap = {}) {
    std::vector<std::shared_ptr<ShardTransport>> transports;
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::shared_ptr<ShardTransport> t =
          std::make_shared<DirectShardTransport>(shards_[i].get());
      if (wrap) t = wrap(i, std::move(t));
      transports.push_back(std::move(t));
    }
    coordinator_ =
        std::make_unique<ShardCoordinator>(options, std::move(transports));
  }

  void Load(const std::vector<Trajectory>& data) {
    for (const Trajectory& t : data) {
      ASSERT_TRUE(reference_->Put(t).ok());
    }
    ASSERT_TRUE(coordinator_->PutBatch(data).ok());
    ASSERT_TRUE(reference_->Flush().ok());
    for (auto& shard : shards_) ASSERT_TRUE(shard->Flush().ok());
  }

  TrassStore* reference() { return reference_.get(); }
  TrassStore* shard(size_t i) { return shards_[i].get(); }
  size_t num_shards() const { return shards_.size(); }
  ShardCoordinator* coordinator() { return coordinator_.get(); }
  /// The coordinator fans work out from pool threads; destroy it before
  /// the stores it borrows.
  void Reset() { coordinator_.reset(); }
  ~Tier() { coordinator_.reset(); }

 private:
  trass::testing::ScratchDir dir_;
  std::unique_ptr<TrassStore> reference_;
  std::vector<std::unique_ptr<TrassStore>> shards_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

void ExpectSameResults(const std::vector<SearchResult>& expected,
                       const std::vector<SearchResult>& actual,
                       const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << what << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].distance, actual[i].distance)
        << what << " rank " << i;
  }
}

/// Every measure and query shape: the N-shard merge must be
/// byte-identical to the single store over the union dataset.
void RunEquivalenceSuite(int refine_threads) {
  Tier tier("coord_equiv_rt" + std::to_string(refine_threads), 3,
            refine_threads);
  tier.BuildCoordinator(FastCoordinatorOptions());
  const auto data = trass::testing::RandomDataset(23, 120);
  tier.Load(data);

  // Distribution sanity: the partitioner actually spread the data.
  size_t populated = 0;
  for (size_t i = 0; i < tier.num_shards(); ++i) {
    ShardRequest export_request;
    export_request.op = ShardOp::kExport;
    ShardResponse exported;
    DirectShardTransport direct(tier.shard(i));
    ASSERT_TRUE(direct.Execute(export_request, nullptr, &exported).ok());
    if (!exported.trajectories.empty()) populated++;
  }
  EXPECT_GE(populated, 2u) << "hash partitioner left shards empty";

  for (const bool allow_partial : {false, true}) {
    CoordinatorQueryOptions options;
    options.query.allow_partial = allow_partial;
    for (const Measure measure :
         {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
      const std::string label = std::string(MeasureName(measure)) +
                                (allow_partial ? "/partial-ok" : "/strict");
      const double eps = measure == Measure::kDtw ? 0.5 : 0.05;
      for (const size_t probe : {size_t{3}, size_t{57}, size_t{111}}) {
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->ThresholdSearch(data[probe].points, eps, measure,
                                          &expected)
                        .ok());
        ASSERT_TRUE(tier.coordinator()
                        ->ThresholdSearch(data[probe].points, eps, measure,
                                          &actual, &m, options)
                        .ok());
        ExpectSameResults(expected, actual,
                          label + " threshold probe " + std::to_string(probe));
        EXPECT_FALSE(m.partial);
        EXPECT_EQ(m.shards_skipped, 0u);
        EXPECT_EQ(m.shards_contacted, 3u);

        for (const int k : {1, 7, 23}) {
          ASSERT_TRUE(tier.reference()
                          ->TopKSearch(data[probe].points, k, measure,
                                       &expected)
                          .ok());
          ASSERT_TRUE(tier.coordinator()
                          ->TopKSearch(data[probe].points, k, measure,
                                       &actual, &m, options)
                          .ok());
          ExpectSameResults(expected, actual,
                            label + " top-" + std::to_string(k) + " probe " +
                                std::to_string(probe));
        }
      }
    }

    // Range windows (measure-independent).
    for (const auto& window :
         {geo::Mbr(0.3, 0.3, 0.5, 0.5), geo::Mbr(0.0, 0.0, 1.0, 1.0),
          geo::Mbr(0.9, 0.9, 0.95, 0.95)}) {
      std::vector<uint64_t> expected_ids, actual_ids;
      ASSERT_TRUE(tier.reference()->RangeQuery(window, &expected_ids).ok());
      ASSERT_TRUE(
          tier.coordinator()->RangeQuery(window, &actual_ids, nullptr, options)
              .ok());
      EXPECT_EQ(expected_ids, actual_ids);
    }

    // Self-join.
    std::vector<std::pair<uint64_t, uint64_t>> expected_pairs, actual_pairs;
    ASSERT_TRUE(
        tier.reference()->SimilarityJoin(0.02, Measure::kFrechet,
                                         &expected_pairs)
            .ok());
    ASSERT_TRUE(tier.coordinator()
                    ->SimilarityJoin(0.02, Measure::kFrechet, &actual_pairs,
                                     nullptr, options)
                    .ok());
    EXPECT_EQ(expected_pairs, actual_pairs);
  }
  tier.Reset();
}

TEST(CoordinatorEquivalence, SingleRefineThread) { RunEquivalenceSuite(1); }

TEST(CoordinatorEquivalence, ParallelRefine) { RunEquivalenceSuite(8); }

// ---------------------------------------------------------------------------
// Deterministic fault behaviors

/// True for the ops a query fans out; ingest and pings pass through the
/// test doubles untouched so loading the tier does not burn their fault
/// budget.
bool IsQueryOp(ShardOp op) {
  return op != ShardOp::kPut && op != ShardOp::kPing;
}

/// Fails the first `failures` query calls with IoError, forwards the
/// rest.
class FlakyTransport : public ShardTransport {
 public:
  FlakyTransport(std::shared_ptr<ShardTransport> inner, int failures)
      : inner_(std::move(inner)), remaining_(failures) {}

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    if (IsQueryOp(request.op) &&
        remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return Status::IoError("flaky: injected failure");
    }
    return inner_->Execute(request, cancel, response);
  }
  std::string Describe() const override {
    return "flaky(" + inner_->Describe() + ")";
  }

 private:
  std::shared_ptr<ShardTransport> inner_;
  std::atomic<int> remaining_;
};

/// First query call sleeps (cancellably) then forwards; later calls
/// forward immediately — a one-off straggler for hedging tests.
class SlowOnceTransport : public ShardTransport {
 public:
  SlowOnceTransport(std::shared_ptr<ShardTransport> inner, double slow_ms)
      : inner_(std::move(inner)), slow_ms_(slow_ms) {}

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    if (IsQueryOp(request.op) && !first_consumed_.exchange(true)) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 slow_ms_));
      while (std::chrono::steady_clock::now() < until) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          return Status::Cancelled("slow attempt cancelled");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return inner_->Execute(request, cancel, response);
  }
  std::string Describe() const override {
    return "slow-once(" + inner_->Describe() + ")";
  }

 private:
  std::shared_ptr<ShardTransport> inner_;
  double slow_ms_;
  std::atomic<bool> first_consumed_{false};
};

TEST(CoordinatorFaults, RetriesTransientShardFailuresToCompletion) {
  Tier tier("coord_retry", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.max_shard_retries = 2;
  options.enable_hedging = false;  // isolate the retry path
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 1) {
                            return std::make_shared<FlakyTransport>(
                                std::move(t), 2);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(31, 80);
  tier.Load(data);

  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[10].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  const Status s = tier.coordinator()->ThresholdSearch(
      data[10].points, 0.05, Measure::kFrechet, &actual, &m);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "post-retry threshold");
  EXPECT_FALSE(m.partial);
  EXPECT_EQ(m.shards_skipped, 0u);
  const auto stats = tier.coordinator()->Stats();
  EXPECT_GE(stats[1].attempts, 3u);  // primary + 2 retries
  EXPECT_GE(stats[1].failures, 2u);
  tier.Reset();
}

TEST(CoordinatorFaults, TopKRetryCarriesTheBoundAndStaysExact) {
  Tier tier("coord_topk_retry", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 2) {
                            return std::make_shared<FlakyTransport>(
                                std::move(t), 1);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(37, 100);
  tier.Load(data);

  // The retried shard answers a follow-up wave carrying the merged
  // k-th-distance bound; the final answer must still be exact.
  std::vector<SearchResult> expected, actual;
  ASSERT_TRUE(
      tier.reference()
          ->TopKSearch(data[20].points, 9, Measure::kFrechet, &expected)
          .ok());
  const Status s = tier.coordinator()->TopKSearch(data[20].points, 9,
                                                  Measure::kFrechet, &actual);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "bounded follow-up top-k");
  tier.Reset();
}

TEST(CoordinatorFaults, HedgeReclaimsAStragglerShard) {
  Tier tier("coord_hedge", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = true;
  options.hedge_min_delay_ms = 15.0;
  tier.BuildCoordinator(options,
                        [](size_t shard, std::shared_ptr<ShardTransport> t)
                            -> std::shared_ptr<ShardTransport> {
                          if (shard == 0) {
                            return std::make_shared<SlowOnceTransport>(
                                std::move(t), 2000.0);
                          }
                          return t;
                        });
  const auto data = trass::testing::RandomDataset(41, 60);
  tier.Load(data);

  std::vector<SearchResult> expected, actual;
  QueryMetrics m;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &expected)
                  .ok());
  const auto start = std::chrono::steady_clock::now();
  const Status s = tier.coordinator()->ThresholdSearch(
      data[5].points, 0.05, Measure::kFrechet, &actual, &m);
  const double elapsed = ElapsedMs(start);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameResults(expected, actual, "hedged threshold");
  EXPECT_GE(m.hedges_sent, 1u);
  EXPECT_GE(m.hedge_wins, 1u);
  EXPECT_LT(elapsed, 1900.0) << "hedge did not beat the 2s straggler";
  EXPECT_FALSE(m.partial);
  tier.Reset();
}

TEST(CoordinatorFaults, WedgedShardDegradesToVerifiedPartialAndTripsBreaker) {
  Tier tier("coord_wedge", 4, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 60000.0;  // stays open for the test
  std::shared_ptr<FaultInjectionTransport> wedgeable;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 2) {
          wedgeable = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return wedgeable;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(43, 80);
  tier.Load(data);
  wedgeable->SetWedged(true);

  CoordinatorQueryOptions query_options;
  query_options.query.deadline_ms = 300.0;
  query_options.query.allow_partial = true;

  // Wedged-shard queries: verified partial, the gap reported.
  QueryMetrics m;
  for (int i = 0; i < 3; ++i) {
    std::vector<SearchResult> results;
    const Status s = tier.coordinator()->ThresholdSearch(
        data[7].points, 0.05, Measure::kFrechet, &results, &m, query_options);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(m.partial);
    EXPECT_GE(m.shards_skipped, 1u);
    // Everything returned is verified: it appears in the reference
    // answer with the same distance.
    std::vector<SearchResult> reference;
    ASSERT_TRUE(tier.reference()
                    ->ThresholdSearch(data[7].points, 0.05, Measure::kFrechet,
                                      &reference)
                    .ok());
    for (const SearchResult& r : results) {
      const auto it = std::find_if(
          reference.begin(), reference.end(),
          [&](const SearchResult& e) { return e.id == r.id; });
      ASSERT_NE(it, reference.end()) << "unverified result id " << r.id;
      EXPECT_DOUBLE_EQ(it->distance, r.distance);
    }
    // Give the cancelled straggler a beat to record its failure.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The breaker absorbed the wedge: open state, fast rejection.
  EXPECT_EQ(tier.coordinator()->breaker(2)->state(),
            CircuitBreaker::State::kOpen);
  std::vector<SearchResult> results;
  const auto start = std::chrono::steady_clock::now();
  const Status s = tier.coordinator()->ThresholdSearch(
      data[7].points, 0.05, Measure::kFrechet, &results, &m, query_options);
  const double elapsed = ElapsedMs(start);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(m.breaker_open, 1u);
  EXPECT_GE(m.shards_skipped, 1u);
  EXPECT_LT(elapsed, 250.0) << "open breaker should skip the wedged shard "
                               "without burning the deadline";
  tier.Reset();
}

TEST(CoordinatorFaults, ShardRecoversAfterACancelledHalfOpenProbe) {
  // Regression: a half-open probe attempt cancelled at fan-out teardown
  // (deadline expiry) must release the probe slot. Leaking it left the
  // shard permanently excluded — every later Admit() rejected — even
  // after the shard recovered.
  Tier tier("coord_probe_cancel", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 50.0;
  std::shared_ptr<FaultInjectionTransport> faulty;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 1) {
          faulty = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return faulty;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(59, 60);
  tier.Load(data);

  CoordinatorQueryOptions degraded;
  degraded.query.deadline_ms = 100.0;
  degraded.query.allow_partial = true;

  // Trip the breaker: the wedged attempt reports IoError once reclaimed.
  faulty->SetWedged(true);
  std::vector<SearchResult> results;
  QueryMetrics m;
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &results, &m, degraded)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kOpen);

  // Cooldown elapsed: the next query claims the half-open probe, but a
  // long injected delay gets it cancelled at the deadline — the exact
  // no-recorded-outcome path that used to leak the slot.
  faulty->SetWedged(false);
  FaultInjectionTransport::Options slow;
  slow.delay_probability = 1.0;
  slow.delay_ms = 5000.0;
  faulty->SetOptions(slow);
  ASSERT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &results, &m, degraded)
                  .ok());
  EXPECT_TRUE(m.partial);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kHalfOpen);

  // Shard healthy again: a strict query must be able to re-probe,
  // succeed on every shard, and reinstate the breaker.
  faulty->SetOptions(FaultInjectionTransport::Options{});
  CoordinatorQueryOptions strict;
  const Status s = tier.coordinator()->ThresholdSearch(
      data[5].points, 0.05, Measure::kFrechet, &results, &m, strict);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(m.partial);
  EXPECT_EQ(m.shards_skipped, 0u);
  EXPECT_EQ(m.shards_contacted, 3u);
  EXPECT_EQ(tier.coordinator()->breaker(1)->state(),
            CircuitBreaker::State::kClosed);
  std::vector<SearchResult> reference;
  ASSERT_TRUE(tier.reference()
                  ->ThresholdSearch(data[5].points, 0.05, Measure::kFrechet,
                                    &reference)
                  .ok());
  ExpectSameResults(reference, results, "post-recovery strict query");
  tier.Reset();
}

TEST(CoordinatorFaults, StrictModeFailsFastWithShardAttribution) {
  Tier tier("coord_strict", 3, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  options.max_shard_retries = 1;
  std::shared_ptr<FaultInjectionTransport> faulty;
  tier.BuildCoordinator(
      options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        if (shard == 1) {
          faulty = std::make_shared<FaultInjectionTransport>(
              std::move(t), FaultInjectionTransport::Options{});
          return faulty;
        }
        return t;
      });
  const auto data = trass::testing::RandomDataset(47, 60);
  tier.Load(data);
  FaultInjectionTransport::Options always_fail;
  always_fail.error_probability = 1.0;
  faulty->SetOptions(always_fail);

  std::vector<SearchResult> results;
  const Status s = tier.coordinator()->ThresholdSearch(
      data[3].points, 0.05, Measure::kFrechet, &results);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_NE(s.ToString().find("shard 1"), std::string::npos) << s.ToString();
  tier.Reset();
}

TEST(CoordinatorFaults, DeadlineExpiresToTimedOutOrVerifiedPartial) {
  Tier tier("coord_deadline", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.enable_hedging = false;
  std::vector<std::shared_ptr<FaultInjectionTransport>> wedges;
  tier.BuildCoordinator(
      options, [&](size_t, std::shared_ptr<ShardTransport> t)
                   -> std::shared_ptr<ShardTransport> {
        auto w = std::make_shared<FaultInjectionTransport>(
            std::move(t), FaultInjectionTransport::Options{});
        wedges.push_back(w);
        return w;
      });
  const auto data = trass::testing::RandomDataset(53, 40);
  tier.Load(data);
  for (auto& w : wedges) w->SetWedged(true);

  CoordinatorQueryOptions strict;
  strict.query.deadline_ms = 150.0;
  std::vector<SearchResult> results;
  auto start = std::chrono::steady_clock::now();
  Status s = tier.coordinator()->ThresholdSearch(
      data[1].points, 0.05, Measure::kFrechet, &results, nullptr, strict);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_LT(ElapsedMs(start), 5000.0) << "hung past its deadline";

  CoordinatorQueryOptions lenient = strict;
  lenient.query.allow_partial = true;
  QueryMetrics m;
  start = std::chrono::steady_clock::now();
  s = tier.coordinator()->ThresholdSearch(data[1].points, 0.05,
                                          Measure::kFrechet, &results, &m,
                                          lenient);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_LT(ElapsedMs(start), 5000.0);
  EXPECT_TRUE(m.partial);
  EXPECT_EQ(m.shards_skipped, 2u);
  EXPECT_TRUE(m.deadline_expired);
  EXPECT_TRUE(results.empty());
  tier.Reset();
}

TEST(CoordinatorFaults, TenantQuotaShedsAtTheRouter) {
  Tier tier("coord_quota", 2, 1);
  CoordinatorOptions options = FastCoordinatorOptions();
  options.tenant_tokens_per_sec = 0.001;  // effectively no refill mid-test
  options.tenant_burst = 2.0;
  tier.BuildCoordinator(options);
  const auto data = trass::testing::RandomDataset(59, 40);
  tier.Load(data);

  CoordinatorQueryOptions alice;
  alice.tenant = "alice";
  std::vector<SearchResult> results;
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, alice)
                  .ok());
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, alice)
                  .ok());
  const Status shed = tier.coordinator()->ThresholdSearch(
      data[0].points, 0.05, Measure::kFrechet, &results, nullptr, alice);
  EXPECT_TRUE(shed.IsBusy()) << shed.ToString();

  CoordinatorQueryOptions bob;
  bob.tenant = "bob";
  EXPECT_TRUE(tier.coordinator()
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &results, nullptr, bob)
                  .ok());
  EXPECT_EQ(tier.coordinator()->quota()->counters().shed, 1u);
  tier.Reset();
}

// ---------------------------------------------------------------------------
// Seeded chaos matrix

// The robustness acceptance bar: under a randomized schedule of drops,
// delays, duplicates, errors, and one mid-run wedge, every query either
// completes with the exact single-store answer or returns a verified
// partial subset with the gap reported (shards_skipped > 0) — never a
// wrong merged result, never a hang past the deadline, never a silent
// gap. Rerun one failing schedule with TRASS_CHAOS_SEED=<seed>.
TEST(CoordinatorChaos, SeededFaultMatrix) {
  uint64_t base_seed = 20240808;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 2;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));

    Tier tier("coord_chaos_" + std::to_string(seed), 3, 1);
    CoordinatorOptions options = FastCoordinatorOptions();
    options.hedge_min_delay_ms = 10.0;
    options.breaker_cooldown_ms = 100.0;
    // Each transport is constructed benign but seeded; the fault
    // probabilities switch on after the (fault-free) load, so the
    // chaos schedule exercises the query path the acceptance bar is
    // about. SetOptions keeps the seeded RNG.
    std::vector<std::shared_ptr<FaultInjectionTransport>> chaos;
    tier.BuildCoordinator(
        options, [&](size_t shard, std::shared_ptr<ShardTransport> t)
                     -> std::shared_ptr<ShardTransport> {
          FaultInjectionTransport::Options benign;
          benign.seed = seed * 7919 + shard;
          auto wrapped = std::make_shared<FaultInjectionTransport>(
              std::move(t), benign);
          chaos.push_back(wrapped);
          return wrapped;
        });
    const auto data = trass::testing::RandomDataset(seed, 90);
    tier.Load(data);
    FaultInjectionTransport::Options fault;
    fault.error_probability = 0.10;
    fault.drop_probability = 0.05;
    fault.delay_probability = 0.20;
    fault.duplicate_probability = 0.10;
    fault.delay_ms = 10.0;
    for (auto& c : chaos) c->SetOptions(fault);

    CoordinatorQueryOptions query_options;
    query_options.query.deadline_ms = 3000.0;
    query_options.query.allow_partial = true;

    uint64_t partials = 0;
    for (int q = 0; q < 30; ++q) {
      // One shard wedges for the middle third of the schedule.
      if (q == 10) chaos[rnd.Uniform(3)]->SetWedged(true);
      if (q == 20) {
        for (auto& c : chaos) c->SetWedged(false);
      }
      const size_t probe = rnd.Uniform(static_cast<uint32_t>(data.size()));
      const auto start = std::chrono::steady_clock::now();

      if (q % 3 == 2) {
        // Top-k shape.
        const int k = 1 + static_cast<int>(rnd.Uniform(10));
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->TopKSearch(data[probe].points, k, Measure::kFrechet,
                                     &expected)
                        .ok());
        const Status s = tier.coordinator()->TopKSearch(
            data[probe].points, k, Measure::kFrechet, &actual, &m,
            query_options);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_LT(ElapsedMs(start), 30000.0) << "hung well past the deadline";
        if (!m.partial) {
          ExpectSameResults(expected, actual, "chaos top-k q" +
                                                  std::to_string(q));
        } else {
          partials++;
          EXPECT_GT(m.shards_skipped + m.skipped_regions, 0u)
              << "partial without a reported gap";
          // A partial top-k is a verified subset of the dataset ranked
          // by true distance: each entry must match the reference entry
          // for the same id.
          std::vector<SearchResult> full;
          ASSERT_TRUE(tier.reference()
                          ->ThresholdSearch(data[probe].points,
                                            std::numeric_limits<double>::max(),
                                            Measure::kFrechet, &full)
                          .ok());
          for (const SearchResult& r : actual) {
            const auto it = std::find_if(
                full.begin(), full.end(),
                [&](const SearchResult& e) { return e.id == r.id; });
            ASSERT_NE(it, full.end()) << "invented id " << r.id;
            EXPECT_DOUBLE_EQ(it->distance, r.distance);
          }
        }
      } else {
        // Threshold shape.
        const double eps = 0.02 + 0.02 * rnd.UniformDouble(0.0, 1.0);
        std::vector<SearchResult> expected, actual;
        QueryMetrics m;
        ASSERT_TRUE(tier.reference()
                        ->ThresholdSearch(data[probe].points, eps,
                                          Measure::kFrechet, &expected)
                        .ok());
        const Status s = tier.coordinator()->ThresholdSearch(
            data[probe].points, eps, Measure::kFrechet, &actual, &m,
            query_options);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_LT(ElapsedMs(start), 30000.0) << "hung well past the deadline";
        // Duplicate faults and hedges must never double-merge.
        for (size_t i = 1; i < actual.size(); ++i) {
          ASSERT_NE(actual[i - 1].id, actual[i].id) << "duplicated result";
        }
        if (!m.partial) {
          ExpectSameResults(expected, actual,
                            "chaos threshold q" + std::to_string(q));
        } else {
          partials++;
          EXPECT_GT(m.shards_skipped + m.skipped_regions, 0u)
              << "partial without a reported gap";
          for (const SearchResult& r : actual) {
            const auto it = std::find_if(
                expected.begin(), expected.end(),
                [&](const SearchResult& e) { return e.id == r.id; });
            ASSERT_NE(it, expected.end()) << "invented id " << r.id;
            EXPECT_DOUBLE_EQ(it->distance, r.distance);
          }
        }
      }
    }
    // The schedule exercised the degraded path at least once (a wedged
    // shard for a third of the run guarantees it).
    EXPECT_GT(partials, 0u) << "chaos schedule never degraded — faults too "
                               "weak to prove anything";
    tier.Reset();
  }
}

}  // namespace
}  // namespace serve
}  // namespace trass
