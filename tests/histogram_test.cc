#include "util/histogram.h"

#include <gtest/gtest.h>

namespace trass {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.Min(), 42.0);
  EXPECT_EQ(h.Max(), 42.0);
  EXPECT_EQ(h.Median(), 42.0);
  EXPECT_EQ(h.Percentile(99), 42.0);
}

TEST(HistogramTest, PercentilesOfUniformSequence) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.Median(), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.05);
  EXPECT_NEAR(h.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 100.0, 1e-9);
}

TEST(HistogramTest, InsertionOrderIrrelevant) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.Add(i);
  for (int i = 49; i >= 0; --i) b.Add(i);
  EXPECT_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.Percentile(95), b.Percentile(95));
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ToStringContainsFields) {
  Histogram h;
  h.Add(1.0);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace trass
