#include <gtest/gtest.h>

#include <memory>

#include "baselines/brute_force.h"
#include "baselines/trass_searcher.h"
#include "baselines/xz2_store.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : dir_("baselines") {}

  trass::testing::ScratchDir dir_;
};

TEST_F(BaselinesTest, BruteForceThresholdIsSelfConsistent) {
  const auto data = trass::testing::RandomDataset(21, 100);
  BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  std::vector<core::SearchResult> results;
  ASSERT_TRUE(brute
                  .Threshold(data[0].points, 1e-12, core::Measure::kFrechet,
                             &results, nullptr)
                  .ok());
  ASSERT_GE(results.size(), 1u);
  EXPECT_EQ(results[0].distance, 0.0);
}

TEST_F(BaselinesTest, BruteForceTopKOrdering) {
  const auto data = trass::testing::RandomDataset(22, 100);
  BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  std::vector<core::SearchResult> results;
  ASSERT_TRUE(brute
                  .TopK(data[5].points, 10, core::Measure::kFrechet,
                        &results, nullptr)
                  .ok());
  ASSERT_EQ(results.size(), 10u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].distance, results[i].distance);
  }
  EXPECT_EQ(results[0].distance, 0.0);  // the query itself is in the data
}

TEST_F(BaselinesTest, Xz2StoreThresholdMatchesBruteForce) {
  const auto data = trass::testing::RandomDataset(23, 200);
  Xz2Store::Options options;
  options.shards = 4;
  options.max_resolution = 12;
  Xz2Store xz2(options, dir_.path() + "/xz2");
  ASSERT_TRUE(xz2.Build(data).ok());
  BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(24);
  for (int iter = 0; iter < 10; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (double eps : {0.005, 0.02}) {
      std::vector<core::SearchResult> got, expected;
      ASSERT_TRUE(
          xz2.Threshold(query, eps, core::Measure::kFrechet, &got, nullptr)
              .ok());
      ASSERT_TRUE(brute
                      .Threshold(query, eps, core::Measure::kFrechet,
                                 &expected, nullptr)
                      .ok());
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST_F(BaselinesTest, Xz2StoreTopKMatchesBruteForceDistances) {
  const auto data = trass::testing::RandomDataset(25, 150);
  Xz2Store::Options options;
  options.shards = 4;
  options.max_resolution = 12;
  Xz2Store xz2(options, dir_.path() + "/xz2_topk");
  ASSERT_TRUE(xz2.Build(data).ok());
  BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  const auto& query = data[42].points;
  std::vector<core::SearchResult> got, expected;
  ASSERT_TRUE(
      xz2.TopK(query, 10, core::Measure::kFrechet, &got, nullptr).ok());
  ASSERT_TRUE(
      brute.TopK(query, 10, core::Measure::kFrechet, &expected, nullptr)
          .ok());
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
  }
}

TEST_F(BaselinesTest, TrassRetrievesFewerRowsThanXz2) {
  // The paper's core claim (Figures 9b/11b): XZ* global pruning touches
  // fewer rows than XZ-Ordering on the same store.
  const auto data = trass::testing::RandomDataset(26, 400, 20, 60);
  core::TrassOptions trass_options;
  trass_options.shards = 4;
  trass_options.max_resolution = 12;
  TrassSearcher trass_searcher(trass_options, dir_.path() + "/trass");
  ASSERT_TRUE(trass_searcher.Build(data).ok());
  Xz2Store::Options xz2_options;
  xz2_options.shards = 4;
  xz2_options.max_resolution = 12;
  Xz2Store xz2(xz2_options, dir_.path() + "/xz2_cmp");
  ASSERT_TRUE(xz2.Build(data).ok());

  Random rnd(27);
  uint64_t trass_retrieved = 0;
  uint64_t xz2_retrieved = 0;
  for (int iter = 0; iter < 20; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    std::vector<core::SearchResult> a, b;
    core::QueryMetrics ma, mb;
    ASSERT_TRUE(trass_searcher
                    .Threshold(query, 0.01, core::Measure::kFrechet, &a, &ma)
                    .ok());
    ASSERT_TRUE(
        xz2.Threshold(query, 0.01, core::Measure::kFrechet, &b, &mb).ok());
    ASSERT_EQ(a.size(), b.size());  // identical answers
    trass_retrieved += ma.retrieved;
    xz2_retrieved += mb.retrieved;
  }
  EXPECT_LT(trass_retrieved, xz2_retrieved);
}

}  // namespace
}  // namespace baselines
}  // namespace trass
