// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  * XZ* encode/decode bijectivity at every resolution,
//  * TraSS == brute force across shard counts, resolutions, and measures,
//  * LSM engine consistency across storage tuning knobs.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "baselines/brute_force.h"
#include "core/trass_store.h"
#include "index/xzstar.h"
#include "kv/db.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace {

// ---------- XZ* bijectivity across resolutions ----------

class XzStarResolutionTest : public ::testing::TestWithParam<int> {};

TEST_P(XzStarResolutionTest, EncodeDecodeBijective) {
  const int resolution = GetParam();
  index::XzStar xz(resolution);
  Random rnd(1000 + resolution);
  for (int iter = 0; iter < 2000; ++iter) {
    const int64_t value =
        static_cast<int64_t>(rnd.Uniform(xz.TotalIndexSpaces()));
    ASSERT_EQ(xz.Encode(xz.Decode(value)), value) << "r=" << resolution;
  }
}

TEST_P(XzStarResolutionTest, IndexedValuesDecodeToSameSpace) {
  const int resolution = GetParam();
  index::XzStar xz(resolution);
  Random rnd(2000 + resolution);
  for (int iter = 0; iter < 500; ++iter) {
    const auto t = trass::testing::RandomTrajectory(&rnd, 1, 10);
    const auto space = xz.Index(t.points);
    const auto decoded = xz.Decode(xz.Encode(space));
    ASSERT_EQ(decoded, space);
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, XzStarResolutionTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 20, 24,
                                           index::XzStar::kMaxResolution));

// ---------- TraSS correctness across configurations ----------

struct StoreConfig {
  int shards;
  int resolution;
  core::Measure measure;
};

class StoreSweepTest : public ::testing::TestWithParam<StoreConfig> {};

TEST_P(StoreSweepTest, MatchesBruteForce) {
  const StoreConfig config = GetParam();
  trass::testing::ScratchDir dir(
      "sweep_" + std::to_string(config.shards) + "_" +
      std::to_string(config.resolution) + "_" +
      std::to_string(static_cast<int>(config.measure)));
  core::TrassOptions options;
  options.shards = config.shards;
  options.max_resolution = config.resolution;
  std::unique_ptr<core::TrassStore> store;
  ASSERT_TRUE(
      core::TrassStore::Open(options, dir.path() + "/db", &store).ok());
  const auto data = trass::testing::RandomDataset(
      static_cast<uint64_t>(42 + config.shards), 120);
  for (const auto& t : data) ASSERT_TRUE(store->Put(t).ok());
  ASSERT_TRUE(store->Flush().ok());

  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  const double eps = config.measure == core::Measure::kDtw ? 0.3 : 0.01;
  for (size_t qi : {size_t{3}, size_t{57}, size_t{99}}) {
    const auto& query = data[qi].points;
    std::vector<core::SearchResult> got, expected;
    ASSERT_TRUE(
        store->ThresholdSearch(query, eps, config.measure, &got).ok());
    ASSERT_TRUE(
        brute.Threshold(query, eps, config.measure, &expected, nullptr)
            .ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
    }
    ASSERT_TRUE(store->TopKSearch(query, 7, config.measure, &got).ok());
    ASSERT_TRUE(brute.TopK(query, 7, config.measure, &expected, nullptr)
                    .ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, StoreSweepTest,
    ::testing::Values(
        StoreConfig{1, 12, core::Measure::kFrechet},
        StoreConfig{2, 8, core::Measure::kFrechet},
        StoreConfig{8, 16, core::Measure::kFrechet},
        StoreConfig{16, 10, core::Measure::kFrechet},
        StoreConfig{4, 12, core::Measure::kHausdorff},
        StoreConfig{4, 16, core::Measure::kHausdorff},
        StoreConfig{4, 12, core::Measure::kDtw},
        StoreConfig{8, 14, core::Measure::kDtw}));

// ---------- LSM engine consistency across tuning knobs ----------

struct DbConfig {
  size_t write_buffer;
  size_t block_size;
  int bloom_bits;
};

class DbSweepTest : public ::testing::TestWithParam<DbConfig> {};

TEST_P(DbSweepTest, ModelConsistencyUnderMixedWorkload) {
  const DbConfig config = GetParam();
  trass::testing::ScratchDir dir(
      "dbsweep_" + std::to_string(config.write_buffer) + "_" +
      std::to_string(config.block_size) + "_" +
      std::to_string(config.bloom_bits));
  kv::Options options;
  options.write_buffer_size = config.write_buffer;
  options.block_size = config.block_size;
  options.bloom_bits_per_key = config.bloom_bits;
  options.target_file_size = 8 * 1024;
  options.max_bytes_for_level_base = 32 * 1024;
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir.path() + "/db", &db).ok());

  Random rnd(static_cast<uint64_t>(config.write_buffer + config.bloom_bits));
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rnd.Uniform(500));
    if (rnd.Bernoulli(0.2)) {
      ASSERT_TRUE(db->Delete(kv::WriteOptions(), key).ok());
      model.erase(key);
    } else {
      const std::string value(20 + rnd.Uniform(200), 'a' + i % 26);
      ASSERT_TRUE(db->Put(kv::WriteOptions(), key, value).ok());
      model[key] = value;
    }
  }
  // Point lookups agree with the model.
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    std::string value;
    const Status s = db->Get(kv::ReadOptions(), key, &value);
    const auto it = model.find(key);
    if (it == model.end()) {
      ASSERT_FALSE(s.ok()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key;
      ASSERT_EQ(value, it->second);
    }
  }
  // Full iteration agrees with the model.
  std::unique_ptr<kv::Iterator> iter(db->NewIterator(kv::ReadOptions()));
  auto model_it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    ASSERT_EQ(iter->key().ToString(), model_it->first);
    ASSERT_EQ(iter->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, DbSweepTest,
    ::testing::Values(DbConfig{4 * 1024, 256, 10},    // tiny memtable
                      DbConfig{16 * 1024, 1024, 10},  // frequent flushes
                      DbConfig{16 * 1024, 4096, 0},   // no bloom filters
                      DbConfig{1 << 20, 4096, 10},    // mostly memtable
                      DbConfig{8 * 1024, 64, 4}));    // tiny blocks

}  // namespace
}  // namespace trass
