#include "kv/db.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace kv {
namespace {

class DbTest : public ::testing::Test {
 protected:
  DbTest() : dir_("db") { Reopen(); }

  void Reopen(Options options = SmallOptions()) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, dir_.path() + "/db", &db_).ok());
  }

  static Options SmallOptions() {
    Options options;
    options.write_buffer_size = 32 * 1024;  // flush often
    options.block_size = 1024;
    options.target_file_size = 16 * 1024;
    options.max_bytes_for_level_base = 64 * 1024;
    return options;
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    return s.ok() ? value : s.ToString();
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbTest, PutGet) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "key", "value").ok());
  EXPECT_EQ(Get("key"), "value");
  EXPECT_EQ(Get("missing"), "NotFound: key not found");
}

TEST_F(DbTest, Overwrite) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v2").ok());
  EXPECT_EQ(Get("k"), "v2");
}

TEST_F(DbTest, DeleteHidesKey) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  EXPECT_EQ(Get("k"), "NotFound: deleted");
}

TEST_F(DbTest, GetAcrossFlush) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_GE(db_->NumFilesAtLevel(0) + db_->NumFilesAtLevel(1), 1);
  EXPECT_EQ(Get("a"), "1");
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "2").ok());
  EXPECT_EQ(Get("a"), "2");  // memtable shadows the SST
}

TEST_F(DbTest, DeleteAcrossFlush) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_NE(Get("k"), "v");
}

TEST_F(DbTest, IteratorVisitsSortedLiveKeys) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "3").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "2").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "c").ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  std::vector<std::string> keys;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    keys.push_back(iter->key().ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST_F(DbTest, IteratorSeek) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(db_->Put(WriteOptions(), buf, std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek("k050");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k050");
  iter->Seek("k0505");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k051");
}

TEST_F(DbTest, ManyWritesTriggerCompactionsAndStayReadable) {
  Random rnd(1);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "key-" + std::to_string(rnd.Uniform(800));
    const std::string value(100 + rnd.Uniform(100), 'a' + i % 26);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  // Some data must have reached deeper levels.
  int deep_files = 0;
  for (int level = 1; level < kNumLevels; ++level) {
    deep_files += db_->NumFilesAtLevel(level);
  }
  EXPECT_GT(deep_files, 0);
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(key), value) << key;
  }
  // Iterator agrees with the model.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto model_it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++model_it) {
    ASSERT_NE(model_it, model.end());
    ASSERT_EQ(iter->key().ToString(), model_it->first);
    ASSERT_EQ(iter->value().ToString(), model_it->second);
  }
  EXPECT_EQ(model_it, model.end());
}

// Background compaction rewrites and unlinks the very tables an open
// iterator's snapshot references; version pins defer the deletion, so a
// reader must keep seeing its point-in-time data while the writer churns
// compactions underneath it. Also the designated TSan exercise for the
// pick -> lock-free merge -> install pipeline.
TEST_F(DbTest, ReadsStayCorrectWhileBackgroundCompactionReplacesFiles) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%04d", i);
    const std::string value(120, 'a' + i % 26);
    ASSERT_TRUE(db_->Put(WriteOptions(), buf, value).ok());
    model[buf] = value;
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_->WaitForCompactions();

  // Snapshot taken now; every table it references is a compaction input
  // for the churn below (the writer's keys interleave with the loaded
  // range, so merges must rewrite the loaded tables, not sidestep them).
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  std::atomic<bool> failed{false};
  std::thread writer([this, &failed] {
    Random rnd(7);
    for (int i = 0; i < 4000; ++i) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "key-%04d-x%05d",
                    static_cast<int>(rnd.Uniform(1500)), i);
      if (!db_->Put(WriteOptions(), buf, std::string(150, 'z')).ok()) {
        failed = true;
        return;
      }
    }
  });
  std::thread getter([this, &model, &failed] {
    Random rnd(9);
    for (int i = 0; i < 2000; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "key-%04d",
                    static_cast<int>(rnd.Uniform(1500)));
      std::string value;
      if (!db_->Get(ReadOptions(), buf, &value).ok() ||
          value != model.at(buf)) {
        failed = true;
        return;
      }
    }
  });
  // Walk the snapshot while the churn runs. Writer keys that landed in
  // the still-shared memtable may be visible; the loaded keys (exactly
  // "key-%04d", length 8) must all appear, in order, unmodified.
  auto model_it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const std::string key = iter->key().ToString();
    if (key.size() != 8) continue;  // concurrent writer key
    ASSERT_NE(model_it, model.end());
    ASSERT_EQ(key, model_it->first);
    ASSERT_EQ(iter->value().ToString(), model_it->second);
    ++model_it;
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_EQ(model_it, model.end());
  writer.join();
  getter.join();
  EXPECT_FALSE(failed.load());
  iter.reset();  // last pin: deferred table deletions drain here
  db_->WaitForCompactions();
  EXPECT_TRUE(db_->VerifyIntegrity().ok());
}

TEST_F(DbTest, CompactRangePreservesData) {
  std::map<std::string, std::string> model;
  Random rnd(2);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value(50, 'x');
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(db_->NumFilesAtLevel(0), 0);
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(key), value);
  }
}

TEST_F(DbTest, RecoversFromWalAfterReopen) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "persist", "me").ok());
  // No flush: the data lives only in WAL + memtable.
  Reopen();
  EXPECT_EQ(Get("persist"), "me");
}

TEST_F(DbTest, RecoversLargeStateAfterReopen) {
  Random rnd(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rnd.Uniform(1000));
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  Reopen();
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(key), value) << key;
  }
}

TEST_F(DbTest, DeletionSurvivesReopen) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "gone", "x").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "gone").ok());
  Reopen();
  EXPECT_NE(Get("gone"), "x");
}

TEST_F(DbTest, WriteBatchIsAtomicallyVisible) {
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Delete("x");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_NE(Get("x"), "1");
  EXPECT_EQ(Get("y"), "2");
}

TEST_F(DbTest, IoStatsCountScans) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  const uint64_t rows_before = db_->io_stats().rows_scanned.load();
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
  EXPECT_EQ(count, 100);
  EXPECT_EQ(db_->io_stats().rows_scanned.load() - rows_before, 100u);
}

TEST_F(DbTest, OpenFailsWithoutCreateIfMissing) {
  Options options;
  options.create_if_missing = false;
  std::unique_ptr<DB> db;
  EXPECT_FALSE(DB::Open(options, dir_.path() + "/nonexistent", &db).ok());
}

}  // namespace
}  // namespace kv
}  // namespace trass
