#include "geo/oriented_box.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace trass {
namespace geo {
namespace {

std::vector<Point> DiagonalPoints() {
  // Points roughly along y = x with bounded deviation.
  return {{0.0, 0.0}, {0.25, 0.3}, {0.5, 0.45}, {0.75, 0.8}, {1.0, 1.0}};
}

TEST(OrientedBoxTest, CoverContainsAllCoveredPoints) {
  const auto points = DiagonalPoints();
  const OrientedBox box =
      OrientedBox::Cover(points, 0, points.size() - 1, points.front(),
                         points.back());
  for (const Point& p : points) {
    EXPECT_TRUE(box.Contains(p)) << p.x << "," << p.y;
    EXPECT_DOUBLE_EQ(box.Distance(p), 0.0);
  }
}

TEST(OrientedBoxTest, OrientedBoxIsTighterThanAxisAlignedForDiagonal) {
  const auto points = DiagonalPoints();
  const OrientedBox box =
      OrientedBox::Cover(points, 0, points.size() - 1, points.front(),
                         points.back());
  // The oriented box of near-diagonal points is a thin sliver; its area is
  // far below the axis-aligned bounding square.
  const Point& c0 = box.corner(0);
  const Point& c1 = box.corner(1);
  const Point& c3 = box.corner(3);
  const double len = Distance(c0, c1);
  const double wid = Distance(c0, c3);
  EXPECT_LT(len * wid, 0.5 * 1.0 * 1.0);
}

TEST(OrientedBoxTest, DegenerateAxisFallsBackToAxisAligned) {
  const std::vector<Point> points = {{0.3, 0.3}, {0.4, 0.5}, {0.5, 0.3}};
  const OrientedBox box =
      OrientedBox::Cover(points, 0, 2, points.front(), points.front());
  for (const Point& p : points) EXPECT_TRUE(box.Contains(p));
}

TEST(OrientedBoxTest, SinglePointBox) {
  const std::vector<Point> points = {{0.5, 0.5}};
  const OrientedBox box =
      OrientedBox::Cover(points, 0, 0, points[0], points[0]);
  EXPECT_TRUE(box.Contains(points[0]));
  EXPECT_NEAR(box.Distance(Point{0.5, 0.6}), 0.1, 1e-12);
}

TEST(OrientedBoxTest, DistanceToOutsidePoint) {
  const std::vector<Point> points = {{0, 0}, {1, 0}};
  const OrientedBox box = OrientedBox::Cover(points, 0, 1, points[0],
                                             points[1]);
  EXPECT_NEAR(box.Distance(Point{0.5, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(box.Distance(Point{2.0, 0.0}), 1.0, 1e-12);
}

TEST(OrientedBoxTest, SegmentDistance) {
  const std::vector<Point> points = {{0, 0}, {1, 0}};
  const OrientedBox box = OrientedBox::Cover(points, 0, 1, points[0],
                                             points[1]);
  EXPECT_DOUBLE_EQ(box.SegmentDistance({0.5, -1}, {0.5, 1}), 0.0);
  EXPECT_NEAR(box.SegmentDistance({0, 2}, {1, 2}), 2.0, 1e-12);
}

TEST(OrientedBoxTest, BoxToBoxDistance) {
  const std::vector<Point> a = {{0, 0}, {1, 0}};
  const std::vector<Point> b = {{0, 2}, {1, 2}};
  const std::vector<Point> c = {{0.5, -0.5}, {0.5, 0.5}};
  const OrientedBox ba = OrientedBox::Cover(a, 0, 1, a[0], a[1]);
  const OrientedBox bb = OrientedBox::Cover(b, 0, 1, b[0], b[1]);
  const OrientedBox bc = OrientedBox::Cover(c, 0, 1, c[0], c[1]);
  EXPECT_NEAR(ba.Distance(bb), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ba.Distance(bc), 0.0);  // crossing boxes
  EXPECT_DOUBLE_EQ(ba.Distance(ba), 0.0);
}

TEST(OrientedBoxTest, RotatedFrameRoundTripProperty) {
  // Property: for random point clouds and axes, Cover() contains every
  // covered point and its Bounds() contains the box corners.
  Random rnd(5);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Point> points;
    const int n = 2 + static_cast<int>(rnd.Uniform(20));
    for (int i = 0; i < n; ++i) {
      points.push_back(Point{rnd.NextDouble(), rnd.NextDouble()});
    }
    const OrientedBox box = OrientedBox::Cover(
        points, 0, points.size() - 1, points.front(), points.back());
    for (const Point& p : points) {
      ASSERT_TRUE(box.Contains(p));
    }
    const Mbr bounds = box.Bounds();
    for (int c = 0; c < 4; ++c) {
      ASSERT_TRUE(bounds.Contains(box.corner(c)));
    }
  }
}

}  // namespace
}  // namespace geo
}  // namespace trass
