// Crash/corruption matrix driven by FaultInjectionEnv: simulated power
// loss during normal writes, flush, compaction, and manifest install
// must always leave a database that reopens with every acknowledged
// (sync=true) write intact and passes a full integrity scrub; injected
// block corruption must be detected, never silently served.

#include "kv/fault_injection_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/trass_store.h"
#include "kv/db.h"
#include "kv/filename.h"
#include "test_util.h"

namespace trass {
namespace kv {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : dir_("fault_injection"), env_(Env::Default()) {}

  std::string DbPath() const { return dir_.path() + "/db"; }

  Options DbOptions() {
    Options options;
    options.env = &env_;
    return options;
  }

  static std::string KeyOf(int i) { return "key-" + std::to_string(i); }
  static std::string ValueOf(int i) {
    return std::string(20 + i % 50, 'a' + i % 26);
  }

  // Simulated power loss: fail further mutations so the destructor's
  // best-effort flush cannot mask damage, drop everything that was not
  // fsynced, then bring the "machine" back up with faults disarmed.
  void Crash(std::unique_ptr<DB>* db) {
    env_.SetFilesystemActive(false);
    db->reset();
    env_.ClearFaults();
    ASSERT_TRUE(env_.DropUnsyncedData().ok());
    env_.SetFilesystemActive(true);
  }

  // Reopens and checks every key in [0, acked) survived with the exact
  // written value, then runs the checksum scrub.
  void ExpectAckedWritesSurvive(int acked) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
    for (int i = 0; i < acked; ++i) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(i), &value).ok()) << KeyOf(i);
      EXPECT_EQ(value, ValueOf(i)) << KeyOf(i);
    }
    EXPECT_TRUE(db->VerifyIntegrity().ok());
  }

  trass::testing::ScratchDir dir_;
  FaultInjectionEnv env_;
};

TEST_F(FaultInjectionTest, CrashLosesExactlyTheUnsyncedWalTail) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 50; ++i) {  // acknowledged
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }
  for (int i = 50; i < 100; ++i) {  // in flight, never acked
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
  }
  Crash(&db);
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  for (int i = 0; i < 100; ++i) {
    std::string value;
    const Status s = db->Get(ReadOptions(), KeyOf(i), &value);
    if (i < 50) {
      ASSERT_TRUE(s.ok()) << KeyOf(i);
      EXPECT_EQ(value, ValueOf(i));
    } else {
      EXPECT_TRUE(s.IsNotFound()) << KeyOf(i);
    }
  }
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(FaultInjectionTest, CrashDuringFlushKeepsAckedWrites) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }
  // The flush dies fsyncing its L0 output; the WAL already holds every
  // acked write, so losing the half-written table must lose nothing.
  FaultPoint fault;
  fault.op = FaultOp::kSync;
  fault.permanent = true;
  fault.path_substring = ".sst";
  env_.InjectFault(fault);
  EXPECT_FALSE(db->Flush().ok());
  EXPECT_GE(env_.faults_fired(), 1u);
  Crash(&db);
  ExpectAckedWritesSurvive(30);
}

TEST_F(FaultInjectionTest, CrashDuringCompactionKeepsAckedWrites) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // Compaction inputs stay referenced until the output is durable, so a
  // crash mid-compaction only wastes the partial output.
  FaultPoint fault;
  fault.op = FaultOp::kSync;
  fault.permanent = true;
  fault.path_substring = ".sst";
  env_.InjectFault(fault);
  EXPECT_FALSE(db->CompactRange().ok());
  Crash(&db);
  ExpectAckedWritesSurvive(40);
}

TEST_F(FaultInjectionTest, CrashDuringManifestInstallKeepsOldVersion) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db->Put(synced, KeyOf(0), ValueOf(0)).ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put(synced, KeyOf(1), ValueOf(1)).ok());
  // CURRENT is repointed via rename; failing it must leave the previous
  // manifest in charge, with the new write still recoverable from the
  // (synced) WAL it was acknowledged against.
  FaultPoint fault;
  fault.op = FaultOp::kRename;
  fault.permanent = true;
  fault.path_substring = "CURRENT";
  env_.InjectFault(fault);
  EXPECT_FALSE(db->Flush().ok());
  Crash(&db);
  ExpectAckedWritesSurvive(2);
}

TEST_F(FaultInjectionTest, RepeatedCrashReopenCyclesStayConsistent) {
  WriteOptions synced;
  synced.sync = true;
  int acked = 0;
  for (int round = 0; round < 4; ++round) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
    for (int i = 0; i < acked; ++i) {  // everything acked so far is here
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(i), &value).ok()) << KeyOf(i);
      ASSERT_EQ(value, ValueOf(i));
    }
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(db->Put(synced, KeyOf(acked), ValueOf(acked)).ok());
      ++acked;
    }
    if (round % 2 == 0) ASSERT_TRUE(db->Flush().ok());
    Crash(&db);
  }
  ExpectAckedWritesSurvive(acked);
}

TEST_F(FaultInjectionTest, TransientAndPermanentFaultPoints) {
  const std::string fname = dir_.path() + "/probe";
  ASSERT_TRUE(env_.WriteStringToFile("payload", fname, /*sync=*/true).ok());
  std::string data;

  FaultPoint transient;
  transient.op = FaultOp::kOpenRead;
  transient.countdown = 1;
  env_.InjectFault(transient);
  EXPECT_TRUE(env_.ReadFileToString(fname, &data).ok());   // countdown
  EXPECT_FALSE(env_.ReadFileToString(fname, &data).ok());  // fires
  EXPECT_TRUE(env_.ReadFileToString(fname, &data).ok());   // disarmed
  EXPECT_EQ(env_.faults_fired(), 1u);

  FaultPoint permanent;
  permanent.op = FaultOp::kOpenRead;
  permanent.permanent = true;
  env_.InjectFault(permanent);
  EXPECT_FALSE(env_.ReadFileToString(fname, &data).ok());
  EXPECT_FALSE(env_.ReadFileToString(fname, &data).ok());
  env_.ClearFaults();
  EXPECT_TRUE(env_.ReadFileToString(fname, &data).ok());
  EXPECT_EQ(data, "payload");
}

TEST_F(FaultInjectionTest, FlippedTableBytesAreDetectedNotServed) {
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip a chunk in the middle of the (only) SSTable.
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(DbPath(), &children).ok());
  std::string table_path;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        type == FileType::kTableFile) {
      table_path = DbPath() + "/" + child;
    }
  }
  ASSERT_FALSE(table_path.empty());
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(table_path, &contents).ok());
  for (size_t i = contents.size() / 2;
       i < contents.size() / 2 + 32 && i < contents.size(); ++i) {
    contents[i] = static_cast<char>(contents[i] ^ 0xff);
  }
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(contents, table_path, /*sync=*/false)
                  .ok());

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  const Status scrub = db->VerifyIntegrity();
  ASSERT_FALSE(scrub.ok());
  EXPECT_TRUE(scrub.IsCorruption()) << scrub.ToString();
  EXPECT_NE(scrub.ToString().find(".sst"), std::string::npos)
      << scrub.ToString();
  EXPECT_GT(db->io_stats().Read().corruptions_detected, 0u);
  EXPECT_GT(db->io_stats().Read().checksum_verifications, 0u);

  // Checksum-verified reads refuse the damaged blocks instead of
  // returning garbage: some Get must fail, and none may mis-answer.
  ReadOptions verify;
  verify.verify_checksums = true;
  int failed = 0;
  for (int i = 0; i < 200; ++i) {
    std::string value;
    const Status s = db->Get(verify, KeyOf(i), &value);
    if (s.ok()) {
      EXPECT_EQ(value, ValueOf(i)) << KeyOf(i);
    } else {
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
      ++failed;
    }
  }
  EXPECT_GT(failed, 0);
}

TEST_F(FaultInjectionTest, ParanoidChecksFailOnTornWalRecord) {
  // A mid-WAL flip is silent truncation in lenient mode but an error
  // under paranoid_checks.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
    }
    Crash(&db);
  }
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(DbPath(), &children).ok());
  std::string wal_path;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kLogFile) {
      uint64_t size = 0;
      ASSERT_TRUE(
          Env::Default()->GetFileSize(DbPath() + "/" + child, &size).ok());
      if (size > 0) wal_path = DbPath() + "/" + child;
    }
  }
  ASSERT_FALSE(wal_path.empty());
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(wal_path, &contents).ok());
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0xff);
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(contents, wal_path, /*sync=*/false)
                  .ok());

  Options paranoid = DbOptions();
  paranoid.paranoid_checks = true;
  std::unique_ptr<DB> db;
  EXPECT_FALSE(DB::Open(paranoid, DbPath(), &db).ok());
  // Lenient mode recovers the prefix before the damage instead.
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
}

TEST_F(FaultInjectionTest, DegradedTrassSearchIsFlaggedPartial) {
  core::TrassOptions options;
  options.shards = 4;
  options.scan_threads = 2;
  options.degraded_scans = true;
  options.db_options.env = &env_;
  std::unique_ptr<core::TrassStore> store;
  ASSERT_TRUE(
      core::TrassStore::Open(options, dir_.path() + "/trass", &store).ok());
  for (const auto& t : trass::testing::RandomDataset(77, 60)) {
    ASSERT_TRUE(store->Put(t).ok());
  }
  ASSERT_TRUE(store->Flush().ok());

  // One region's tables become unreadable; queries must degrade to the
  // other shards and say so instead of failing.
  for (FaultOp op : {FaultOp::kOpenRead, FaultOp::kRead}) {
    FaultPoint fault;
    fault.op = op;
    fault.permanent = true;
    fault.path_substring = "region-1";
    env_.InjectFault(fault);
  }
  std::vector<uint64_t> ids;
  core::QueryMetrics metrics;
  const geo::Mbr everywhere(0.0, 0.0, 1.0, 1.0);
  ASSERT_TRUE(store->RangeQuery(everywhere, &ids, &metrics).ok());
  EXPECT_TRUE(metrics.partial);
  EXPECT_GE(metrics.skipped_regions, 1u);
  EXPECT_FALSE(ids.empty());  // healthy shards still answer
  EXPECT_LT(ids.size(), 60u);

  env_.ClearFaults();
  ids.clear();
  ASSERT_TRUE(store->RangeQuery(everywhere, &ids, &metrics).ok());
  EXPECT_FALSE(metrics.partial);
  EXPECT_EQ(ids.size(), 60u);
}

}  // namespace
}  // namespace kv
}  // namespace trass
