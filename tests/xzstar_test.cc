#include "index/xzstar.h"

#include <gtest/gtest.h>

#include "geo/point.h"
#include "util/random.h"

namespace trass {
namespace index {
namespace {

TEST(PositionCodeTest, TenFeasibleMasks) {
  int feasible = 0;
  for (unsigned mask = 0; mask < 16; ++mask) {
    if (PositionCodeFromMask(mask) != 0) ++feasible;
  }
  EXPECT_EQ(feasible, 10);
}

TEST(PositionCodeTest, MaskCodeRoundTrip) {
  for (int code = 1; code <= 10; ++code) {
    EXPECT_EQ(PositionCodeFromMask(MaskFromPositionCode(code)), code);
  }
}

TEST(PositionCodeTest, FeasibleMasksSatisfyCornerConstraints) {
  // Every feasible mask must intersect {a,c} (leftmost point) and {a,b}
  // (bottommost point); infeasible masks must violate one of them.
  for (unsigned mask = 1; mask < 16; ++mask) {
    const bool feasible = PositionCodeFromMask(mask) != 0;
    const bool constraint =
        (mask & 0b0101) != 0 && (mask & 0b0011) != 0;  // (a|c) and (a|b)
    EXPECT_EQ(feasible, constraint) << "mask=" << mask;
  }
}

TEST(PositionCodeTest, PaperIoReductionTable) {
  // Section IV-B: pruning quad X kills the listed fraction of the 10
  // codes. This pins the code<->combination mapping to the paper's.
  auto codes_containing = [](unsigned quads) {
    int count = 0;
    for (int code = 1; code <= 10; ++code) {
      if (MaskFromPositionCode(code) & quads) ++count;
    }
    return count;
  };
  EXPECT_EQ(codes_containing(1u << kQuadA), 8);   // 80%
  EXPECT_EQ(codes_containing(1u << kQuadB), 6);   // 60%
  EXPECT_EQ(codes_containing(1u << kQuadC), 6);   // 60%
  EXPECT_EQ(codes_containing(1u << kQuadD), 5);   // 50%
  // Pairs.
  EXPECT_EQ(codes_containing(0b0011), 10);  // ab: 100%
  EXPECT_EQ(codes_containing(0b0101), 10);  // ac: 100%
  EXPECT_EQ(codes_containing(0b1001), 9);   // ad: 90%
  EXPECT_EQ(codes_containing(0b0110), 8);   // bc: 80%
  EXPECT_EQ(codes_containing(0b1010), 8);   // bd: 80%
  EXPECT_EQ(codes_containing(0b1100), 8);   // cd: 80%
  // Triples.
  EXPECT_EQ(codes_containing(0b0111), 10);  // abc
  EXPECT_EQ(codes_containing(0b1011), 10);  // abd
  EXPECT_EQ(codes_containing(0b1101), 10);  // acd
  EXPECT_EQ(codes_containing(0b1110), 9);   // bcd: 90%
}

TEST(PositionCodeTest, AverageIoReductionIs836Percent) {
  // The paper's headline: averaged over the 14 quad combinations, 83.6%.
  auto reduction = [](unsigned quads) {
    int count = 0;
    for (int code = 1; code <= 10; ++code) {
      if (MaskFromPositionCode(code) & quads) ++count;
    }
    return count * 10.0;  // percent
  };
  double total = 0.0;
  int cases = 0;
  for (unsigned quads = 1; quads < 15; ++quads) {  // all 1-3 quad subsets
    total += reduction(quads);
    ++cases;
  }
  EXPECT_EQ(cases, 14);
  EXPECT_NEAR(total / cases, 83.57, 0.05);
}

TEST(XzStarTest, NumIndexSpacesLemma4) {
  XzStar xz(2);
  EXPECT_EQ(xz.NumIndexSpaces(2), 10);        // 13*4^0 - 3
  EXPECT_EQ(xz.NumIndexSpaces(1), 49);        // 13*4^1 - 3
  XzStar xz16(16);
  EXPECT_EQ(xz16.NumIndexSpaces(16), 10);
  EXPECT_EQ(xz16.NumIndexSpaces(1), 13ll * (1ll << 30) - 3);
}

TEST(XzStarTest, PaperWorkedExamples) {
  // Section IV-C with max resolution 2: V('03', 2) = 40, V('03', 7) = 45,
  // and the DFS anchors "'0' spans 0..8, '00' spans 9..18".
  XzStar xz(2);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("0"), 1}), 0);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("0"), 9}), 8);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("00"), 1}), 9);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("00"), 10}), 18);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("03"), 2}), 40);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("03"), 7}), 45);
  // The paper's prose says "'33' from 196 to 205", but that contradicts
  // its own Lemma 4: the four top-level subtrees hold 4 * N_is(1) = 196
  // index spaces total (values 0..195), so the last element '33' spans
  // 186..195 (see DESIGN.md errata).
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("33"), 1}), 186);
  EXPECT_EQ(xz.Encode({QuadSeq::FromString("33"), 10}), 195);
  EXPECT_EQ(xz.TotalIndexSpaces(), 196 + 10);  // + the root bucket
}

TEST(XzStarTest, EncodeDecodeBijectiveSmall) {
  // Exhaustive bijection check at r=3.
  XzStar xz(3);
  const int64_t total = xz.TotalIndexSpaces();
  for (int64_t value = 0; value < total; ++value) {
    const XzStar::IndexSpace space = xz.Decode(value);
    ASSERT_EQ(xz.Encode(space), value) << value;
  }
}

TEST(XzStarTest, EncodeDecodeBijectiveRandomAtFullResolution) {
  XzStar xz(16);
  Random rnd(51);
  for (int iter = 0; iter < 20000; ++iter) {
    const int64_t value =
        static_cast<int64_t>(rnd.Uniform(xz.TotalIndexSpaces()));
    ASSERT_EQ(xz.Encode(xz.Decode(value)), value);
  }
}

TEST(XzStarTest, EncodePreservesLexicographicOrder) {
  // "The lexicographical order of quadrant sequences and position codes
  // corresponds to the less-equal order of index values."
  XzStar xz(6);
  Random rnd(53);
  auto random_space = [&]() {
    XzStar::IndexSpace space;
    const int l = 1 + static_cast<int>(rnd.Uniform(6));
    for (int i = 0; i < l; ++i) {
      space.seq = space.seq.Child(static_cast<int>(rnd.Uniform(4)));
    }
    const int max_pos = l == 6 ? 10 : 9;
    space.pos = 1 + static_cast<int>(rnd.Uniform(max_pos));
    return space;
  };
  auto lex_key = [](const XzStar::IndexSpace& space) {
    // String key: digits then a raw position byte. The position byte
    // (1..10) sorts below every digit character, which makes an element's
    // own codes precede its children's — exactly the DFS value order.
    std::string key = space.seq.ToString();
    key.push_back(static_cast<char>(space.pos));
    return key;
  };
  for (int iter = 0; iter < 5000; ++iter) {
    const XzStar::IndexSpace a = random_space();
    const XzStar::IndexSpace b = random_space();
    const std::string ka = lex_key(a);
    const std::string kb = lex_key(b);
    if (ka == kb) continue;
    ASSERT_EQ(ka < kb, xz.Encode(a) < xz.Encode(b))
        << ka << " vs " << kb;
  }
}

TEST(XzStarTest, IndexCoversTrajectoryAndOccupiesClaimedQuads) {
  // Property: the element covers every point, and every sub-quad of the
  // position code contains at least one point (Lemma 10's precondition)
  // while no point lies outside the claimed quads (Lemma 11's).
  XzStar xz(16);
  Random rnd(57);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<geo::Point> points;
    const double cx = rnd.NextDouble() * 0.9;
    const double cy = rnd.NextDouble() * 0.9;
    const double spread = rnd.NextDouble() * rnd.NextDouble() * 0.1;
    const int n = 2 + static_cast<int>(rnd.Uniform(20));
    for (int i = 0; i < n; ++i) {
      points.push_back(geo::Point{
          std::min(cx + rnd.NextDouble() * spread, 1.0),
          std::min(cy + rnd.NextDouble() * spread, 1.0)});
    }
    const XzStar::IndexSpace space = xz.Index(points);
    ASSERT_GE(space.pos, 1);
    ASSERT_LE(space.pos, 10);
    const auto rects = XzStar::IndexSpaceRects(space.seq, space.pos);
    // Each claimed quad holds >= 1 point.
    for (const geo::Mbr& rect : rects) {
      bool occupied = false;
      for (const geo::Point& p : points) {
        if (rect.Distance(p) < 1e-12) {
          occupied = true;
          break;
        }
      }
      ASSERT_TRUE(occupied);
    }
    // Every point is inside the union of claimed quads.
    for (const geo::Point& p : points) {
      double nearest = 1e9;
      for (const geo::Mbr& rect : rects) {
        nearest = std::min(nearest, rect.Distance(p));
      }
      ASSERT_LT(nearest, 1e-9);
    }
  }
}

TEST(XzStarTest, Code10OnlyAtMaxResolutionOrRoot) {
  XzStar xz(10);
  Random rnd(59);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<geo::Point> points;
    const double cx = rnd.NextDouble() * 0.9;
    const double cy = rnd.NextDouble() * 0.9;
    const double spread = rnd.NextDouble() * 0.2;
    for (int i = 0; i < 5; ++i) {
      points.push_back(geo::Point{std::min(cx + rnd.NextDouble() * spread, 1.0),
                                  std::min(cy + rnd.NextDouble() * spread, 1.0)});
    }
    const XzStar::IndexSpace space = xz.Index(points);
    if (space.pos == 10) {
      EXPECT_TRUE(space.seq.length() == 10 || space.seq.length() == 0);
    }
  }
}

TEST(XzStarTest, HugeTrajectoryStaysEncodable) {
  // Inside the unit square even a diagonal-spanning trajectory fits a
  // level-1 enlarged element ([0,1]^2 is the element of cell '0').
  XzStar xz(16);
  const std::vector<geo::Point> points = {{0.01, 0.01}, {0.99, 0.99}};
  const XzStar::IndexSpace space = xz.Index(points);
  EXPECT_EQ(space.seq.length(), 1);
  const int64_t value = xz.Encode(space);
  EXPECT_EQ(xz.Decode(value), space);
  EXPECT_LT(value, xz.TotalIndexSpaces());
}

TEST(XzStarTest, OutOfSquareTrajectoryLandsInRootBucket) {
  // Slightly unnormalized input (outside [0,1]^2) falls back to the root
  // overflow element instead of failing.
  XzStar xz(16);
  const std::vector<geo::Point> points = {{-0.1, -0.1}, {1.05, 1.05}};
  const XzStar::IndexSpace space = xz.Index(points);
  EXPECT_EQ(space.seq.length(), 0);
  const int64_t value = xz.Encode(space);
  EXPECT_EQ(xz.Decode(value), space);
  EXPECT_LT(value, xz.TotalIndexSpaces());
}

TEST(XzStarTest, SubQuadGeometry) {
  const QuadSeq seq = QuadSeq::FromString("0");  // cell [0,0.5)^2
  const geo::Mbr a = XzStar::SubQuadBounds(seq, kQuadA);
  const geo::Mbr b = XzStar::SubQuadBounds(seq, kQuadB);
  const geo::Mbr c = XzStar::SubQuadBounds(seq, kQuadC);
  const geo::Mbr d = XzStar::SubQuadBounds(seq, kQuadD);
  EXPECT_DOUBLE_EQ(a.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(a.max_x(), 0.5);
  EXPECT_DOUBLE_EQ(b.min_x(), 0.5);
  EXPECT_DOUBLE_EQ(b.max_x(), 1.0);
  EXPECT_DOUBLE_EQ(b.min_y(), 0.0);
  EXPECT_DOUBLE_EQ(c.min_y(), 0.5);
  EXPECT_DOUBLE_EQ(d.min_x(), 0.5);
  EXPECT_DOUBLE_EQ(d.min_y(), 0.5);
}

TEST(XzStarTest, ValuesWithinDeclaredRange) {
  XzStar xz(16);
  Random rnd(61);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<geo::Point> points;
    const double cx = rnd.NextDouble();
    const double cy = rnd.NextDouble();
    for (int i = 0; i < 3; ++i) {
      points.push_back(
          geo::Point{std::clamp(cx + rnd.NextGaussian() * 0.01, 0.0, 1.0),
                     std::clamp(cy + rnd.NextGaussian() * 0.01, 0.0, 1.0)});
    }
    const int64_t value = xz.Encode(xz.Index(points));
    ASSERT_GE(value, 0);
    ASSERT_LT(value, xz.TotalIndexSpaces());
  }
}

}  // namespace
}  // namespace index
}  // namespace trass
