// BoundedQueue: ticket assignment, backpressure (shed vs. wait), the
// group-commit gather (linger/max_items), close semantics, and a
// multi-producer stress run checking that every ticket is delivered
// exactly once and in order.

#include "util/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace trass {
namespace {

TEST(BoundedQueueTest, TicketsAreSequentialFromOne) {
  BoundedQueue<int> q(8);
  for (uint64_t i = 1; i <= 5; ++i) {
    uint64_t ticket = 0;
    ASSERT_TRUE(q.Push(static_cast<int>(i), 0, &ticket).ok());
    EXPECT_EQ(ticket, i);
  }
  EXPECT_EQ(q.accepted(), 5u);
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(BoundedQueueTest, FullQueueShedsImmediatelyWithZeroWait) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1, 0).ok());
  ASSERT_TRUE(q.Push(2, 0).ok());
  const Status s = q.Push(3, 0);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_EQ(q.accepted(), 2u);  // sheds consume no tickets
}

TEST(BoundedQueueTest, WaitingPushSucceedsWhenConsumerDrains) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1, 0).ok());
  std::thread consumer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<int> out;
    q.PopBatch(&out, 1, 0.0);
  });
  uint64_t ticket = 0;
  const Status s = q.Push(2, /*max_wait_ms=*/5000, &ticket);
  consumer.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(ticket, 2u);
}

TEST(BoundedQueueTest, WaitingPushShedsWhenNobodyDrains) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1, 0).ok());
  const Status s = q.Push(2, /*max_wait_ms=*/10);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
}

TEST(BoundedQueueTest, PopBatchHonorsMaxItems) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i, 0).ok());
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4, 0.0), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);  // FIFO
  EXPECT_EQ(q.depth(), 6u);
}

TEST(BoundedQueueTest, PopBatchLingersForConcurrentProducers) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.Push(1, 0).ok());
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(2, 0);
  });
  std::vector<int> out;
  // A generous linger lets the second item coalesce into the batch.
  const size_t n = q.PopBatch(&out, 2, 2000.0);
  producer.join();
  EXPECT_EQ(n, 2u);
}

TEST(BoundedQueueTest, CloseRejectsPushesButDrainsBacklog) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1, 0).ok());
  ASSERT_TRUE(q.Push(2, 0).ok());
  q.Close();
  EXPECT_TRUE(q.Push(3, 0).IsCancelled());
  EXPECT_TRUE(q.Push(4, 1000).IsCancelled());  // no wait after close
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 10, 50.0), 2u);
  EXPECT_EQ(q.PopBatch(&out, 10, 50.0), 0u);  // closed and drained
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(8);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.PopBatch(&out, 1, 0.0), 0u);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, MultiProducerTicketsAreUniqueAndNothingIsLost) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(32);
  std::vector<std::vector<uint64_t>> tickets(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t ticket = 0;
        Status s;
        do {
          s = q.Push(p, 50, &ticket);
        } while (s.IsBusy());
        EXPECT_TRUE(s.ok()) << s.ToString();
        tickets[p].push_back(ticket);
      }
    });
  }
  size_t popped = 0;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (true) {
      batch.clear();
      if (q.PopBatch(&batch, 64, 0.5) == 0) break;
      popped += batch.size();
    }
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(popped, static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.accepted(), popped);
  EXPECT_LE(q.high_water(), q.capacity());
  // Tickets: per-producer strictly increasing, globally a permutation of
  // 1..N (no duplicates, no gaps).
  std::vector<bool> seen(popped + 1, false);
  for (const auto& per : tickets) {
    for (size_t i = 0; i < per.size(); ++i) {
      if (i > 0) EXPECT_GT(per[i], per[i - 1]);
      ASSERT_GE(per[i], 1u);
      ASSERT_LE(per[i], popped);
      ASSERT_FALSE(seen[per[i]]);
      seen[per[i]] = true;
    }
  }
}

}  // namespace
}  // namespace trass
