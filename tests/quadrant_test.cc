#include "index/quadrant.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace trass {
namespace index {
namespace {

TEST(QuadSeqTest, RootProperties) {
  QuadSeq root;
  EXPECT_EQ(root.length(), 0);
  EXPECT_EQ(root.CellWidth(), 1.0);
  EXPECT_EQ(root.CellOrigin(), (geo::Point{0.0, 0.0}));
  const geo::Mbr element = root.ElementBounds();
  EXPECT_DOUBLE_EQ(element.max_x(), 2.0);
}

TEST(QuadSeqTest, ChildDigitsAndGeometry) {
  QuadSeq root;
  // Reversed-Z: 0 = lower-left, 1 = lower-right, 2 = upper-left,
  // 3 = upper-right.
  EXPECT_EQ(root.Child(0).CellOrigin(), (geo::Point{0.0, 0.0}));
  EXPECT_EQ(root.Child(1).CellOrigin(), (geo::Point{0.5, 0.0}));
  EXPECT_EQ(root.Child(2).CellOrigin(), (geo::Point{0.0, 0.5}));
  EXPECT_EQ(root.Child(3).CellOrigin(), (geo::Point{0.5, 0.5}));
  EXPECT_EQ(root.Child(3).CellWidth(), 0.5);
  EXPECT_EQ(root.Child(3).Child(0).CellWidth(), 0.25);
}

TEST(QuadSeqTest, StringRoundTrip) {
  const QuadSeq seq = QuadSeq::FromString("0312");
  EXPECT_EQ(seq.length(), 4);
  EXPECT_EQ(seq.ToString(), "0312");
  EXPECT_EQ(seq.digit(0), 0);
  EXPECT_EQ(seq.digit(1), 3);
  EXPECT_EQ(seq.digit(2), 1);
  EXPECT_EQ(seq.digit(3), 2);
}

TEST(QuadSeqTest, ElementBoundsDoubleTowardUpperRight) {
  const QuadSeq seq = QuadSeq::FromString("03");
  // '0' -> cell [0,0.5)^2; '3' -> cell [0.25,0.5)^2 at width 0.25.
  const geo::Mbr element = seq.ElementBounds();
  EXPECT_DOUBLE_EQ(element.min_x(), 0.25);
  EXPECT_DOUBLE_EQ(element.min_y(), 0.25);
  EXPECT_DOUBLE_EQ(element.max_x(), 0.75);
  EXPECT_DOUBLE_EQ(element.max_y(), 0.75);
}

TEST(SequenceForTest, PointMbrGoesToMaxResolution) {
  const geo::Mbr point_mbr(0.3, 0.3, 0.3, 0.3);
  EXPECT_EQ(SequenceFor(point_mbr, 16).length(), 16);
}

TEST(SequenceForTest, HugeMbrGoesToRoot) {
  // Inside the unit square a level-1 enlarged element always covers, so
  // the root only appears for boxes that spill out — exactly what
  // Ext(Q.MBR, eps) does for large eps.
  const geo::Mbr inside(0.01, 0.01, 0.99, 0.99);
  EXPECT_EQ(SequenceFor(inside, 16).length(), 1);
  const geo::Mbr spilling = inside.Expanded(0.3);
  EXPECT_EQ(SequenceFor(spilling, 16).length(), 0);
}

TEST(SequenceForTest, ElementAlwaysCoversMbr) {
  Random rnd(31);
  for (int iter = 0; iter < 5000; ++iter) {
    const double x1 = rnd.NextDouble() * 0.9;
    const double y1 = rnd.NextDouble() * 0.9;
    const double w = rnd.NextDouble() * rnd.NextDouble() * (0.999 - x1);
    const double h = rnd.NextDouble() * rnd.NextDouble() * (0.999 - y1);
    const geo::Mbr mbr(x1, y1, x1 + w, y1 + h);
    const QuadSeq seq = SequenceFor(mbr, 16);
    const geo::Mbr element = seq.ElementBounds();
    ASSERT_TRUE(element.Contains(mbr))
        << "seq=" << seq.ToString() << " mbr=(" << x1 << "," << y1 << ","
        << x1 + w << "," << y1 + h << ")";
  }
}

TEST(SequenceForTest, SequenceAddressesLowerLeftCorner) {
  Random rnd(33);
  for (int iter = 0; iter < 2000; ++iter) {
    const double x1 = rnd.NextDouble() * 0.9;
    const double y1 = rnd.NextDouble() * 0.9;
    const geo::Mbr mbr(x1, y1, x1 + 0.01, y1 + 0.01);
    const QuadSeq seq = SequenceFor(mbr, 16);
    const geo::Point origin = seq.CellOrigin();
    const double w = seq.CellWidth();
    ASSERT_GE(x1, origin.x);
    ASSERT_LT(x1, origin.x + w);
    ASSERT_GE(y1, origin.y);
    ASSERT_LT(y1, origin.y + w);
  }
}

TEST(SequenceForTest, SmallestCoveringElement) {
  // The chosen element is the smallest: one level deeper must fail to
  // cover (unless already at max resolution).
  Random rnd(37);
  for (int iter = 0; iter < 2000; ++iter) {
    const double x1 = rnd.NextDouble() * 0.9;
    const double y1 = rnd.NextDouble() * 0.9;
    const double w = rnd.NextDouble() * 0.2;
    const double h = rnd.NextDouble() * 0.2;
    const geo::Mbr mbr(x1, y1, std::min(x1 + w, 1.0), std::min(y1 + h, 1.0));
    const int max_res = 16;
    const QuadSeq seq = SequenceFor(mbr, max_res);
    if (seq.length() >= max_res) continue;
    // Construct the element one level deeper anchored at the lower-left
    // corner's cell; it must not cover the MBR.
    QuadSeq deeper;
    double cx = 0, cy = 0, cw = 1.0;
    for (int i = 0; i < seq.length() + 1; ++i) {
      cw *= 0.5;
      int q = 0;
      if (mbr.min_x() >= cx + cw) {
        q |= 1;
        cx += cw;
      }
      if (mbr.min_y() >= cy + cw) {
        q |= 2;
        cy += cw;
      }
      deeper = deeper.Child(q);
    }
    ASSERT_FALSE(deeper.ElementBounds().Contains(mbr))
        << "seq=" << seq.ToString() << " not minimal";
  }
}

}  // namespace
}  // namespace index
}  // namespace trass
