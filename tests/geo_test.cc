#include <gtest/gtest.h>

#include "geo/mbr.h"
#include "geo/point.h"
#include "util/random.h"

namespace trass {
namespace geo {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, PointSegmentDistance) {
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  // Foot beyond the endpoints clamps to the endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 4}, {-1, 0}, {0, 0}), 5.0);
  // Degenerate segment behaves like a point.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(PointTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {0, 1}, {1, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Touching at an endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(PointTest, SegmentSegmentDistance) {
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {1, 1}, {0, 1}, {1, 0}),
                   0.0);
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {1, 0}, {0, 1}, {1, 1}),
                   1.0);
  // Parallel, offset diagonally.
  EXPECT_NEAR(SegmentSegmentDistance({0, 0}, {1, 0}, {2, 1}, {3, 1}),
              std::sqrt(2.0), 1e-12);
}

TEST(MbrTest, EmptyAndExtend) {
  Mbr m;
  EXPECT_TRUE(m.IsEmpty());
  m.Extend(Point{0.5, 0.25});
  EXPECT_FALSE(m.IsEmpty());
  EXPECT_EQ(m.width(), 0.0);
  m.Extend(Point{0.75, 0.5});
  EXPECT_DOUBLE_EQ(m.width(), 0.25);
  EXPECT_DOUBLE_EQ(m.height(), 0.25);
}

TEST(MbrTest, OfPoints) {
  const Mbr m = Mbr::Of({{0.1, 0.9}, {0.4, 0.2}, {0.3, 0.5}});
  EXPECT_DOUBLE_EQ(m.min_x(), 0.1);
  EXPECT_DOUBLE_EQ(m.max_x(), 0.4);
  EXPECT_DOUBLE_EQ(m.min_y(), 0.2);
  EXPECT_DOUBLE_EQ(m.max_y(), 0.9);
}

TEST(MbrTest, ContainsAndIntersects) {
  const Mbr a(0, 0, 1, 1);
  const Mbr b(0.5, 0.5, 1.5, 1.5);
  const Mbr c(2, 2, 3, 3);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(a.Contains(Point{1.5, 0.5}));
  EXPECT_TRUE(a.Contains(Mbr(0.2, 0.2, 0.8, 0.8)));
  EXPECT_FALSE(a.Contains(b));
  // Touching edges intersect.
  EXPECT_TRUE(a.Intersects(Mbr(1, 0, 2, 1)));
}

TEST(MbrTest, Expanded) {
  const Mbr m = Mbr(0.4, 0.4, 0.6, 0.6).Expanded(0.1);
  EXPECT_DOUBLE_EQ(m.min_x(), 0.3);
  EXPECT_DOUBLE_EQ(m.max_y(), 0.7);
}

TEST(MbrTest, PointDistance) {
  const Mbr m(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(m.Distance(Point{0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance(Point{2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(m.Distance(Point{4, 5}), 5.0);
}

TEST(MbrTest, RectDistance) {
  const Mbr a(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(a.Distance(Mbr(0.5, 0.5, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.Distance(Mbr(2, 0, 3, 1)), 1.0);
  EXPECT_DOUBLE_EQ(a.Distance(Mbr(4, 5, 6, 7)), 5.0);
}

TEST(MbrTest, SegmentDistance) {
  const Mbr m(0, 0, 1, 1);
  // Segment crossing the box.
  EXPECT_DOUBLE_EQ(m.SegmentDistance({-1, 0.5}, {2, 0.5}), 0.0);
  // Endpoint inside.
  EXPECT_DOUBLE_EQ(m.SegmentDistance({0.5, 0.5}, {5, 5}), 0.0);
  // Fully outside.
  EXPECT_DOUBLE_EQ(m.SegmentDistance({2, 0}, {2, 1}), 1.0);
  EXPECT_NEAR(m.SegmentDistance({2, 2}, {3, 2}), std::sqrt(2.0), 1e-12);
}

TEST(MbrTest, SegmentDistanceMatchesSampledMinimum) {
  // Property: rect-segment distance equals the minimum over dense samples
  // of the segment of the point-rect distance.
  Random rnd(99);
  for (int iter = 0; iter < 200; ++iter) {
    const double x0 = rnd.NextDouble(), y0 = rnd.NextDouble();
    const Mbr m(x0, y0, x0 + rnd.NextDouble() * 0.5,
                y0 + rnd.NextDouble() * 0.5);
    const Point a{rnd.NextDouble() * 2 - 0.5, rnd.NextDouble() * 2 - 0.5};
    const Point b{rnd.NextDouble() * 2 - 0.5, rnd.NextDouble() * 2 - 0.5};
    const double exact = m.SegmentDistance(a, b);
    double sampled = 1e9;
    for (int s = 0; s <= 200; ++s) {
      const double t = s / 200.0;
      sampled = std::min(
          sampled,
          m.Distance(Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)}));
    }
    ASSERT_LE(exact, sampled + 1e-9);
    ASSERT_GE(exact, sampled - 0.01);  // sampling resolution slack
  }
}

}  // namespace
}  // namespace geo
}  // namespace trass
