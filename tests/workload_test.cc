#include "workload/generator.h"

#include <gtest/gtest.h>

#include "index/xzstar.h"

namespace trass {
namespace workload {
namespace {

TEST(WorkloadTest, TDriveLikeBasics) {
  const auto data = TDriveLike(200, 42);
  ASSERT_EQ(data.size(), 200u);
  for (const auto& t : data) {
    ASSERT_GE(t.points.size(), 30u);
    ASSERT_LE(t.points.size(), 300u);
    for (const auto& p : t.points) {
      ASSERT_GE(p.x, 0.0);
      ASSERT_LE(p.x, 1.0);
      ASSERT_GE(p.y, 0.0);
      ASSERT_LE(p.y, 1.0);
    }
  }
  // Ids are unique and consecutive from 1.
  EXPECT_EQ(data.front().id, 1u);
  EXPECT_EQ(data.back().id, 200u);
}

TEST(WorkloadTest, Deterministic) {
  const auto a = TDriveLike(50, 7);
  const auto b = TDriveLike(50, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (size_t j = 0; j < a[i].points.size(); ++j) {
      ASSERT_EQ(a[i].points[j], b[i].points[j]);
    }
  }
  const auto c = TDriveLike(50, 8);
  EXPECT_FALSE(a[0].points[1] == c[0].points[1]);
}

TEST(WorkloadTest, StationaryTrajectoriesLandAtMaxResolution) {
  // Figure 12(a)'s peak: waiting taxis index at the maximum resolution.
  const auto data = TDriveLike(400, 9);
  index::XzStar xz(16);
  int at_max = 0;
  for (const auto& t : data) {
    if (xz.Index(t.points).seq.length() == 16) ++at_max;
  }
  // ~15% stationary plus short trips.
  EXPECT_GT(at_max, 400 / 20);
}

TEST(WorkloadTest, ResolutionsSpreadAcrossRange) {
  const auto data = TDriveLike(500, 10);
  index::XzStar xz(16);
  std::vector<int> histogram(17, 0);
  for (const auto& t : data) {
    ++histogram[xz.Index(t.points).seq.length()];
  }
  // Driving ranges 0.5-78 km should cover roughly resolutions 10..16.
  int in_band = 0;
  for (int r = 9; r <= 16; ++r) in_band += histogram[r];
  EXPECT_GT(in_band, 400);
}

TEST(WorkloadTest, LorryLikeSpansCountryScale) {
  const auto data = LorryLike(200, 11);
  geo::Mbr all;
  for (const auto& t : data) {
    all.Extend(geo::Mbr::Of(t.points));
  }
  // Country-scale extent: far wider than a city.
  EXPECT_GT(all.width(), 0.03);
}

TEST(WorkloadTest, ScaleMultipliesAndRenumbers) {
  const auto base = TDriveLike(50, 12);
  const auto scaled = Scale(base, 3, 0.001, 13);
  ASSERT_EQ(scaled.size(), 150u);
  for (size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].id, i + 1);
  }
  // First copy is exact.
  for (size_t j = 0; j < base[0].points.size(); ++j) {
    EXPECT_EQ(scaled[0].points[j], base[0].points[j]);
  }
}

TEST(WorkloadTest, SampleIndicesDistinctAndInRange) {
  const auto indices = SampleIndices(1000, 100, 14);
  ASSERT_EQ(indices.size(), 100u);
  std::vector<bool> seen(1000, false);
  for (size_t idx : indices) {
    ASSERT_LT(idx, 1000u);
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(WorkloadTest, SampleMoreThanAvailableClamps) {
  EXPECT_EQ(SampleIndices(10, 100, 15).size(), 10u);
}

TEST(WorkloadTest, StreamArrivalsMonotoneAndComplete) {
  auto data = TDriveLike(300, 16);
  StreamOptions options;
  options.rate_per_sec = 500.0;
  const auto stream = MakeStream(std::move(data), options, 17);
  ASSERT_EQ(stream.size(), 300u);
  std::vector<bool> seen(301, false);
  double prev = 0.0;
  for (const auto& item : stream) {
    ASSERT_GE(item.arrival_ms, prev);
    prev = item.arrival_ms;
    ASSERT_GE(item.traj.id, 1u);
    ASSERT_LE(item.traj.id, 300u);
    ASSERT_FALSE(seen[item.traj.id]);  // every trajectory exactly once
    seen[item.traj.id] = true;
  }
  // Mean gap should be near 1000/rate = 2 ms (Poisson, loose bounds).
  const double mean_gap = prev / 300.0;
  EXPECT_GT(mean_gap, 0.5);
  EXPECT_LT(mean_gap, 8.0);
}

TEST(WorkloadTest, StreamBurstsCompressArrivals) {
  auto smooth_data = TDriveLike(2000, 18);
  auto bursty_data = smooth_data;
  StreamOptions smooth;
  smooth.rate_per_sec = 1000.0;
  StreamOptions bursty = smooth;
  bursty.burst_fraction = 0.5;
  bursty.burst_multiplier = 20.0;
  const auto a = MakeStream(std::move(smooth_data), smooth, 19);
  const auto b = MakeStream(std::move(bursty_data), bursty, 19);
  // Same trajectory count in less wall-clock: bursts raise the peak rate.
  EXPECT_LT(b.back().arrival_ms, a.back().arrival_ms);
  // Bursts create short gaps far more often than the smooth stream's
  // exponential tail would.
  auto short_gaps = [](const std::vector<TimedTrajectory>& s) {
    size_t n = 0;
    for (size_t i = 1; i < s.size(); ++i) {
      if (s[i].arrival_ms - s[i - 1].arrival_ms < 0.1) ++n;
    }
    return n;
  };
  EXPECT_GT(short_gaps(b), short_gaps(a));
}

TEST(WorkloadTest, StreamDeterministic) {
  const auto a = MakeStream(TDriveLike(100, 20), StreamOptions{}, 21);
  const auto b = MakeStream(TDriveLike(100, 20), StreamOptions{}, 21);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].traj.id, b[i].traj.id);
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
  }
}

}  // namespace
}  // namespace workload
}  // namespace trass
