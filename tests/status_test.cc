#include "util/status.h"

#include <gtest/gtest.h>

namespace trass {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_EQ(Status::NotFound("missing key").ToString(),
            "NotFound: missing key");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::NotFound("x").ok());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.ToString(), s.ToString());
  // Copy-assign over an error.
  Status ok;
  copy = ok;
  EXPECT_TRUE(copy.ok());
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::IoError("disk gone");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIoError());
}

TEST(StatusTest, SelfAssignment) {
  Status s = Status::NotFound("x");
  s = *&s;
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  const Status s = Status::IoError("read failed").WithContext("region 3");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.ToString(), "IoError: region 3: read failed");
  // Chaining stacks outermost-first.
  EXPECT_EQ(s.WithContext("scan").ToString(),
            "IoError: scan: region 3: read failed");
}

TEST(StatusTest, WithContextOnOkIsOk) {
  EXPECT_TRUE(Status().WithContext("ignored").ok());
}

TEST(StatusTest, QueryStopFactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_FALSE(Status::TimedOut("x").ok());
  EXPECT_FALSE(Status::Cancelled("x").ok());
  EXPECT_FALSE(Status::Busy("x").ok());
  EXPECT_EQ(Status::TimedOut("deadline expired").ToString(),
            "TimedOut: deadline expired");
  EXPECT_EQ(Status::Cancelled("caller gave up").ToString(),
            "Cancelled: caller gave up");
  EXPECT_EQ(Status::Busy("queue full").ToString(), "Busy: queue full");
}

TEST(StatusTest, QueryStopCodesAreDistinct) {
  EXPECT_FALSE(Status::TimedOut("x").IsCancelled());
  EXPECT_FALSE(Status::TimedOut("x").IsBusy());
  EXPECT_FALSE(Status::Cancelled("x").IsTimedOut());
  EXPECT_FALSE(Status::Busy("x").IsTimedOut());
  EXPECT_FALSE(Status::TimedOut("x").IsIoError());
}

TEST(StatusTest, IsQueryStopCoversExactlyTheStopCodes) {
  EXPECT_TRUE(Status::TimedOut("x").IsQueryStop());
  EXPECT_TRUE(Status::Cancelled("x").IsQueryStop());
  EXPECT_TRUE(Status::Busy("x").IsQueryStop());
  EXPECT_FALSE(Status().IsQueryStop());
  EXPECT_FALSE(Status::IoError("x").IsQueryStop());
  EXPECT_FALSE(Status::Corruption("x").IsQueryStop());
  EXPECT_FALSE(Status::NotFound("x").IsQueryStop());
}

TEST(StatusTest, WithContextPreservesQueryStopCodes) {
  const Status timed = Status::TimedOut("deadline").WithContext("scan");
  EXPECT_TRUE(timed.IsTimedOut());
  EXPECT_TRUE(timed.IsQueryStop());
  EXPECT_EQ(timed.ToString(), "TimedOut: scan: deadline");
  EXPECT_TRUE(Status::Cancelled("x").WithContext("refine").IsCancelled());
  EXPECT_TRUE(Status::Busy("x").WithContext("admit").IsBusy());
}

}  // namespace
}  // namespace trass
