#include "util/status.h"

#include <gtest/gtest.h>

namespace trass {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_EQ(Status::NotFound("missing key").ToString(),
            "NotFound: missing key");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::NotFound("x").ok());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.ToString(), s.ToString());
  // Copy-assign over an error.
  Status ok;
  copy = ok;
  EXPECT_TRUE(copy.ok());
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::IoError("disk gone");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIoError());
}

TEST(StatusTest, SelfAssignment) {
  Status s = Status::NotFound("x");
  s = *&s;
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  const Status s = Status::IoError("read failed").WithContext("region 3");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.ToString(), "IoError: region 3: read failed");
  // Chaining stacks outermost-first.
  EXPECT_EQ(s.WithContext("scan").ToString(),
            "IoError: scan: region 3: read failed");
}

TEST(StatusTest, WithContextOnOkIsOk) {
  EXPECT_TRUE(Status().WithContext("ignored").ok());
}

}  // namespace
}  // namespace trass
