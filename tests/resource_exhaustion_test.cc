// Resource-exhaustion matrix: disk-full (ENOSPC, short writes, byte
// budgets) and transient write errors against the DB background-error
// model, the space watermarks, and the store-level degradation surface.
// The invariants under test, from DESIGN.md §13: an injected ENOSPC or
// write error never loses a watermark-visible row and never wedges the
// process (queries keep working read-only), and Resume() — manual or
// automatic — restores write availability once space frees.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/trass_store.h"
#include "kv/db.h"
#include "kv/fault_injection_env.h"
#include "test_util.h"
#include <chrono>
#include <thread>

#include "util/random.h"

namespace trass {
namespace kv {
namespace {

class ResourceExhaustionTest : public ::testing::Test {
 protected:
  ResourceExhaustionTest()
      : dir_("resource_exhaustion"), env_(Env::Default()) {}

  std::string DbPath() const { return dir_.path() + "/db"; }

  Options DbOptions() {
    Options options;
    options.env = &env_;
    return options;
  }

  static std::string KeyOf(int i) { return "key-" + std::to_string(i); }
  static std::string ValueOf(int i) {
    return std::string(40 + i % 50, 'a' + i % 26);
  }

  // Every key in [0, acked) must be present with its exact value.
  static void ExpectRows(DB* db, int acked) {
    for (int i = 0; i < acked; ++i) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(i), &value).ok()) << KeyOf(i);
      EXPECT_EQ(value, ValueOf(i)) << KeyOf(i);
    }
  }

  trass::testing::ScratchDir dir_;
  FaultInjectionEnv env_;
};

TEST_F(ResourceExhaustionTest, ShortWriteMidWalWedgesReadOnlyThenResumes) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 40; ++i) {  // acknowledged before the disk fills
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }

  // ENOSPC mid-WAL-append, realistic shape: a prefix of the record lands
  // on disk (torn tail), then the append fails.
  FaultPoint fault;
  fault.op = FaultOp::kAppend;
  fault.kind = FaultKind::kShortWrite;
  fault.permanent = true;
  fault.path_substring = ".log";
  env_.InjectFault(fault);

  Status s = db->Put(WriteOptions(), KeyOf(1000), ValueOf(0));
  ASSERT_TRUE(s.IsNoSpace()) << s.ToString();
  // The failure is sticky: the DB is read-only and says so.
  EXPECT_TRUE(db->read_only());
  EXPECT_FALSE(db->background_error().ok());
  EXPECT_GE(db->io_stats().background_errors.load(), 1u);
  s = db->Put(WriteOptions(), KeyOf(1001), ValueOf(1));
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();  // fails fast, same error
  EXPECT_TRUE(db->Flush().IsNoSpace());

  // Reads and scans keep working off the installed state.
  ExpectRows(db.get(), 40);
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), KeyOf(1000), &value).IsNotFound());

  // Resume switches to a fresh WAL and flushes, none of which appends
  // to a ".log" file, so it succeeds even while the fault persists —
  // but the very next write hits the bad disk and re-wedges the DB.
  // (RocksDB has the same shape: Resume clears the error, the retried
  // write re-discovers it.)
  EXPECT_TRUE(db->Resume().ok());
  EXPECT_FALSE(db->read_only());
  EXPECT_TRUE(db->Put(WriteOptions(), KeyOf(1002), ValueOf(2)).IsNoSpace());
  EXPECT_TRUE(db->read_only());
  // Once space frees, Resume restores writability for good.
  env_.ClearFaults();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_FALSE(db->read_only());
  EXPECT_TRUE(db->background_error().ok());
  EXPECT_GE(db->io_stats().resume_attempts.load(), 2u);
  for (int i = 40; i < 60; ++i) {
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }

  // The torn WAL record must not resurface: reopen and re-verify.
  db.reset();
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  ExpectRows(db.get(), 60);
  EXPECT_TRUE(db->Get(ReadOptions(), KeyOf(1000), &value).IsNotFound());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(ResourceExhaustionTest, AckedRowsSurviveWedgePlusCrash) {
  // The compound failure: the disk fills, the DB wedges read-only, and
  // the process then dies. Every write acked (sync=true) before the
  // wedge must survive — the torn tail and the abandoned memtable rows
  // were never acked.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db->Put(synced, KeyOf(i), ValueOf(i)).ok());
  }
  FaultPoint fault;
  fault.op = FaultOp::kAppend;
  fault.kind = FaultKind::kShortWrite;
  fault.permanent = true;
  fault.path_substring = ".log";
  env_.InjectFault(fault);
  EXPECT_TRUE(db->Put(synced, KeyOf(1000), ValueOf(0)).IsNoSpace());
  EXPECT_TRUE(db->read_only());

  // Crash: nothing unsynced survives, the wedged DB's destructor must
  // not (and cannot) flush anything.
  env_.SetFilesystemActive(false);
  db.reset();
  env_.ClearFaults();
  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  env_.SetFilesystemActive(true);

  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  ExpectRows(db.get(), 30);
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), KeyOf(1000), &value).IsNotFound());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(ResourceExhaustionTest, EnospcMidFlushCleansPartialOutputAndResumes) {
  Options options = DbOptions();
  options.write_buffer_size = 1 << 20;  // flush only when asked
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
  }

  // The flush's SST build hits ENOSPC.
  FaultPoint fault;
  fault.op = FaultOp::kAppend;
  fault.kind = FaultKind::kNoSpace;
  fault.permanent = true;
  fault.path_substring = ".sst";
  env_.InjectFault(fault);
  EXPECT_TRUE(db->Flush().IsNoSpace());
  EXPECT_TRUE(db->read_only());
  // The partially built table was deleted — a failed flush must not
  // strand garbage on an already-full disk.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren(DbPath(), &children).ok());
  for (const std::string& name : children) {
    EXPECT_EQ(name.find(".sst"), std::string::npos) << name;
  }
  // The memtable rows are still served.
  ExpectRows(db.get(), 200);

  env_.ClearFaults();
  ASSERT_TRUE(db->Resume().ok());  // Resume itself flushes the memtable
  EXPECT_FALSE(db->read_only());
  ExpectRows(db.get(), 200);
  db.reset();
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  ExpectRows(db.get(), 200);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(ResourceExhaustionTest, EnospcMidCompactionKeepsDataAndResumes) {
  Options options = DbOptions();
  options.write_buffer_size = 4 << 10;  // small: many L0 files
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Compaction outputs hit ENOSPC after a couple of appends; inputs must
  // stay installed (the old version is still the truth) and partial
  // outputs must be reclaimed.
  FaultPoint fault;
  fault.op = FaultOp::kAppend;
  fault.kind = FaultKind::kNoSpace;
  fault.countdown = 2;
  fault.permanent = true;
  fault.path_substring = ".sst";
  env_.InjectFault(fault);
  EXPECT_FALSE(db->CompactRange().ok());
  EXPECT_TRUE(db->read_only());
  ExpectRows(db.get(), 400);  // reads unaffected

  env_.ClearFaults();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_FALSE(db->read_only());
  ASSERT_TRUE(db->CompactRange().ok());
  ExpectRows(db.get(), 400);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(ResourceExhaustionTest, DiskBudgetEnforcesAndFreeingSpaceHeals) {
  env_.SetDiskSpaceBudget(64 << 10);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  int accepted = 0;
  Status s;
  for (int i = 0; i < 100000; ++i) {
    s = db->Put(WriteOptions(), KeyOf(i), ValueOf(i));
    if (!s.ok()) break;
    ++accepted;
  }
  ASSERT_TRUE(s.IsNoSpace()) << s.ToString();  // the budget ran out
  ASSERT_GT(accepted, 0);
  EXPECT_TRUE(db->read_only());
  EXPECT_LE(env_.disk_space_used(), 64u << 10);
  ExpectRows(db.get(), accepted);  // everything accepted is readable

  // "Free disk space" (grow the budget), resume, and keep writing.
  env_.SetDiskSpaceBudget(1 << 20);
  ASSERT_TRUE(db->Resume().ok());
  for (int i = accepted; i < accepted + 50; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
  }
  ExpectRows(db.get(), accepted + 50);
}

TEST_F(ResourceExhaustionTest, HardWatermarkShedsCleanlyBeforeTheWal) {
  env_.SetDiskSpaceBudget(256 << 10);
  Options options = DbOptions();
  options.hard_space_watermark_bytes = 200 << 10;  // shed early
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  int accepted = 0;
  Status s;
  for (int i = 0; i < 100000; ++i) {
    s = db->Put(WriteOptions(), KeyOf(i), ValueOf(i));
    if (!s.ok()) break;
    ++accepted;
  }
  ASSERT_TRUE(s.IsNoSpace()) << s.ToString();
  ASSERT_GT(accepted, 0);
  // The watermark shed before the WAL was touched: no background error,
  // the DB is NOT wedged, and no torn record exists.
  EXPECT_FALSE(db->read_only());
  EXPECT_GE(db->io_stats().write_stalls.load(), 1u);
  EXPECT_EQ(db->io_stats().background_errors.load(), 0u);
  ExpectRows(db.get(), accepted);

  // Freeing space heals the shed automatically — no Resume needed.
  env_.SetDiskSpaceBudget(FaultInjectionEnv::kUnlimitedBudget);
  ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(accepted), ValueOf(accepted))
                  .ok());
  ExpectRows(db.get(), accepted + 1);
}

TEST_F(ResourceExhaustionTest, SoftWatermarkThrottlesButAcceptsWrites) {
  env_.SetDiskSpaceBudget(1 << 20);
  Options options = DbOptions();
  options.soft_space_watermark_bytes = 1 << 20;  // always below soft
  options.write_stall_ms = 1;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i)).ok());
  }
  EXPECT_GE(db->io_stats().write_stalls.load(), 20u);
  EXPECT_GE(db->io_stats().stall_ms.load(), 20u);
  EXPECT_FALSE(db->read_only());
  ExpectRows(db.get(), 20);
}

TEST_F(ResourceExhaustionTest, ResumeIsIdempotentWhenHealthy) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(0), ValueOf(0)).ok());
  EXPECT_TRUE(db->Resume().ok());
  EXPECT_TRUE(db->Resume().ok());
  EXPECT_FALSE(db->read_only());
  EXPECT_EQ(db->io_stats().resume_attempts.load(), 2u);
  ExpectRows(db.get(), 1);
}

TEST_F(ResourceExhaustionTest, TransientSyncErrorWedgesUntilResume) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(DbOptions(), DbPath(), &db).ok());
  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db->Put(synced, KeyOf(0), ValueOf(0)).ok());

  // One transient fsync failure. Modern fsync semantics: after a failed
  // fsync the state of the written range is unknowable, so even a
  // transient error must wedge the DB until Resume re-establishes a
  // known-good WAL.
  FaultPoint fault;
  fault.op = FaultOp::kSync;
  fault.path_substring = ".log";
  env_.InjectFault(fault);
  EXPECT_FALSE(db->Put(synced, KeyOf(1), ValueOf(1)).ok());
  EXPECT_TRUE(db->read_only());
  // The fault was transient — but the error must NOT clear by itself.
  EXPECT_FALSE(db->Put(synced, KeyOf(2), ValueOf(2)).ok());
  ASSERT_TRUE(db->Resume().ok());
  ASSERT_TRUE(db->Put(synced, KeyOf(1), ValueOf(1)).ok());
  ExpectRows(db.get(), 2);
}

}  // namespace
}  // namespace kv

namespace core {
namespace {

geo::Mbr Everywhere() { return geo::Mbr(0.0, 0.0, 1.0, 1.0); }

TEST(StoreExhaustionTest, WatermarkVisibleRowsSurviveDiskFullTeardown) {
  trass::testing::ScratchDir dir("store_diskfull");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 2;
  options.db_options.env = &env;
  const std::string path = dir.path() + "/store";

  std::vector<uint64_t> visible_before;
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
    const auto data = trass::testing::RandomDataset(47, 300);
    // A tight budget: ingest runs the disk out mid-stream.
    env.SetDiskSpaceBudget(96 << 10);
    uint64_t last_ticket = 0;
    for (const auto& t : data) {
      Status s = store->SubmitAsync(t, 100, &last_ticket);
      if (s.IsBusy()) break;  // degraded-write shed: the store wedged
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    // Resolve everything accepted (commits may fail; tickets must not
    // hang) — the wedged store must not stall the drain.
    ASSERT_TRUE(store->DrainIngest(30000).ok());
    ASSERT_TRUE(store->RangeQuery(Everywhere(), &visible_before).ok());
    // Teardown with the store possibly still wedged: must not hang
    // (bounded by the ctest timeout) and must not corrupt anything.
  }

  // "Replace the disk": unlimited space, reopen, and re-query.
  env.SetDiskSpaceBudget(kv::FaultInjectionEnv::kUnlimitedBudget);
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
  std::vector<uint64_t> visible_after;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &visible_after).ok());
  std::set<uint64_t> after(visible_after.begin(), visible_after.end());
  for (uint64_t id : visible_before) {
    EXPECT_TRUE(after.count(id)) << "watermark-visible row lost: " << id;
  }
  EXPECT_TRUE(store->region_store()->VerifyIntegrity().ok());
}

TEST(StoreExhaustionTest, ShedsIngestWhileWedgedAndAutoResumes) {
  trass::testing::ScratchDir dir("store_auto_resume");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 2;
  options.auto_resume_interval_ms = 20;
  options.db_options.env = &env;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = trass::testing::RandomDataset(53, 60);
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put(data[i]).ok());
  }

  // The disk "fills": every WAL append reports ENOSPC.
  kv::FaultPoint fault;
  fault.op = kv::FaultOp::kAppend;
  fault.kind = kv::FaultKind::kNoSpace;
  fault.permanent = true;
  fault.path_substring = ".log";
  env.InjectFault(fault);

  // A synchronous write wedges its region...
  EXPECT_FALSE(store->Put(data[20]).ok());
  HealthReport health = store->Health();
  EXPECT_GT(health.read_only_replicas, 0u);
  EXPECT_TRUE(health.writes_degraded);
  EXPECT_FALSE(health.first_background_error.empty());
  // ...SubmitAsync sheds with Busy instead of queueing doomed tickets...
  EXPECT_TRUE(store->SubmitAsync(data[21], 0).IsBusy());
  // ...and queries still work, flagged with the degraded gauge.
  std::vector<uint64_t> ids;
  QueryMetrics metrics;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids, &metrics).ok());
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_GT(metrics.read_only_replicas, 0u);

  // Space frees; the auto-resume prober restores writability by itself.
  env.ClearFaults();
  bool resumed = false;
  for (int i = 0; i < 500; ++i) {  // up to ~10 s
    if (store->Health().read_only_replicas == 0) {
      resumed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(resumed) << "auto-resume never cleared the wedge";
  uint64_t ticket = 0;
  ASSERT_TRUE(store->SubmitAsync(data[22], 1000, &ticket).ok());
  ASSERT_TRUE(store->WaitForWatermark(ticket, 10000).ok());
  ids.clear();
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), 21u);
  EXPECT_GT(store->region_store()->TotalIoStats().resume_attempts, 0u);
}

TEST(StoreExhaustionTest, ReadOnlyReplicaServesReadsAndScrubHealsIt) {
  trass::testing::ScratchDir dir("store_ro_replica");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 2;
  options.replication_factor = 2;
  options.ingest_min_ack_replicas = 1;
  options.db_options.env = &env;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = trass::testing::RandomDataset(59, 80);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(store->Put(data[i]).ok());
  }

  // Replica 1 of every region runs out of disk; with min_acks = 1 the
  // primaries keep accepting.
  kv::FaultPoint fault;
  fault.op = kv::FaultOp::kAppend;
  fault.kind = kv::FaultKind::kNoSpace;
  fault.permanent = true;
  fault.path_substring = "-replica-1";
  env.InjectFault(fault);

  uint64_t last_ticket = 0;
  for (size_t i = 40; i < 80; ++i) {
    ASSERT_TRUE(store->SubmitAsync(data[i], 1000, &last_ticket).ok());
  }
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());
  EXPECT_EQ(store->ingest_stats().commit_failures, 0u);

  // The wedged replicas are visible in health, demoted for writes but
  // still eligible to serve reads.
  HealthReport health = store->Health();
  EXPECT_GT(health.read_only_replicas, 0u);
  bool saw_read_only = false;
  for (const auto& region : health.regions) {
    for (const auto& replica : region.replicas) {
      if (replica.read_only) {
        saw_read_only = true;
        EXPECT_FALSE(replica.background_error.empty());
      }
    }
  }
  EXPECT_TRUE(saw_read_only);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), 80u);

  // Space frees: Resume restores writability, the scrub heals the rows
  // the wedged replicas missed, and the store converges.
  env.ClearFaults();
  ASSERT_TRUE(store->Resume().ok());
  EXPECT_EQ(store->Health().read_only_replicas, 0u);
  kv::ScrubReport report;
  ASSERT_TRUE(store->ScrubReplicas(&report).ok());
  EXPECT_GT(report.replicas_rebuilt, 0u);
  kv::ScrubReport clean;
  ASSERT_TRUE(store->ScrubReplicas(&clean).ok());
  EXPECT_EQ(clean.divergent_replicas, 0u);
  ids.clear();
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), 80u);
}

// Seeded chaos matrix (the opt-in `ci.sh chaos` stage runs this under
// ASan across several seeds). One trial: run ingest against a randomized
// fault schedule — ENOSPC kinds, budgets, fault points, optional crash —
// then verify the three invariants: no watermark-visible row lost, the
// process never wedged (queries answered throughout), and Resume
// restored write availability. A failing schedule is reproducible from
// the seed printed by SCOPED_TRACE.
TEST(ResourceExhaustionChaos, SeededFaultMatrix) {
  uint64_t base_seed = 20240808;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 3;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));
    trass::testing::ScratchDir dir("chaos_" + std::to_string(seed));
    kv::FaultInjectionEnv env(kv::Env::Default());
    TrassOptions options;
    options.shards = 2;
    options.db_options.env = &env;
    options.db_options.write_buffer_size = 8 << 10;  // force flushes
    const std::string path = dir.path() + "/store";

    std::vector<uint64_t> visible;
    {
      std::unique_ptr<TrassStore> store;
      ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());

      // Randomized fault schedule.
      const kv::FaultKind kinds[] = {kv::FaultKind::kNoSpace,
                                     kv::FaultKind::kShortWrite,
                                     kv::FaultKind::kIoError};
      const char* targets[] = {".log", ".sst", ""};
      kv::FaultPoint fault;
      fault.op = kv::FaultOp::kAppend;
      fault.kind = kinds[rnd.Uniform(3)];
      fault.path_substring = targets[rnd.Uniform(3)];
      fault.countdown = static_cast<int>(rnd.Uniform(40));
      fault.permanent = rnd.Bernoulli(0.5);
      env.InjectFault(fault);
      if (rnd.Bernoulli(0.5)) {
        env.SetDiskSpaceBudget((64 << 10) + rnd.Uniform(128 << 10));
      }

      const auto data =
          trass::testing::RandomDataset(static_cast<uint32_t>(seed), 150);
      for (const auto& t : data) {
        Status s = store->SubmitAsync(t, 50);
        if (!s.ok()) {
          ASSERT_TRUE(s.IsBusy()) << s.ToString();  // clean shed only
        }
      }
      ASSERT_TRUE(store->DrainIngest(60000).ok());

      // Invariant: queries keep working, wedged or not.
      ASSERT_TRUE(store->RangeQuery(Everywhere(), &visible).ok());

      // Invariant: with the fault gone and space freed, Resume restores
      // write availability.
      env.ClearFaults();
      env.SetDiskSpaceBudget(kv::FaultInjectionEnv::kUnlimitedBudget);
      ASSERT_TRUE(store->Resume().ok());
      ASSERT_EQ(store->Health().read_only_replicas, 0u);
      ASSERT_TRUE(store->Put(trass::testing::RandomTrajectory(
                                 &rnd, 1000000 + trial, 10))
                      .ok());
      visible.push_back(1000000 + static_cast<uint64_t>(trial));

      if (rnd.Bernoulli(0.5)) {
        // Optional crash before teardown: synced state must survive.
        env.SetFilesystemActive(false);
        store.reset();
        env.ClearFaults();
        ASSERT_TRUE(env.DropUnsyncedData().ok());
        env.SetFilesystemActive(true);
        // A crash may lose unsynced rows; the visibility check below
        // only applies to what a post-crash query reports.
        std::unique_ptr<TrassStore> reopened;
        ASSERT_TRUE(TrassStore::Open(options, path, &reopened).ok());
        ASSERT_TRUE(reopened->RangeQuery(Everywhere(), &visible).ok());
      }
    }

    // Invariant: every row visible at teardown is still there afterward.
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
    std::vector<uint64_t> after_ids;
    ASSERT_TRUE(store->RangeQuery(Everywhere(), &after_ids).ok());
    std::set<uint64_t> after(after_ids.begin(), after_ids.end());
    for (uint64_t id : visible) {
      ASSERT_TRUE(after.count(id)) << "row lost across teardown: " << id;
    }
    ASSERT_TRUE(store->region_store()->VerifyIntegrity().ok());
  }
}

// Seeded crash while the background compaction thread is mid-merge: the
// schedule ingests synced rows fast enough to keep the compactor busy,
// sometimes wounds a random .sst append first (wedging flush or
// compaction), then severs the filesystem at a random write and drops
// everything unsynced — the moral equivalent of pulling the plug with a
// half-written compaction output on disk. Every synced-acked row must
// survive the reopen, the recovered table set must verify clean (a torn
// output is never referenced), and the revived DB must compact and
// accept writes again. Rerun one schedule with TRASS_CHAOS_SEED=<seed>.
TEST(ResourceExhaustionChaos, CrashDuringBackgroundCompaction) {
  uint64_t base_seed = 20240808;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 3;
  auto key_of = [](int i) { return "key-" + std::to_string(i); };
  auto value_of = [](int i) {
    return std::string(150 + i % 80, 'a' + i % 26);
  };
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));
    trass::testing::ScratchDir dir("bgc_chaos_" + std::to_string(seed));
    kv::FaultInjectionEnv env(kv::Env::Default());
    kv::Options options;
    options.env = &env;
    options.write_buffer_size = 8 << 10;  // flush constantly
    options.block_size = 1 << 10;
    options.target_file_size = 8 << 10;
    options.max_bytes_for_level_base = 32 << 10;

    const std::string path = dir.path() + "/db";
    if (rnd.Bernoulli(0.3)) {
      kv::FaultPoint fault;
      fault.op = kv::FaultOp::kAppend;
      fault.kind = kv::FaultKind::kIoError;
      fault.path_substring = ".sst";
      fault.countdown = static_cast<int>(rnd.Uniform(30));
      env.InjectFault(fault);
    }

    int acked = 0;
    {
      std::unique_ptr<kv::DB> db;
      ASSERT_TRUE(kv::DB::Open(options, path, &db).ok());
      kv::WriteOptions synced;
      synced.sync = true;
      const int crash_at = 50 + static_cast<int>(rnd.Uniform(400));
      for (int i = 0; i < crash_at; ++i) {
        Status s = db->Put(synced, key_of(i), value_of(i));
        if (!s.ok()) break;  // wedged by the injected fault: crash here
        acked = i + 1;
      }
      env.SetFilesystemActive(false);
      db.reset();  // the compaction thread may be mid-merge right now
    }
    env.ClearFaults();
    ASSERT_TRUE(env.DropUnsyncedData().ok());
    env.SetFilesystemActive(true);

    std::unique_ptr<kv::DB> db;
    ASSERT_TRUE(kv::DB::Open(options, path, &db).ok());
    for (int i = 0; i < acked; ++i) {
      std::string value;
      ASSERT_TRUE(db->Get(kv::ReadOptions(), key_of(i), &value).ok())
          << "synced row lost across crash: " << key_of(i);
      ASSERT_EQ(value, value_of(i)) << key_of(i);
    }
    ASSERT_TRUE(db->VerifyIntegrity().ok());
    // The revived DB is fully operational: new writes land, compactions
    // run to completion, and the result still verifies.
    kv::WriteOptions synced;
    synced.sync = true;
    for (int i = acked; i < acked + 60; ++i) {
      ASSERT_TRUE(db->Put(synced, key_of(i), value_of(i)).ok());
    }
    db->WaitForCompactions();
    ASSERT_TRUE(db->background_error().ok());
    ASSERT_TRUE(db->VerifyIntegrity().ok());
  }
}

}  // namespace
}  // namespace core
}  // namespace trass
