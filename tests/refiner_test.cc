#include "core/refiner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "baselines/brute_force.h"
#include "core/dp_features.h"
#include "core/row_codec.h"
#include "core/similarity.h"
#include "core/trass_store.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace trass {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const Measure kMeasures[] = {Measure::kFrechet, Measure::kHausdorff,
                             Measure::kDtw};

struct Flat {
  std::vector<double> x, y;
  geo::Mbr mbr;

  explicit Flat(const std::vector<geo::Point>& pts) {
    for (const geo::Point& p : pts) {
      x.push_back(p.x);
      y.push_back(p.y);
      mbr.Extend(p);
    }
  }
  FlatView view() const { return FlatView{x.data(), y.data(), x.size()}; }
};

// ---- kernel parity: flat SoA kernels vs the scalar reference ----

TEST(KernelParityTest, RandomLengths) {
  Random rnd(11);
  const int lengths[] = {1, 2, 3, 4, 7, 17, 33, 64, 65, 100, 128, 199, 200};
  DpScratch scratch;
  for (int n : lengths) {
    for (int m : {1, 2, 63, 64, 65, 200}) {
      const auto a = trass::testing::RandomTrajectory(&rnd, 1, n).points;
      const auto b = trass::testing::RandomTrajectory(&rnd, 2, m).points;
      Flat fa(a), fb(b);
      EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b),
                       DiscreteFrechetFlat(fa.view(), fb.view(), &scratch))
          << "frechet n=" << n << " m=" << m;
      EXPECT_DOUBLE_EQ(Hausdorff(a, b), HausdorffFlat(fa.view(), fb.view()))
          << "hausdorff n=" << n << " m=" << m;
      EXPECT_DOUBLE_EQ(Dtw(a, b), DtwFlat(fa.view(), fb.view(), &scratch))
          << "dtw n=" << n << " m=" << m;
      for (Measure measure : kMeasures) {
        EXPECT_DOUBLE_EQ(Similarity(measure, a, b),
                         SimilarityFlat(measure, fa.view(), fb.view(),
                                        &scratch));
      }
    }
  }
}

TEST(KernelParityTest, DegenerateInputs) {
  DpScratch scratch;
  const std::vector<std::vector<geo::Point>> cases = {
      {{0.5, 0.5}},                                  // single point
      {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}},          // all points equal
      {{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}},          // collinear
      {{0.9, 0.1}, {0.1, 0.9}},                      // two points
      {{0.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}},  // corners
  };
  for (const auto& a : cases) {
    for (const auto& b : cases) {
      Flat fa(a), fb(b);
      EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b),
                       DiscreteFrechetFlat(fa.view(), fb.view(), &scratch));
      EXPECT_DOUBLE_EQ(Hausdorff(a, b), HausdorffFlat(fa.view(), fb.view()));
      EXPECT_DOUBLE_EQ(Dtw(a, b), DtwFlat(fa.view(), fb.view(), &scratch));
    }
  }
}

// Scratch reuse across calls of different sizes must not leak state.
TEST(KernelParityTest, ScratchReuseAcrossSizes) {
  Random rnd(13);
  DpScratch scratch;
  std::vector<std::vector<geo::Point>> trajs;
  for (int n : {200, 3, 150, 1, 80}) {
    trajs.push_back(trass::testing::RandomTrajectory(&rnd, n, n).points);
  }
  for (size_t i = 0; i < trajs.size(); ++i) {
    for (size_t j = 0; j < trajs.size(); ++j) {
      Flat fa(trajs[i]), fb(trajs[j]);
      EXPECT_DOUBLE_EQ(
          DiscreteFrechet(trajs[i], trajs[j]),
          DiscreteFrechetFlat(fa.view(), fb.view(), &scratch));
      EXPECT_DOUBLE_EQ(Dtw(trajs[i], trajs[j]),
                       DtwFlat(fa.view(), fb.view(), &scratch));
    }
  }
}

// ---- within-distance variants: decision + exact distance in one DP ----

TEST(WithinDistanceTest, MatchesExactAroundTheBoundary) {
  Random rnd(17);
  DpScratch scratch;
  for (int iter = 0; iter < 40; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 30).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 45).points;
    Flat fa(a), fb(b);
    for (Measure measure : kMeasures) {
      const double exact = Similarity(measure, a, b);
      // Slightly above / below the exact distance have forced outcomes;
      // exactly at it the decision is made in squared space (as the
      // pre-existing Within kernels do), so the requirement there is
      // agreement with the decision-only kernel, not a fixed answer.
      const struct {
        double eps;
        int within;  // 1 = yes, 0 = no, -1 = must match SimilarityWithin
      } probes[] = {{exact * (1 + 1e-9) + 1e-300, 1},
                    {exact, -1},
                    {exact * (1 - 1e-9) - 1e-300, 0}};
      for (const auto& probe : probes) {
        double d_vec = -1.0, d_flat = -1.0;
        const bool vec =
            SimilarityWithinDistance(measure, a, b, probe.eps, &d_vec);
        const bool flat = SimilarityWithinDistanceFlat(
            measure, fa.view(), fb.view(), probe.eps, &d_flat, &scratch);
        const bool want = probe.within == -1
                              ? SimilarityWithin(measure, a, b, probe.eps)
                              : probe.within == 1;
        EXPECT_EQ(vec, want) << MeasureName(measure) << " eps=" << probe.eps
                             << " exact=" << exact;
        EXPECT_EQ(flat, want);
        if (want) {
          EXPECT_DOUBLE_EQ(d_vec, exact);
          EXPECT_DOUBLE_EQ(d_flat, exact);
        } else {
          // *distance untouched on a miss.
          EXPECT_EQ(d_vec, -1.0);
          EXPECT_EQ(d_flat, -1.0);
        }
      }
    }
  }
}

TEST(WithinDistanceTest, InfiniteEpsIsUnconditionalExact) {
  Random rnd(19);
  DpScratch scratch;
  for (int iter = 0; iter < 20; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 25).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 40).points;
    Flat fa(a), fb(b);
    for (Measure measure : kMeasures) {
      double d = -1.0;
      ASSERT_TRUE(SimilarityWithinDistanceFlat(measure, fa.view(), fb.view(),
                                               kInf, &d, &scratch));
      EXPECT_DOUBLE_EQ(d, Similarity(measure, a, b));
    }
  }
}

// ---- lower-bound cascade soundness ----

TEST(LowerBoundTest, NeverExceedsExactDistance) {
  Random rnd(23);
  for (int iter = 0; iter < 60; ++iter) {
    const auto qpts =
        trass::testing::RandomTrajectory(&rnd, 1, 5 + iter % 40).points;
    // Mix of nearby and far-away candidates so some cascade levels fire.
    const double lo = (iter % 2 == 0) ? 0.2 : 0.6;
    const auto tpts =
        trass::testing::RandomTrajectory(&rnd, 2, 3 + iter % 50, lo, lo + 0.3)
            .points;
    const RefineQuery query = RefineQuery::Make(qpts);
    Flat ft(tpts);
    for (Measure measure : kMeasures) {
      const double exact = Similarity(measure, qpts, tpts);
      const double lb = RefineLowerBound(measure, query, ft.view(), ft.mbr);
      EXPECT_LE(lb, exact + 1e-12)
          << MeasureName(measure) << " iter=" << iter;
      // The engine-level soundness invariant: the cascade never rejects
      // a candidate the within-DP would accept (both decide in squared
      // space, so this holds exactly even at the ulp boundary).
      for (double bound : {0.0, lb * 0.5, lb, exact, exact * 2 + 0.01}) {
        if (LowerBoundExceeds(measure, query, ft.view(), ft.mbr, bound)) {
          EXPECT_FALSE(SimilarityWithin(measure, qpts, tpts, bound))
              << MeasureName(measure) << " bound=" << bound;
        }
      }
      // Nothing exceeds an infinite bound.
      EXPECT_FALSE(LowerBoundExceeds(measure, query, ft.view(), ft.mbr, kInf));
    }
  }
}

// ---- the engine itself: serial == parallel, both == brute force ----

class RefinerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = trass::testing::RandomDataset(31, 120);
    for (const Trajectory& t : data_) {
      rows_.push_back(kv::Row{
          EncodeRowKey(0, 0, t.id),
          EncodeRowValue(t.points, DpFeatures::ComputeCapped(t.points, 0.01)),
      });
    }
    query_points_ = data_[7].points;
    query_ = RefineQuery::Make(query_points_);
  }

  std::vector<SearchResult> BruteThreshold(double eps, Measure measure) {
    std::vector<SearchResult> out;
    for (const Trajectory& t : data_) {
      const double d = Similarity(measure, query_points_, t.points);
      if (d <= eps) out.push_back(SearchResult{t.id, d});
    }
    return out;  // already in row order
  }

  std::vector<Trajectory> data_;
  std::vector<kv::Row> rows_;
  std::vector<geo::Point> query_points_;
  RefineQuery query_;
};

TEST_F(RefinerEngineTest, ThresholdSerialEqualsParallelEqualsBrute) {
  ThreadPool pool(4);
  Refiner serial(nullptr, 1);
  Refiner parallel(&pool, 4);
  QueryContext control;
  for (Measure measure : kMeasures) {
    for (double eps : {0.0, 0.02, 0.1, 0.5}) {
      const auto expected = BruteThreshold(eps, measure);
      std::vector<SearchResult> got_serial, got_parallel;
      RefineStats s1, s2;
      ASSERT_TRUE(serial
                      .RefineThreshold(query_, eps, measure, rows_, &control,
                                       &got_serial, &s1)
                      .ok());
      ASSERT_TRUE(parallel
                      .RefineThreshold(query_, eps, measure, rows_, &control,
                                       &got_parallel, &s2)
                      .ok());
      ASSERT_EQ(got_serial.size(), expected.size());
      ASSERT_EQ(got_parallel.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got_serial[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got_serial[i].distance, expected[i].distance);
        EXPECT_EQ(got_parallel[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got_parallel[i].distance, expected[i].distance);
      }
      // Every candidate was decoded and either rejected by the cascade
      // or ran the DP — and the split is thread-count independent only
      // for threshold refinement (fixed bound).
      EXPECT_EQ(s1.refined, rows_.size());
      EXPECT_EQ(s2.refined, rows_.size());
      EXPECT_EQ(s1.lb_rejected + s1.dp_runs, s1.refined);
      EXPECT_EQ(s2.lb_rejected + s2.dp_runs, s2.refined);
      EXPECT_EQ(s1.lb_rejected, s2.lb_rejected);
    }
  }
}

TEST_F(RefinerEngineTest, TopKSerialEqualsParallelEqualsBrute) {
  ThreadPool pool(4);
  Refiner serial(nullptr, 1);
  Refiner parallel(&pool, 4);
  QueryContext control;
  for (Measure measure : kMeasures) {
    for (size_t k : {1u, 5u, 17u, 500u}) {
      auto expected = BruteThreshold(kInf, measure);
      std::sort(expected.begin(), expected.end());
      if (expected.size() > k) expected.resize(k);

      for (const Refiner* engine : {&serial, &parallel}) {
        TopKRefiner topk(engine, &query_, k, measure);
        RefineStats stats;
        // Feed in two batches to exercise the bound carrying over.
        std::vector<kv::Row> batch1(rows_.begin(), rows_.begin() + 40);
        std::vector<kv::Row> batch2(rows_.begin() + 40, rows_.end());
        ASSERT_TRUE(topk.RefineBatch(batch1, &control, &stats).ok());
        const double bound_after_first = topk.CurrentBound();
        ASSERT_TRUE(topk.RefineBatch(batch2, &control, &stats).ok());
        // The bound never rises.
        EXPECT_LE(topk.CurrentBound(), bound_after_first);
        std::vector<SearchResult> got;
        topk.Drain(&got);
        ASSERT_EQ(got.size(), expected.size())
            << MeasureName(measure) << " k=" << k;
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(got[i].id, expected[i].id);
          EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
        }
        EXPECT_EQ(stats.refined, rows_.size());
      }
    }
  }
}

TEST_F(RefinerEngineTest, TopKZeroKeepsNothing) {
  Refiner serial(nullptr, 1);
  QueryContext control;
  TopKRefiner topk(&serial, &query_, 0, Measure::kFrechet);
  RefineStats stats;
  ASSERT_TRUE(topk.RefineBatch(rows_, &control, &stats).ok());
  EXPECT_EQ(topk.size(), 0u);
}

TEST_F(RefinerEngineTest, PreCancelledStopsBeforeAnyWork) {
  ThreadPool pool(4);
  Refiner parallel(&pool, 4);
  std::atomic<bool> cancel{true};
  QueryContext control;
  control.SetCancelFlag(&cancel);
  std::vector<SearchResult> out;
  RefineStats stats;
  Status s = parallel.RefineThreshold(query_, 1.0, Measure::kFrechet, rows_,
                                      &control, &out, &stats);
  EXPECT_TRUE(s.IsCancelled());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.refined, 0u);
}

TEST_F(RefinerEngineTest, CorruptRowSurfacesDecodeError) {
  Refiner serial(nullptr, 1);
  QueryContext control;
  auto rows = rows_;
  rows[3].value = "garbage";
  std::vector<SearchResult> out;
  RefineStats stats;
  Status s = serial.RefineThreshold(query_, 1.0, Measure::kFrechet, rows,
                                    &control, &out, &stats);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsQueryStop());
}

// ---- store-level determinism and partial-result semantics ----

class RefinerStoreTest : public ::testing::Test {
 protected:
  RefinerStoreTest() : dir_("refiner_store") {}

  static TrassOptions Options(size_t refine_threads) {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.refine_threads = refine_threads;
    options.db_options.write_buffer_size = 256 * 1024;
    return options;
  }

  std::unique_ptr<TrassStore> OpenAndLoad(size_t refine_threads,
                                          const std::string& name,
                                          const std::vector<Trajectory>& data) {
    std::unique_ptr<TrassStore> store;
    const std::string path = dir_.path() + "/" + name;
    kv::Env::Default()->RemoveDirRecursively(path);
    EXPECT_TRUE(TrassStore::Open(Options(refine_threads), path, &store).ok());
    for (const Trajectory& t : data) EXPECT_TRUE(store->Put(t).ok());
    EXPECT_TRUE(store->Flush().ok());
    return store;
  }

  trass::testing::ScratchDir dir_;
};

TEST_F(RefinerStoreTest, SerialAndParallelStoresAnswerIdentically) {
  const auto data = trass::testing::RandomDataset(37, 250);
  auto serial = OpenAndLoad(1, "serial", data);
  auto parallel = OpenAndLoad(4, "parallel", data);
  Random rnd(41);
  for (int iter = 0; iter < 6; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (Measure measure : kMeasures) {
      const double eps = measure == Measure::kDtw ? 0.5 : 0.03;
      std::vector<SearchResult> a, b;
      QueryMetrics ma, mb;
      ASSERT_TRUE(
          serial->ThresholdSearch(query, eps, measure, &a, &ma).ok());
      ASSERT_TRUE(
          parallel->ThresholdSearch(query, eps, measure, &b, &mb).ok());
      ASSERT_EQ(a.size(), b.size()) << MeasureName(measure);
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
      }
      EXPECT_EQ(ma.refine_threads, 1u);
      EXPECT_EQ(mb.refine_threads, 4u);
      EXPECT_EQ(ma.lb_rejected + ma.refine_dp_runs, ma.refined);
      EXPECT_EQ(mb.lb_rejected + mb.refine_dp_runs, mb.refined);

      std::vector<SearchResult> ka, kb;
      ASSERT_TRUE(serial->TopKSearch(query, 10, measure, &ka).ok());
      ASSERT_TRUE(parallel->TopKSearch(query, 10, measure, &kb).ok());
      ASSERT_EQ(ka.size(), kb.size());
      for (size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].id, kb[i].id);
        EXPECT_DOUBLE_EQ(ka[i].distance, kb[i].distance);
      }
    }
  }
}

TEST_F(RefinerStoreTest, MatchesBruteForceWithParallelRefine) {
  const auto data = trass::testing::RandomDataset(43, 200);
  auto store = OpenAndLoad(4, "brute", data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  const auto& query = data[11].points;
  for (Measure measure : kMeasures) {
    std::vector<SearchResult> got, expected;
    const double eps = measure == Measure::kDtw ? 0.8 : 0.05;
    ASSERT_TRUE(store->ThresholdSearch(query, eps, measure, &got).ok());
    ASSERT_TRUE(
        brute.Threshold(query, eps, measure, &expected, nullptr).ok());
    ASSERT_EQ(got.size(), expected.size()) << MeasureName(measure);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }

    ASSERT_TRUE(store->TopKSearch(query, 15, measure, &got).ok());
    ASSERT_TRUE(brute.TopK(query, 15, measure, &expected, nullptr).ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST_F(RefinerStoreTest, CancelDuringParallelRefineHonoursAllowPartial) {
  const auto data = trass::testing::RandomDataset(47, 150);
  auto store = OpenAndLoad(4, "cancel", data);
  const auto& query = data[3].points;

  std::atomic<bool> cancel{true};  // pre-set: stops at the first poll
  QueryOptions qo;
  qo.cancel = &cancel;

  std::vector<SearchResult> results;
  Status s = store->ThresholdSearch(query, 0.05, Measure::kFrechet, &results,
                                    nullptr, qo);
  EXPECT_TRUE(s.IsCancelled());

  qo.allow_partial = true;
  QueryMetrics metrics;
  results.clear();
  ASSERT_TRUE(store
                  ->ThresholdSearch(query, 0.05, Measure::kFrechet, &results,
                                    &metrics, qo)
                  .ok());
  EXPECT_TRUE(metrics.partial);
  EXPECT_TRUE(metrics.cancelled);
  EXPECT_TRUE(results.empty());
}

TEST_F(RefinerStoreTest, DeadlineExpiryYieldsVerifiedSubset) {
  const auto data = trass::testing::RandomDataset(53, 300);
  auto store = OpenAndLoad(4, "deadline", data);
  const auto& query = data[5].points;

  std::vector<SearchResult> full;
  ASSERT_TRUE(
      store->ThresholdSearch(query, 0.05, Measure::kFrechet, &full).ok());
  std::map<uint64_t, double> full_by_id;
  for (const auto& r : full) full_by_id[r.id] = r.distance;

  // Tiny deadlines expire at different points of the pipeline (pruning,
  // scan, mid-refine). Whatever comes back must be a verified subset.
  bool saw_partial = false;
  for (double deadline_ms : {1e-6, 0.05, 0.2, 1.0, 5.0}) {
    QueryOptions qo;
    qo.deadline_ms = deadline_ms;
    qo.allow_partial = true;
    std::vector<SearchResult> results;
    QueryMetrics metrics;
    ASSERT_TRUE(store
                    ->ThresholdSearch(query, 0.05, Measure::kFrechet,
                                      &results, &metrics, qo)
                    .ok());
    if (metrics.partial) {
      saw_partial = true;
      EXPECT_TRUE(metrics.deadline_expired);
    }
    EXPECT_LE(results.size(), full.size());
    for (const auto& r : results) {
      auto it = full_by_id.find(r.id);
      ASSERT_NE(it, full_by_id.end()) << "unverified id " << r.id;
      EXPECT_DOUBLE_EQ(r.distance, it->second);
    }

    // Same contract for top-k: partial results are a subset of the true
    // top-k with exact distances.
    std::vector<SearchResult> topk_full, topk_partial;
    ASSERT_TRUE(
        store->TopKSearch(query, 20, Measure::kFrechet, &topk_full).ok());
    QueryMetrics km;
    ASSERT_TRUE(store
                    ->TopKSearch(query, 20, Measure::kFrechet, &topk_partial,
                                 &km, qo)
                    .ok());
    std::map<uint64_t, double> topk_by_id;
    for (const auto& r : topk_full) topk_by_id[r.id] = r.distance;
    if (!km.partial) {
      EXPECT_EQ(topk_partial.size(), topk_full.size());
      for (const auto& r : topk_partial) {
        auto it = topk_by_id.find(r.id);
        ASSERT_NE(it, topk_by_id.end());
        EXPECT_DOUBLE_EQ(r.distance, it->second);
      }
    }
  }
  (void)saw_partial;  // timing-dependent; subset checks above are the test
}

TEST_F(RefinerStoreTest, RefineThreadsZeroAndOneAreServiceable) {
  const auto data = trass::testing::RandomDataset(59, 60);
  auto store0 = OpenAndLoad(0, "zero", data);
  auto store1 = OpenAndLoad(1, "one", data);
  std::vector<SearchResult> a, b;
  QueryMetrics ma;
  ASSERT_TRUE(store0
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &a, &ma)
                  .ok());
  ASSERT_TRUE(store1
                  ->ThresholdSearch(data[0].points, 0.05, Measure::kFrechet,
                                    &b)
                  .ok());
  EXPECT_EQ(ma.refine_threads, 1u);  // 0 clamps to serial
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

}  // namespace
}  // namespace core
}  // namespace trass
