#include "core/local_filter.h"

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

StoredTrajectory MakeStored(uint64_t id, const std::vector<geo::Point>& points,
                            double tolerance = 0.01) {
  StoredTrajectory t;
  t.id = id;
  t.points = points;
  t.features = DpFeatures::Compute(points, tolerance);
  return t;
}

class LocalFilterTest : public ::testing::Test {
 protected:
  Random rnd_{117};
};

TEST_F(LocalFilterTest, NeverRejectsSimilarPairs) {
  // Soundness across all three measures: a candidate within eps must pass.
  for (int iter = 0; iter < 400; ++iter) {
    const auto q = trass::testing::RandomTrajectory(&rnd_, 1, 25).points;
    const auto t = trass::testing::RandomTrajectory(&rnd_, 2, 25).points;
    const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
    const StoredTrajectory stored = MakeStored(2, t);
    for (Measure measure :
         {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
      const double d = Similarity(measure, q, t);
      // Any eps >= d must keep the candidate.
      for (double eps : {d, d * 1.5, d + 0.01}) {
        ASSERT_TRUE(LocalFilterPass(ctx, stored, eps, measure))
            << MeasureName(measure) << " d=" << d << " eps=" << eps;
      }
    }
  }
}

TEST_F(LocalFilterTest, RejectsObviouslyDissimilar) {
  std::vector<geo::Point> q, t;
  for (int i = 0; i < 10; ++i) {
    q.push_back({0.1 + i * 0.001, 0.1});
    t.push_back({0.9 - i * 0.001, 0.9});
  }
  const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
  const StoredTrajectory stored = MakeStored(2, t);
  EXPECT_FALSE(LocalFilterPass(ctx, stored, 0.01, Measure::kFrechet));
  EXPECT_FALSE(LocalFilterPass(ctx, stored, 0.01, Measure::kHausdorff));
  EXPECT_FALSE(LocalFilterPass(ctx, stored, 0.01, Measure::kDtw));
}

TEST_F(LocalFilterTest, Lemma12OnlyForOrderedMeasures) {
  // Same geometry, reversed direction: endpoints swap, so Fréchet/DTW can
  // reject via Lemma 12 but Hausdorff (orderless) must keep it when the
  // point sets are close.
  std::vector<geo::Point> q, t;
  for (int i = 0; i <= 20; ++i) q.push_back({0.3 + i * 0.01, 0.5});
  t = q;
  std::reverse(t.begin(), t.end());
  const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
  const StoredTrajectory stored = MakeStored(2, t);
  EXPECT_FALSE(LocalFilterPass(ctx, stored, 0.05, Measure::kFrechet));
  EXPECT_TRUE(LocalFilterPass(ctx, stored, 0.05, Measure::kHausdorff));
  EXPECT_EQ(Hausdorff(q, t), 0.0);
}

TEST_F(LocalFilterTest, EmptyCandidateRejected) {
  const auto q = trass::testing::RandomTrajectory(&rnd_, 1, 5).points;
  const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
  StoredTrajectory empty;
  EXPECT_FALSE(LocalFilterPass(ctx, empty, 1.0, Measure::kFrechet));
}

TEST_F(LocalFilterTest, ScanFilterCountsAndDecodes) {
  const auto q = trass::testing::RandomTrajectory(&rnd_, 1, 20).points;
  const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
  LocalScanFilter filter(&ctx, 0.02, Measure::kFrechet);

  // A row that is the query itself (kept).
  const DpFeatures f = DpFeatures::Compute(q, 0.01);
  const std::string key = EncodeRowKey(0, 1, 1);
  const std::string value = EncodeRowValue(q, f);
  EXPECT_TRUE(filter.Keep(key, value));

  // A far-away row (dropped).
  std::vector<geo::Point> far;
  for (const auto& p : q) {
    far.push_back({std::min(p.x + 0.4, 1.0), std::min(p.y + 0.4, 1.0)});
  }
  const std::string far_value =
      EncodeRowValue(far, DpFeatures::Compute(far, 0.01));
  EXPECT_FALSE(filter.Keep(key, far_value));

  // Garbage row (dropped, no crash).
  EXPECT_FALSE(filter.Keep(key, Slice("garbage")));

  EXPECT_EQ(filter.scanned(), 3u);
  EXPECT_EQ(filter.kept(), 1u);
}

TEST_F(LocalFilterTest, FilterRateIsMeaningful) {
  // On random data with a small eps, most dissimilar candidates should be
  // rejected before the exact computation — the filter must actually
  // filter, not just be sound.
  const auto q = trass::testing::RandomTrajectory(&rnd_, 1, 30).points;
  const QueryGeometry ctx = QueryGeometry::Make(q, 0.01);
  int rejected = 0;
  const int total = 300;
  for (int i = 0; i < total; ++i) {
    const auto t = trass::testing::RandomTrajectory(&rnd_, 2, 30).points;
    const StoredTrajectory stored = MakeStored(2, t);
    if (!LocalFilterPass(ctx, stored, 0.002, Measure::kFrechet)) ++rejected;
  }
  EXPECT_GT(rejected, total / 2);
}

}  // namespace
}  // namespace core
}  // namespace trass
