// Remaining util coverage: Slice semantics, Random determinism and
// distribution sanity, Arena alignment, filename parsing, iterators.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>

#include "kv/arena.h"
#include "kv/filename.h"
#include "kv/iterator.h"
#include "kv/merging_iterator.h"
#include "kv/memtable.h"
#include "util/query_context.h"
#include "util/random.h"
#include "util/retry_policy.h"
#include "util/slice.h"

namespace trass {
namespace {

TEST(SliceTest, BasicOperations) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, CompareIsBytewise) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  // Unsigned byte comparison: 0xff sorts above ASCII.
  const char high[] = {static_cast<char>(0xff), 0};
  EXPECT_LT(Slice("z").compare(Slice(high, 1)), 0);
}

TEST(SliceTest, StartsWithAndEquality) {
  EXPECT_TRUE(Slice("abcdef").starts_with("abc"));
  EXPECT_FALSE(Slice("ab").starts_with("abc"));
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  const std::string with_nul("a\0b", 3);
  EXPECT_EQ(Slice(with_nul).size(), 3u);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  Random a2(7);
  for (int i = 0; i < 10; ++i) differs = differs || a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformBounds) {
  Random rnd(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rnd.Uniform(17), 17u);
    const double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double u = rnd.UniformDouble(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rnd(10);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rnd.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(ArenaTest, AllocationsAreUsableAndCounted) {
  kv::Arena arena;
  std::set<char*> blocks;
  size_t total = 0;
  Random rnd(11);
  for (int i = 0; i < 1000; ++i) {
    const size_t bytes = 1 + rnd.Uniform(500);
    char* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, bytes);  // must be writable
    total += bytes;
  }
  EXPECT_GE(arena.MemoryUsage(), total);
}

TEST(ArenaTest, AlignedAllocations) {
  kv::Arena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t),
              0u);
  }
}

TEST(ArenaTest, LargeAllocationsGetOwnBlocks) {
  kv::Arena arena;
  char* big = arena.Allocate(1 << 20);
  std::memset(big, 1, 1 << 20);
  char* small = arena.Allocate(8);
  std::memset(small, 2, 8);
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(small[0], 2);
}

TEST(FilenameTest, RoundTrip) {
  uint64_t number;
  kv::FileType type;
  ASSERT_TRUE(kv::ParseFileName("000042.log", &number, &type));
  EXPECT_EQ(number, 42u);
  EXPECT_EQ(type, kv::FileType::kLogFile);
  ASSERT_TRUE(kv::ParseFileName("000007.sst", &number, &type));
  EXPECT_EQ(type, kv::FileType::kTableFile);
  ASSERT_TRUE(kv::ParseFileName("MANIFEST-000003", &number, &type));
  EXPECT_EQ(number, 3u);
  EXPECT_EQ(type, kv::FileType::kManifestFile);
  ASSERT_TRUE(kv::ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(type, kv::FileType::kCurrentFile);
}

TEST(FilenameTest, RejectsGarbage) {
  uint64_t number;
  kv::FileType type;
  EXPECT_FALSE(kv::ParseFileName("notafile", &number, &type));
  EXPECT_FALSE(kv::ParseFileName("12x.log", &number, &type));
  EXPECT_FALSE(kv::ParseFileName("12.tmp", &number, &type));
  EXPECT_FALSE(kv::ParseFileName(".log", &number, &type));
  EXPECT_FALSE(kv::ParseFileName("MANIFEST-12x", &number, &type));
}

TEST(FilenameTest, GeneratedNamesParseBack) {
  uint64_t number;
  kv::FileType type;
  const std::string log = kv::LogFileName("/db", 9);
  ASSERT_TRUE(kv::ParseFileName(log.substr(4), &number, &type));
  EXPECT_EQ(number, 9u);
  EXPECT_EQ(type, kv::FileType::kLogFile);
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  // Two memtables with interleaved keys.
  kv::MemTable a, b;
  a.Add(1, kv::kTypeValue, "a", "1");
  a.Add(3, kv::kTypeValue, "c", "3");
  b.Add(2, kv::kTypeValue, "b", "2");
  b.Add(4, kv::kTypeValue, "d", "4");
  std::unique_ptr<kv::Iterator> merged(
      kv::NewMergingIterator({a.NewIterator(), b.NewIterator()}));
  std::vector<std::string> keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys.push_back(kv::ExtractUserKey(merged->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(MergingIteratorTest, SameUserKeyNewestFirst) {
  kv::MemTable a, b;
  a.Add(5, kv::kTypeValue, "k", "new");
  b.Add(2, kv::kTypeValue, "k", "old");
  std::unique_ptr<kv::Iterator> merged(
      kv::NewMergingIterator({a.NewIterator(), b.NewIterator()}));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  kv::MemTable a, b;
  for (int i = 0; i < 20; i += 2) {
    a.Add(static_cast<kv::SequenceNumber>(i + 1), kv::kTypeValue,
          "k" + std::to_string(10 + i), "v");
    b.Add(static_cast<kv::SequenceNumber>(i + 2), kv::kTypeValue,
          "k" + std::to_string(11 + i), "v");
  }
  std::unique_ptr<kv::Iterator> merged(
      kv::NewMergingIterator({a.NewIterator(), b.NewIterator()}));
  merged->Seek(kv::MakeLookupKey("k15", kv::kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(kv::ExtractUserKey(merged->key()).ToString(), "k15");
}

TEST(EmptyIteratorTest, CarriesStatus) {
  std::unique_ptr<kv::Iterator> ok(kv::NewEmptyIterator());
  EXPECT_FALSE(ok->Valid());
  EXPECT_TRUE(ok->status().ok());
  std::unique_ptr<kv::Iterator> bad(
      kv::NewEmptyIterator(Status::Corruption("boom")));
  EXPECT_FALSE(bad->Valid());
  EXPECT_TRUE(bad->status().IsCorruption());
}

TEST(RetryPolicyTest, DeterministicCappedExponentialSchedule) {
  RetryPolicy::Options options;
  options.base_backoff_ms = 2;
  options.max_backoff_ms = 100;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMs(1), 2u);
  EXPECT_EQ(policy.BackoffMs(2), 4u);
  EXPECT_EQ(policy.BackoffMs(3), 8u);
  EXPECT_EQ(policy.BackoffMs(6), 64u);
  EXPECT_EQ(policy.BackoffMs(7), 100u);   // capped
  EXPECT_EQ(policy.BackoffMs(40), 100u);  // shift bounded, still capped
  EXPECT_EQ(policy.BackoffMs(0), 2u);     // clamped to attempt 1
}

TEST(RetryPolicyTest, DeadlineClampRoundsUpAndFloorsAtZero) {
  RetryPolicy::Options options;
  options.base_backoff_ms = 64;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMs(1, 10.3), 11u);  // ceil of the remainder
  EXPECT_EQ(policy.BackoffMs(1, 0.0), 0u);
  EXPECT_EQ(policy.BackoffMs(1, 500.0), 64u);  // plenty left: unclamped
  EXPECT_EQ(policy.BackoffMs(1, -1.0), 64u);   // negative: no deadline
}

TEST(RetryPolicyTest, JitterStaysWithinFractionAndUnderCap) {
  RetryPolicy::Options options;
  options.base_backoff_ms = 40;
  options.max_backoff_ms = 100;
  options.jitter = 0.25;
  RetryPolicy policy(options);
  bool varied = false;
  uint64_t first = policy.BackoffMs(1);
  for (int i = 0; i < 200; ++i) {
    const uint64_t ms = policy.BackoffMs(1);
    EXPECT_GE(ms, 30u);  // 40 * (1 - 0.25)
    EXPECT_LE(ms, 50u);  // 40 * (1 + 0.25)
    if (ms != first) varied = true;
  }
  EXPECT_TRUE(varied);
  // The cap applies after jitter too.
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(policy.BackoffMs(3), 100u);  // 160 jittered, then capped
  }
}

TEST(RetryPolicyTest, RunRetriesTransientFailuresUntilSuccess) {
  RetryPolicy::Options options;
  options.max_retries = 3;
  options.base_backoff_ms = 0;  // no sleeping in tests
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return calls < 3 ? Status::IoError("transient") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, RunReturnsLastErrorWhenRetriesExhaust) {
  RetryPolicy::Options options;
  options.max_retries = 2;
  options.base_backoff_ms = 0;
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::NoSpace("still full");
  });
  EXPECT_TRUE(s.IsNoSpace());
  EXPECT_EQ(calls, 3);  // 1 + max_retries
}

TEST(RetryPolicyTest, RunDoesNotRetryNonRetryableStatuses) {
  RetryPolicy::Options options;
  options.max_retries = 5;
  options.base_backoff_ms = 0;
  RetryPolicy policy(options);
  for (Status terminal :
       {Status::InvalidArgument("bad"), Status::TimedOut("deadline"),
        Status::Cancelled("stop"), Status::Busy("shed"),
        Status::NotSupported("no")}) {
    int calls = 0;
    Status s = policy.Run([&] {
      ++calls;
      return terminal;
    });
    EXPECT_EQ(s.ToString(), terminal.ToString());
    EXPECT_EQ(calls, 1) << terminal.ToString();
  }
}

// Pins the deadline-edge fix: a retry whose backoff overshoots the
// remaining budget fails fast with the last error instead of sleeping
// (the old clamped sleep woke at the deadline for one doomed attempt).
TEST(RetryPolicyTest, DeadlineAwareRunFailsFastOnBackoffOvershoot) {
  RetryPolicy::Options options;
  options.max_retries = 3;
  options.base_backoff_ms = 10000;  // any retry would sleep ~10s
  options.max_backoff_ms = 10000;
  RetryPolicy policy(options);
  QueryContext control;
  control.SetDeadlineAfterMillis(50.0);
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  Status s = policy.Run(
      [&] {
        ++calls;
        return Status::IoError("flaky shard");
      },
      &control);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();       // the last error, not a stop
  EXPECT_EQ(calls, 1);                              // no doomed retry launched
  EXPECT_LT(elapsed_ms, 5000.0) << "slept past the deadline";
}

TEST(RetryPolicyTest, DeadlineAwareRunRetriesWithinBudget) {
  RetryPolicy::Options options;
  options.max_retries = 3;
  options.base_backoff_ms = 1;
  RetryPolicy policy(options);
  QueryContext control;
  control.SetDeadlineAfterMillis(60000.0);  // plenty of room
  int calls = 0;
  Status s = policy.Run(
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("transient") : Status::OK();
      },
      &control);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, DeadlineAwareRunReturnsStopWhenCancelledUpFront) {
  RetryPolicy policy;
  std::atomic<bool> cancel{true};
  QueryContext control;
  control.SetCancelFlag(&cancel);
  int calls = 0;
  Status s = policy.Run(
      [&] {
        ++calls;
        return Status::OK();
      },
      &control);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_EQ(calls, 0);
}

TEST(RetryPolicyTest, DeadlineAwareRunWithNullControlMatchesPlainRun) {
  RetryPolicy::Options options;
  options.max_retries = 2;
  options.base_backoff_ms = 0;
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run(
      [&] {
        ++calls;
        return Status::NoSpace("still full");
      },
      static_cast<const QueryContext*>(nullptr));
  EXPECT_TRUE(s.IsNoSpace());
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace trass
