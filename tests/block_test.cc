#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/block.h"
#include "kv/block_builder.h"
#include "kv/dbformat.h"

namespace trass {
namespace kv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, kTypeValue);
  return k;
}

class BlockTest : public ::testing::Test {
 protected:
  // Builds a block with `n` keys k0000, k0001, ... and value v<i>.
  std::unique_ptr<Block> BuildBlock(int n, int restart_interval = 16) {
    BlockBuilder builder(restart_interval);
    for (int i = 0; i < n; ++i) {
      builder.Add(IKey(UserKey(i)), "v" + std::to_string(i));
    }
    return std::make_unique<Block>(builder.Finish().ToString());
  }

  static std::string UserKey(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    return buf;
  }
};

TEST_F(BlockTest, EmptyBlock) {
  auto block = BuildBlock(0);
  std::unique_ptr<Iterator> iter(block->NewIterator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->Seek(IKey("a"));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, IterateAll) {
  auto block = BuildBlock(100);
  std::unique_ptr<Iterator> iter(block->NewIterator());
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
    EXPECT_EQ(iter->value().ToString(), "v" + std::to_string(i));
  }
  EXPECT_EQ(i, 100);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(BlockTest, PrefixCompressionSavesSpace) {
  BlockBuilder with_compression(16);
  BlockBuilder no_compression(1);
  for (int i = 0; i < 100; ++i) {
    with_compression.Add(IKey(UserKey(i)), "v");
    no_compression.Add(IKey(UserKey(i)), "v");
  }
  EXPECT_LT(with_compression.Finish().size(), no_compression.Finish().size());
}

TEST_F(BlockTest, SeekExactAndBetween) {
  auto block = BuildBlock(50);
  std::unique_ptr<Iterator> iter(block->NewIterator());
  // Exact key.
  iter->Seek(IKey(UserKey(17), kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(17));
  // Between keys: lands on the next one.
  iter->Seek(IKey(UserKey(17) + "zzz", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(18));
  // Before everything.
  iter->Seek(IKey("a", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(0));
  // Past everything.
  iter->Seek(IKey("zzz", kMaxSequenceNumber));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, SeekWithVariousRestartIntervals) {
  for (int restart : {1, 2, 5, 16, 100}) {
    auto block = BuildBlock(64, restart);
    std::unique_ptr<Iterator> iter(block->NewIterator());
    for (int i = 0; i < 64; ++i) {
      iter->Seek(IKey(UserKey(i), kMaxSequenceNumber));
      ASSERT_TRUE(iter->Valid()) << "restart=" << restart << " i=" << i;
      ASSERT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
    }
  }
}

TEST_F(BlockTest, MalformedBlockYieldsErrorIterator) {
  Block block("xy");  // too small to even hold the restart count
  std::unique_ptr<Iterator> iter(block.NewIterator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

}  // namespace
}  // namespace kv
}  // namespace trass
