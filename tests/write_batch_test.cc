#include "kv/write_batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/memtable.h"

namespace trass {
namespace kv {
namespace {

// Records the replayed operations as printable strings.
class Recorder : public WriteBatch::Handler {
 public:
  void Put(const Slice& key, const Slice& value) override {
    ops.push_back("put(" + key.ToString() + "," + value.ToString() + ")");
  }
  void Delete(const Slice& key) override {
    ops.push_back("del(" + key.ToString() + ")");
  }
  std::vector<std::string> ops;
};

TEST(WriteBatchTest, EmptyBatch) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0u);
  Recorder recorder;
  EXPECT_TRUE(batch.Iterate(&recorder).ok());
  EXPECT_TRUE(recorder.ops.empty());
}

TEST(WriteBatchTest, MultipleOperationsInOrder) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3u);
  Recorder recorder;
  ASSERT_TRUE(batch.Iterate(&recorder).ok());
  EXPECT_EQ(recorder.ops,
            (std::vector<std::string>{"put(a,1)", "del(b)", "put(c,3)"}));
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch batch;
  batch.set_sequence(12345);
  EXPECT_EQ(batch.sequence(), 12345u);
}

TEST(WriteBatchTest, ContentsRoundTrip) {
  WriteBatch batch;
  batch.Put("key", "value");
  batch.set_sequence(7);
  WriteBatch restored = WriteBatch::FromContents(batch.Contents());
  EXPECT_EQ(restored.Count(), 1u);
  EXPECT_EQ(restored.sequence(), 7u);
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.ApproximateSize(), 12u);
}

TEST(WriteBatchTest, InsertIntoMemTableAssignsSequences) {
  WriteBatch batch;
  batch.Put("k", "v1");
  batch.Put("k", "v2");  // later op must shadow the earlier one
  batch.set_sequence(10);
  MemTable mem;
  ASSERT_TRUE(WriteBatch::InsertInto(batch, &mem).ok());
  std::string value;
  Status status;
  ASSERT_TRUE(mem.Get("k", 100, &value, &status));
  EXPECT_EQ(value, "v2");
  // As of sequence 10 only the first op is visible.
  ASSERT_TRUE(mem.Get("k", 10, &value, &status));
  EXPECT_EQ(value, "v1");
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch bad = WriteBatch::FromContents(Slice("short"));
  Recorder recorder;
  EXPECT_TRUE(bad.Iterate(&recorder).IsCorruption());
  // Truncated record body.
  WriteBatch batch;
  batch.Put("key", "value");
  std::string contents = batch.Contents().ToString();
  contents.resize(contents.size() - 3);
  WriteBatch truncated = WriteBatch::FromContents(contents);
  EXPECT_TRUE(truncated.Iterate(&recorder).IsCorruption());
}

}  // namespace
}  // namespace kv
}  // namespace trass
