#include "kv/bloom.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace trass {
namespace kv {
namespace {

std::string Key(int i) { return "key-" + std::to_string(i); }

TEST(BloomTest, EmptyFilterMatchesNothingDefinitively) {
  BloomFilterBuilder builder(10);
  const std::string filter = builder.Finish();
  // No false negatives requirement trivially holds; an empty filter may
  // reject everything.
  EXPECT_FALSE(BloomKeyMayMatch("hello", filter));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) builder.AddKey(Key(i));
  const std::string filter = builder.Finish();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(BloomKeyMayMatch(Key(i), filter)) << i;
  }
}

TEST(BloomTest, FalsePositiveRateIsBounded) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) builder.AddKey(Key(i));
  const std::string filter = builder.Finish();
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (BloomKeyMayMatch(Key(1000000 + i), filter)) ++false_positives;
  }
  // 10 bits/key gives ~1% theoretical; allow generous slack.
  EXPECT_LT(false_positives, probes * 4 / 100)
      << "false positive rate "
      << 100.0 * false_positives / probes << "%";
}

TEST(BloomTest, TinyFilterStillSound) {
  BloomFilterBuilder builder(10);
  builder.AddKey("a");
  builder.AddKey("b");
  const std::string filter = builder.Finish();
  EXPECT_TRUE(BloomKeyMayMatch("a", filter));
  EXPECT_TRUE(BloomKeyMayMatch("b", filter));
}

TEST(BloomTest, MalformedFilterIsPermissive) {
  EXPECT_TRUE(BloomKeyMayMatch("x", Slice("")));
  EXPECT_TRUE(BloomKeyMayMatch("x", Slice("\x01", 1)));
  // Probe count byte > 30 is reserved -> permissive.
  std::string weird(10, '\0');
  weird.push_back(static_cast<char>(31));
  EXPECT_TRUE(BloomKeyMayMatch("x", weird));
}

TEST(BloomTest, BuilderIsReusableAfterFinish) {
  BloomFilterBuilder builder(10);
  builder.AddKey("a");
  const std::string f1 = builder.Finish();
  EXPECT_EQ(builder.num_keys(), 0u);
  builder.AddKey("b");
  const std::string f2 = builder.Finish();
  EXPECT_TRUE(BloomKeyMayMatch("b", f2));
}

TEST(BloomTest, HashIsStable) {
  // Pin the hash so on-disk filters stay compatible across builds.
  EXPECT_EQ(BloomHash(Slice("")), BloomHash(Slice("")));
  EXPECT_NE(BloomHash(Slice("abc")), BloomHash(Slice("abd")));
}

}  // namespace
}  // namespace kv
}  // namespace trass
