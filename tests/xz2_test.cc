#include "index/xz2.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace trass {
namespace index {
namespace {

TEST(Xz2Test, SubtreeSizes) {
  Xz2 xz(2);
  EXPECT_EQ(xz.SubtreeSize(2), 1);
  EXPECT_EQ(xz.SubtreeSize(1), 5);
  EXPECT_EQ(xz.TotalElements(), 21);  // 4*5 regular + root
}

TEST(Xz2Test, DfsNumberingAtResolution2) {
  Xz2 xz(2);
  // DFS: '0'=0, '00'=1, '01'=2, '02'=3, '03'=4, '1'=5, ...
  EXPECT_EQ(xz.Encode(QuadSeq::FromString("0")), 0);
  EXPECT_EQ(xz.Encode(QuadSeq::FromString("00")), 1);
  EXPECT_EQ(xz.Encode(QuadSeq::FromString("03")), 4);
  EXPECT_EQ(xz.Encode(QuadSeq::FromString("1")), 5);
  EXPECT_EQ(xz.Encode(QuadSeq::FromString("33")), 19);
  EXPECT_EQ(xz.Encode(QuadSeq()), 20);  // root overflow
}

TEST(Xz2Test, EncodeDecodeBijective) {
  Xz2 xz(8);
  Random rnd(41);
  for (int iter = 0; iter < 5000; ++iter) {
    const int64_t value =
        static_cast<int64_t>(rnd.Uniform(xz.TotalElements()));
    const QuadSeq seq = xz.Decode(value);
    EXPECT_EQ(xz.Encode(seq), value);
  }
}

TEST(Xz2Test, EncodePreservesDfsOrder) {
  // Prefix relationships: a parent's code is less than every descendant's
  // and descendants of lower-numbered siblings come earlier.
  Xz2 xz(6);
  Random rnd(43);
  for (int iter = 0; iter < 2000; ++iter) {
    QuadSeq a, b;
    const int la = 1 + static_cast<int>(rnd.Uniform(6));
    const int lb = 1 + static_cast<int>(rnd.Uniform(6));
    for (int i = 0; i < la; ++i) a = a.Child(static_cast<int>(rnd.Uniform(4)));
    for (int i = 0; i < lb; ++i) b = b.Child(static_cast<int>(rnd.Uniform(4)));
    const std::string sa = a.ToString();
    const std::string sb = b.ToString();
    if (sa == sb) continue;
    // DFS order on sequences equals lexicographic order of digit strings.
    EXPECT_EQ(sa < sb, xz.Encode(a) < xz.Encode(b)) << sa << " vs " << sb;
  }
}

TEST(Xz2Test, IndexSelectsCoveringElement) {
  Xz2 xz(16);
  const geo::Mbr mbr(0.26, 0.26, 0.49, 0.49);
  const QuadSeq seq = xz.Index(mbr);
  EXPECT_TRUE(seq.ElementBounds().Contains(mbr));
}

TEST(Xz2Test, RangesCoverIndexedTrajectories) {
  // Property: for random data MBRs intersecting a random window, the
  // window's ranges must include the MBR's element value.
  Xz2 xz(12);
  Random rnd(47);
  for (int iter = 0; iter < 2000; ++iter) {
    const double wx = rnd.NextDouble() * 0.8;
    const double wy = rnd.NextDouble() * 0.8;
    const geo::Mbr window(wx, wy, wx + 0.1 + rnd.NextDouble() * 0.1,
                          wy + 0.1 + rnd.NextDouble() * 0.1);
    const double dx = rnd.NextDouble() * 0.9;
    const double dy = rnd.NextDouble() * 0.9;
    const geo::Mbr data(dx, dy, std::min(dx + rnd.NextDouble() * 0.1, 1.0),
                        std::min(dy + rnd.NextDouble() * 0.1, 1.0));
    if (!window.Intersects(data)) continue;
    const int64_t value = xz.Encode(xz.Index(data));
    const auto ranges = xz.Ranges(window);
    bool covered = false;
    for (const auto& [lo, hi] : ranges) {
      if (value >= lo && value <= hi) {
        covered = true;
        break;
      }
    }
    // The trajectory's points are inside `data`; if data's element
    // intersects the window the value must be covered. (data's element
    // contains data which intersects window, so it always intersects.)
    ASSERT_TRUE(covered);
  }
}

TEST(Xz2Test, RangesAreSortedAndMerged) {
  Xz2 xz(10);
  const auto ranges = xz.Ranges(geo::Mbr(0.3, 0.3, 0.42, 0.40));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i].first, ranges[i].second);
    if (i > 0) {
      EXPECT_GT(ranges[i].first, ranges[i - 1].second + 1);
    }
  }
}

TEST(MergeRangesTest, MergesAdjacentAndOverlapping) {
  std::vector<std::pair<int64_t, int64_t>> ranges = {
      {5, 7}, {1, 2}, {3, 4}, {10, 12}, {11, 15}};
  MergeRanges(&ranges);
  // {1,2}+{3,4}+{5,7} chain into one (adjacent values merge).
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].first, 1);
  EXPECT_EQ(ranges[0].second, 7);
  EXPECT_EQ(ranges[1].first, 10);
  EXPECT_EQ(ranges[1].second, 15);
}

TEST(MergeRangesTest, EmptyInput) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  MergeRanges(&ranges);
  EXPECT_TRUE(ranges.empty());
}

}  // namespace
}  // namespace index
}  // namespace trass
