#include "kv/region_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "kv/fault_injection_env.h"
#include "kv/filename.h"
#include "test_util.h"
#include "util/query_context.h"

namespace trass {
namespace kv {
namespace {

// Keeps rows whose value has even length.
class EvenValueFilter final : public ScanFilter {
 public:
  bool Keep(const Slice&, const Slice& value) const override {
    return value.size() % 2 == 0;
  }
};

class RegionStoreTest : public ::testing::Test {
 protected:
  RegionStoreTest() : dir_("region_store") {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 16 * 1024;
    EXPECT_TRUE(
        RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  static std::string Key(int shard, const std::string& rest) {
    std::string key(1, static_cast<char>(shard));
    key += rest;
    return key;
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreTest, PutGetRoutesByShard) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_
                    ->Put(WriteOptions(), Key(shard, "k"),
                          "v" + std::to_string(shard))
                    .ok());
  }
  for (int shard = 0; shard < 4; ++shard) {
    std::string value;
    ASSERT_TRUE(store_->Get(ReadOptions(), Key(shard, "k"), &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(shard));
  }
}

TEST_F(RegionStoreTest, RejectsOutOfRangeShard) {
  EXPECT_FALSE(store_->Put(WriteOptions(), Key(9, "k"), "v").ok());
  EXPECT_FALSE(store_->Put(WriteOptions(), "", "v").ok());
}

TEST_F(RegionStoreTest, ScanReplicatesRangeAcrossShards) {
  // Each shard gets keys 00..99; a range scan without a shard byte must
  // return matches from every shard.
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 100; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%02d", i);
      ASSERT_TRUE(
          store_->Put(WriteOptions(), Key(shard, buf), "value").ok());
    }
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"10", "20"}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 4u * 10u);
  for (const Row& row : rows) {
    const std::string rest = row.key.substr(1);
    EXPECT_GE(rest, "10");
    EXPECT_LT(rest, "20");
  }
}

TEST_F(RegionStoreTest, ScanAppliesPushdownFilter) {
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "a"), "xx").ok());    // even
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "b"), "xxx").ok());   // odd
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(1, "c"), "xxxx").ok());  // even
  EvenValueFilter filter;
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, &filter, &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(RegionStoreTest, MultipleRangesInOneScan) {
  for (int i = 0; i < 50; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%02d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_
                  ->Scan({ScanRange{"05", "10"}, ScanRange{"40", "45"}},
                         nullptr, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(RegionStoreTest, ScanWithLimitStopsEarly) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(
      store_->ScanWithLimit({ScanRange{"", ""}}, nullptr, 5, &rows).ok());
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(RegionStoreTest, IoStatsAggregateAcrossRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  store_->ResetIoStats();
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(store_->TotalIoStats().rows_scanned, 4u);
}

TEST_F(RegionStoreTest, FlushPersistsAllRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_GT(store_->TotalTableBytes(), 0u);
}

// Fixture for availability tests: the store's regions live on a
// FaultInjectionEnv so individual regions can be made to fail.
class RegionStoreFaultTest : public ::testing::Test {
 protected:
  RegionStoreFaultTest()
      : dir_("region_store_fault"), env_(Env::Default()) {}

  void OpenStore(bool degraded) {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = 2;
    options.max_scan_retries = 2;
    options.retry_backoff_ms = 1;
    options.degraded_scans = degraded;
    options.db_options.env = &env_;
    ASSERT_TRUE(
        RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
    // Ten rows per region, flushed so scans must read table files (where
    // the injected faults live).
    for (int shard = 0; shard < 4; ++shard) {
      for (int i = 0; i < 10; ++i) {
        std::string key(1, static_cast<char>(shard));
        key += "k" + std::to_string(i);
        ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
      }
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  // Makes every table read in region `shard` fail until faults clear.
  void BreakRegion(int shard) {
    for (FaultOp op : {FaultOp::kOpenRead, FaultOp::kRead}) {
      FaultPoint fault;
      fault.op = op;
      fault.permanent = true;
      fault.path_substring = "region-" + std::to_string(shard);
      env_.InjectFault(fault);
    }
  }

  trass::testing::ScratchDir dir_;
  FaultInjectionEnv env_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreFaultTest, DegradedScanSkipsFailedRegionAndReportsIt) {
  OpenStore(/*degraded=*/true);
  BreakRegion(2);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  // All rows from the three healthy regions, none from the broken one.
  EXPECT_EQ(rows.size(), 30u);
  for (const Row& row : rows) {
    EXPECT_NE(row.key[0], 2) << "row from the skipped region";
  }
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  EXPECT_NE(report.skipped[0].error.find("region 2"), std::string::npos)
      << report.skipped[0].error;
  EXPECT_FALSE(report.complete());
  // 1 initial attempt + 2 retries, all failed, then one skip.
  const RegionHealth health = store_->Health(2);
  EXPECT_EQ(health.failed_attempts, 3u);
  EXPECT_EQ(health.consecutive_failures, 3u);
  EXPECT_EQ(health.skipped_scans, 1u);
  EXPECT_FALSE(health.last_error.empty());
  EXPECT_GE(report.retries, 2u);
  EXPECT_EQ(store_->Health(0).failed_attempts, 0u);
}

TEST_F(RegionStoreFaultTest, NonDegradedScanReturnsAttributedError) {
  OpenStore(/*degraded=*/false);
  BreakRegion(2);
  std::vector<Row> rows;
  ScanReport report;
  const Status s = store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("region 2"), std::string::npos)
      << s.ToString();
  EXPECT_TRUE(rows.empty());  // no partial rows without opting in
  EXPECT_TRUE(report.skipped.empty());
}

TEST_F(RegionStoreFaultTest, TransientFaultHealsViaRetry) {
  OpenStore(/*degraded=*/false);
  FaultPoint fault;  // one-shot: first table open in region 1 fails
  fault.op = FaultOp::kOpenRead;
  fault.path_substring = "region-1";
  env_.InjectFault(fault);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  EXPECT_EQ(rows.size(), 40u);  // retry recovered the full result
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(report.complete());
  const RegionHealth health = store_->Health(1);
  EXPECT_EQ(health.failed_attempts, 1u);
  EXPECT_EQ(health.consecutive_failures, 0u);  // cleared by the success
  EXPECT_EQ(health.skipped_scans, 0u);
}

TEST_F(RegionStoreFaultTest, GetAttributesErrorToRegion) {
  OpenStore(/*degraded=*/true);
  BreakRegion(3);
  std::string value;
  std::string key(1, static_cast<char>(3));
  key += "k0";
  const Status s = store_->Get(ReadOptions(), key, &value);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("region 3"), std::string::npos)
      << s.ToString();
}

TEST_F(RegionStoreFaultTest, VerifyIntegrityCoversEveryRegion) {
  OpenStore(/*degraded=*/true);
  EXPECT_TRUE(store_->VerifyIntegrity().ok());
}

// ---- cooperative cancellation ----

// A pushdown filter that raises the query's cancel flag after `trigger`
// rows — deterministic mid-scan cancellation without timing assumptions.
class CancelAfterFilter final : public ScanFilter {
 public:
  CancelAfterFilter(std::atomic<bool>* cancel, uint64_t trigger)
      : cancel_(cancel), trigger_(trigger) {}

  bool Keep(const Slice&, const Slice&) const override {
    if (seen_.fetch_add(1) + 1 >= trigger_) cancel_->store(true);
    return true;
  }

 private:
  std::atomic<bool>* cancel_;
  const uint64_t trigger_;
  mutable std::atomic<uint64_t> seen_{0};
};

class RegionStoreControlTest : public RegionStoreTest {
 protected:
  // Enough rows in one region that the worker's per-128-row control poll
  // fires several times mid-scan.
  void FillShardZero(int rows) {
    for (int i = 0; i < rows; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%04d", i);
      ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
    }
  }
};

TEST_F(RegionStoreControlTest, ExpiredDeadlineFailsScanWithTimedOut) {
  FillShardZero(64);
  QueryContext control;
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(rows.empty());  // gathered rows discarded on a stop
  EXPECT_TRUE(report.skipped.empty());  // a stop is not a degraded skip
}

TEST_F(RegionStoreControlTest, MidScanCancelStopsWorkerAtCheckInterval) {
  FillShardZero(1000);
  std::atomic<bool> cancel{false};
  CancelAfterFilter filter(&cancel, /*trigger=*/1);
  QueryContext control;
  control.SetCancelFlag(&cancel);
  std::vector<Row> rows;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, &filter, &rows, nullptr, &control);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(rows.empty());
}

TEST_F(RegionStoreControlTest, CandidateBudgetStopsScanWithBusy) {
  FillShardZero(500);
  QueryContext control;
  control.SetCandidateBudget(10);
  std::vector<Row> rows;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, nullptr, &control);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(s.IsQueryStop());
  EXPECT_TRUE(rows.empty());
}

TEST_F(RegionStoreControlTest, UnarmedControlScansCompletely) {
  FillShardZero(300);
  QueryContext control;  // nothing armed: must behave like no control
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, nullptr,
                           &control)
                  .ok());
  EXPECT_EQ(rows.size(), 300u);
}

TEST_F(RegionStoreFaultTest, QueryStopIsNeverCountedAsRegionFault) {
  OpenStore(/*degraded=*/true);
  QueryContext control;
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  // Degraded mode must not "skip" regions over a deadline, and region
  // health must not blame storage for a caller-attributed stop.
  EXPECT_TRUE(report.skipped.empty());
  for (int region = 0; region < 4; ++region) {
    const RegionHealth health = store_->Health(region);
    EXPECT_EQ(health.failed_attempts, 0u) << "region " << region;
    EXPECT_EQ(health.skipped_scans, 0u) << "region " << region;
  }
}

TEST_F(RegionStoreFaultTest, DeadlineDuringRetriesStillSkipsBrokenRegion) {
  // A deadline that expires while the broken region sleeps between
  // retries stops the retrying, but the *fault* outcome stands: degraded
  // mode skips the region and the healthy rows are returned — the caller
  // sees OK + a skip report, and decides the partial policy itself.
  RegionStore::RegionOptions options;
  options.num_regions = 4;
  options.scan_threads = 4;  // healthy regions finish while 2 retries
  options.max_scan_retries = 3;
  options.retry_backoff_ms = 64;
  options.degraded_scans = true;
  options.db_options.env = &env_;
  ASSERT_TRUE(
      RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 10; ++i) {
      std::string key(1, static_cast<char>(shard));
      key += "k" + std::to_string(i);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
    }
  }
  ASSERT_TRUE(store_->Flush().ok());
  BreakRegion(2);

  QueryContext control;
  control.SetDeadlineAfterMillis(30.0);
  std::vector<Row> rows;
  ScanReport report;
  const auto start = std::chrono::steady_clock::now();
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rows.size(), 30u);  // the three healthy regions
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  EXPECT_GE(report.retries, 1u);
  // The deadline clamps the backoff sleeps: total retry time collapses
  // to roughly the 30ms budget instead of the 64+100+100ms schedule.
  EXPECT_LT(elapsed_ms, 150.0);
  EXPECT_EQ(store_->Health(2).skipped_scans, 1u);
}

// ---- replication ----

// Fixture for replication tests: every replica database lives on a
// FaultInjectionEnv so individual replicas (or whole regions) can be
// made to fail, and table files can be byte-flipped for scrub tests.
class RegionStoreReplicaTest : public ::testing::Test {
 protected:
  RegionStoreReplicaTest()
      : dir_("region_store_replica"), env_(Env::Default()) {}

  std::string StorePath() const { return dir_.path() + "/store"; }

  void OpenStore(bool degraded, int factor = 2, int scan_threads = 2,
                 uint64_t probe_interval = 8, int demote_threshold = 2) {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = scan_threads;
    options.max_scan_retries = 2;
    options.retry_backoff_ms = 1;
    options.degraded_scans = degraded;
    options.replication_factor = factor;
    options.replica_demote_threshold = demote_threshold;
    options.replica_probe_interval = probe_interval;
    options.db_options.env = &env_;
    ASSERT_TRUE(RegionStore::Open(options, StorePath(), &store_).ok());
  }

  // Ten rows per region, flushed so scans must read table files (where
  // the injected faults live).
  void Fill() {
    for (int shard = 0; shard < 4; ++shard) {
      for (int i = 0; i < 10; ++i) {
        std::string key(1, static_cast<char>(shard));
        key += "k" + std::to_string(i);
        ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
      }
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  std::string ReplicaDir(int shard, int replica) const {
    std::string dir = StorePath() + "/region-" + std::to_string(shard);
    if (replica > 0) dir += "-replica-" + std::to_string(replica);
    return dir;
  }

  // Replica 0's files live at .../region-N/...; the trailing separator
  // keeps the substring from also matching region-N-replica-*.
  std::string ReplicaPathSubstring(int shard, int replica) const {
    return replica == 0
               ? "region-" + std::to_string(shard) + "/"
               : "region-" + std::to_string(shard) + "-replica-" +
                     std::to_string(replica);
  }

  // Makes every table read in one replica of `shard` fail until faults
  // clear; the other replica stays healthy.
  void BreakReplica(int shard, int replica) {
    for (FaultOp op : {FaultOp::kOpenRead, FaultOp::kRead}) {
      FaultPoint fault;
      fault.op = op;
      fault.permanent = true;
      fault.path_substring = ReplicaPathSubstring(shard, replica);
      env_.InjectFault(fault);
    }
  }

  // Makes every replica of `shard` fail ("region-N" matches both the
  // region-N/ and region-N-replica-*/ directories).
  void BreakAllReplicas(int shard) {
    for (FaultOp op : {FaultOp::kOpenRead, FaultOp::kRead}) {
      FaultPoint fault;
      fault.op = op;
      fault.permanent = true;
      fault.path_substring = "region-" + std::to_string(shard);
      env_.InjectFault(fault);
    }
  }

  // Byte-flips the middle of every table file of one replica — silent
  // on-disk corruption the block checksums catch at read time.
  void CorruptReplicaTables(int shard, int replica) {
    const std::string dir = ReplicaDir(shard, replica);
    std::vector<std::string> children;
    ASSERT_TRUE(env_.GetChildren(dir, &children).ok());
    int corrupted = 0;
    for (const std::string& child : children) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(child, &number, &type) ||
          type != FileType::kTableFile) {
        continue;
      }
      const std::string path = dir + "/" + child;
      std::string contents;
      ASSERT_TRUE(env_.ReadFileToString(path, &contents).ok());
      ASSERT_GT(contents.size(), 32u);
      for (size_t i = contents.size() / 2;
           i < contents.size() / 2 + 16 && i < contents.size(); ++i) {
        contents[i] = static_cast<char>(contents[i] ^ 0xff);
      }
      ASSERT_TRUE(
          env_.WriteStringToFile(contents, path, /*sync=*/false).ok());
      ++corrupted;
    }
    ASSERT_GT(corrupted, 0) << "no table files under " << dir;
  }

  trass::testing::ScratchDir dir_;
  FaultInjectionEnv env_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreReplicaTest, FailoverServesCompleteResult) {
  OpenStore(/*degraded=*/true);
  Fill();
  BreakReplica(/*shard=*/2, /*replica=*/0);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  // The fault is invisible except through the failover counters: all 40
  // rows arrive, nothing is skipped, no retry budget was spent.
  EXPECT_EQ(rows.size(), 40u);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.retries, 0u);
  EXPECT_GE(report.failovers, 1u);
  ASSERT_EQ(report.regions.size(), 4u);
  EXPECT_EQ(report.regions[2].served_replica, 1);
  EXPECT_GE(report.regions[2].failovers, 1u);
  const RegionHealth health = store_->Health(2);
  EXPECT_EQ(health.failed_attempts, 0u);  // no full pass ever failed
  EXPECT_EQ(health.skipped_scans, 0u);
  EXPECT_GE(health.failovers, 1u);
  ASSERT_EQ(health.replicas.size(), 2u);
  EXPECT_GE(health.replicas[0].failed_attempts, 1u);
  EXPECT_FALSE(health.replicas[0].last_error.empty());
  EXPECT_EQ(health.replicas[1].failed_attempts, 0u);
  EXPECT_GE(store_->TotalIoStats().replica_failovers, 1u);
}

TEST_F(RegionStoreReplicaTest, FailoverNeedsNoDegradedMode) {
  // Replication keeps strict (non-degraded) scans available through a
  // single-replica fault — nothing given up, no error.
  OpenStore(/*degraded=*/false);
  Fill();
  BreakReplica(/*shard=*/1, /*replica=*/0);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  EXPECT_EQ(rows.size(), 40u);
  EXPECT_GE(report.failovers, 1u);
}

TEST_F(RegionStoreReplicaTest, AllReplicasDownStillDegradedSkips) {
  OpenStore(/*degraded=*/true);
  Fill();
  BreakAllReplicas(2);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  // Exactly the single-replica degraded contract: the region is skipped
  // after the retry budget, and only then.
  EXPECT_EQ(rows.size(), 30u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  EXPECT_EQ(report.regions[2].served_replica, -1);
  const RegionHealth health = store_->Health(2);
  EXPECT_EQ(health.failed_attempts, 3u);  // 1 attempt + 2 retries
  EXPECT_EQ(health.skipped_scans, 1u);
}

TEST_F(RegionStoreReplicaTest, GetFailsOverAndNotFoundIsAuthoritative) {
  OpenStore(/*degraded=*/false);
  Fill();
  BreakReplica(/*shard=*/3, /*replica=*/0);
  std::string value;
  std::string key(1, static_cast<char>(3));
  key += "k0";
  ASSERT_TRUE(store_->Get(ReadOptions(), key, &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_GE(store_->TotalIoStats().replica_failovers, 1u);
  // A miss on the serving replica is final — replicas are
  // write-synchronous, so it cannot be hiding on a broken peer.
  std::string missing(1, static_cast<char>(0));
  missing += "nope";
  EXPECT_TRUE(store_->Get(ReadOptions(), missing, &value).IsNotFound());
}

TEST_F(RegionStoreReplicaTest, DemotedReplicaIsProbedAndReinstated) {
  OpenStore(/*degraded=*/false, /*factor=*/2, /*scan_threads=*/2,
            /*probe_interval=*/3, /*demote_threshold=*/2);
  Fill();
  BreakReplica(/*shard=*/0, /*replica=*/0);
  std::vector<Row> rows;
  // Two failing scans demote replica 0 of region 0 (threshold 2); both
  // still serve completely via failover.
  for (int i = 0; i < 2; ++i) {
    rows.clear();
    ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
    EXPECT_EQ(rows.size(), 40u);
  }
  std::vector<RegionHealth> all = store_->HealthSnapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(all[0].replicas[0].demoted);
  EXPECT_EQ(all[0].replicas[0].consecutive_failures, 2u);
  // The replica heals; the third scan of the region is the probe
  // (interval 3) — it tries the demoted replica first, succeeds, and
  // reinstates it as preferred.
  env_.ClearFaults();
  rows.clear();
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  EXPECT_EQ(rows.size(), 40u);
  EXPECT_EQ(report.regions[0].served_replica, 0);
  all = store_->HealthSnapshot();
  EXPECT_FALSE(all[0].replicas[0].demoted);
  EXPECT_EQ(all[0].replicas[0].consecutive_failures, 0u);
}

// ---- failover × deadline / cancellation ----

TEST_F(RegionStoreReplicaTest, FailoverCompletesWithinDeadline) {
  OpenStore(/*degraded=*/true);
  Fill();
  BreakReplica(/*shard=*/2, /*replica=*/0);
  QueryContext control;
  control.SetDeadlineAfterMillis(5000.0);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report,
                           &control)
                  .ok());
  EXPECT_EQ(rows.size(), 40u);
  EXPECT_TRUE(report.complete());
  EXPECT_GE(report.failovers, 1u);
}

TEST_F(RegionStoreReplicaTest, DeadlineDuringFailoverRetryKeepsFaultOutcome) {
  // Deterministic mid-pass stop *after* a proven-down pass: region 2
  // has both replicas broken, so pass 1 faults on every replica (fast),
  // and the retry backoff — clamped to the remaining deadline — sleeps
  // across the deadline. Pass 2 then faults on replica 0 and observes
  // the expired deadline at the failover poll. Because a full pass
  // already proved the region down, the fault outcome stands: degraded
  // mode skips the region and the healthy rows are returned, exactly
  // composing PR 2's deadline-during-retries semantics with failover.
  RegionStore::RegionOptions options;
  options.num_regions = 4;
  options.scan_threads = 4;
  options.max_scan_retries = 3;
  options.retry_backoff_ms = 64;
  options.degraded_scans = true;
  options.replication_factor = 2;
  options.db_options.env = &env_;
  ASSERT_TRUE(RegionStore::Open(options, StorePath(), &store_).ok());
  Fill();
  BreakAllReplicas(2);

  QueryContext control;
  control.SetDeadlineAfterMillis(50.0);
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rows.size(), 30u);  // the three healthy regions
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  const RegionHealth health = store_->Health(2);
  // Only the *complete* pass counts as a region-level attempt; the
  // interrupted pass 2 reached replica 0 but stopped at the failover
  // poll before replica 1 — visible in the per-replica counters.
  EXPECT_EQ(health.failed_attempts, 1u);
  EXPECT_EQ(health.skipped_scans, 1u);
  EXPECT_EQ(health.replicas[0].failed_attempts, 2u);
  EXPECT_EQ(health.replicas[1].failed_attempts, 1u);
}

TEST_F(RegionStoreReplicaTest, ExpiredDeadlineDuringFailoverIsTimedOut) {
  OpenStore(/*degraded=*/true);
  Fill();
  BreakReplica(/*shard=*/0, /*replica=*/0);
  QueryContext control;
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(rows.empty());
  EXPECT_TRUE(report.skipped.empty());  // a stop is never a degraded skip
  for (int region = 0; region < 4; ++region) {
    EXPECT_EQ(store_->Health(region).failed_attempts, 0u)
        << "region " << region;
  }
}

// ---- anti-entropy scrub ----

TEST_F(RegionStoreReplicaTest, ScrubRebuildsCorruptReplica) {
  OpenStore(/*degraded=*/false);
  Fill();
  std::vector<Row> before;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &before).ok());
  ASSERT_EQ(before.size(), 40u);

  CorruptReplicaTables(/*shard=*/1, /*replica=*/1);
  ScrubReport report;
  ASSERT_TRUE(store_->ScrubReplicas(&report).ok());
  EXPECT_EQ(report.regions_checked, 4u);
  EXPECT_EQ(report.corrupt_replicas, 1u);
  EXPECT_EQ(report.replicas_rebuilt, 1u);
  EXPECT_EQ(report.rows_copied, 10u);
  // The old tree is quarantined, never destroyed.
  EXPECT_TRUE(env_.FileExists(ReplicaDir(1, 1) + ".bad"));

  const RegionHealth health = store_->Health(1);
  EXPECT_EQ(health.replicas[1].rebuilds, 1u);
  EXPECT_FALSE(health.replicas[1].offline);
  EXPECT_GE(store_->TotalIoStats().replicas_rebuilt, 1u);
  EXPECT_GE(store_->TotalIoStats().scrub_rounds, 1u);

  // The rebuilt replica serves byte-identical results: reopen the store
  // (so nothing is served from warm caches) and break replica 0, so
  // region 1 can only answer from the rebuild.
  store_.reset();
  OpenStore(/*degraded=*/false);
  BreakReplica(/*shard=*/1, /*replica=*/0);
  std::vector<Row> after;
  ScanReport scan_report;
  ASSERT_TRUE(
      store_->Scan({ScanRange{"", ""}}, nullptr, &after, &scan_report).ok());
  auto by_key = [](const Row& a, const Row& b) { return a.key < b.key; };
  std::sort(before.begin(), before.end(), by_key);
  std::sort(after.begin(), after.end(), by_key);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].value, before[i].value);
  }
  EXPECT_EQ(scan_report.regions[1].served_replica, 1);
}

TEST_F(RegionStoreReplicaTest, ScrubRebuildsDivergentReplica) {
  OpenStore(/*degraded=*/false);
  Fill();
  // Manufacture divergence: drop one row directly from replica 1 of
  // region 2 — readable and checksum-clean, but behind its peer (the
  // shape a failed half-applied write leaves).
  store_.reset();
  {
    Options db_options;
    db_options.env = &env_;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(db_options, ReplicaDir(2, 1), &db).ok());
    std::string key(1, static_cast<char>(2));
    key += "k3";
    ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  OpenStore(/*degraded=*/false);

  ScrubReport report;
  ASSERT_TRUE(store_->ScrubReplicas(&report).ok());
  EXPECT_EQ(report.divergent_replicas, 1u);
  EXPECT_EQ(report.replicas_rebuilt, 1u);
  EXPECT_EQ(report.rows_copied, 10u);  // restored from the fuller peer

  BreakReplica(/*shard=*/2, /*replica=*/0);
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 40u);  // the dropped row is back
}

TEST_F(RegionStoreReplicaTest, ScrubBackfillsReplicaAddedToExistingStore) {
  // Raising the factor on an existing store opens empty new replicas;
  // the scrub populates them from the original copy.
  OpenStore(/*degraded=*/false, /*factor=*/1);
  Fill();
  store_.reset();
  OpenStore(/*degraded=*/false, /*factor=*/2);
  ScrubReport report;
  ASSERT_TRUE(store_->ScrubReplicas(&report).ok());
  EXPECT_EQ(report.divergent_replicas, 4u);  // every new replica was empty
  EXPECT_EQ(report.replicas_rebuilt, 4u);
  EXPECT_EQ(report.rows_copied, 40u);
  // Every region now serves fully from its second replica.
  for (int shard = 0; shard < 4; ++shard) BreakReplica(shard, 0);
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 40u);
}

TEST_F(RegionStoreReplicaTest, ScrubReportsWhenNoCleanSourceExists) {
  OpenStore(/*degraded=*/false);
  Fill();
  CorruptReplicaTables(/*shard=*/0, /*replica=*/0);
  CorruptReplicaTables(/*shard=*/0, /*replica=*/1);
  ScrubReport report;
  const Status s = store_->ScrubReplicas(&report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("region 0"), std::string::npos) << s.ToString();
  EXPECT_EQ(report.replicas_rebuilt, 0u);  // nothing to rebuild from
}

TEST_F(RegionStoreReplicaTest, ScansStayCompleteDuringConcurrentScrub) {
  // TSan target: readers race the scrub's replica swap. Every scan must
  // return the full result no matter when the rebuild happens.
  OpenStore(/*degraded=*/false, /*factor=*/2, /*scan_threads=*/4);
  Fill();
  CorruptReplicaTables(/*shard=*/0, /*replica=*/1);
  std::atomic<bool> done{false};
  std::atomic<int> bad_scans{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        std::vector<Row> rows;
        const Status s = store_->Scan({ScanRange{"", ""}}, nullptr, &rows);
        if (!s.ok() || rows.size() != 40u) bad_scans.fetch_add(1);
      }
    });
  }
  ScrubReport report;
  const Status scrub = store_->ScrubReplicas(&report);
  done.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(scrub.ok()) << scrub.ToString();
  EXPECT_EQ(report.replicas_rebuilt, 1u);
  EXPECT_EQ(bad_scans.load(), 0);
  // And the rebuilt replica is live again afterwards.
  BreakReplica(/*shard=*/0, /*replica=*/0);
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 40u);
}

}  // namespace
}  // namespace kv
}  // namespace trass
