#include "kv/region_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "kv/fault_injection_env.h"
#include "test_util.h"
#include "util/query_context.h"

namespace trass {
namespace kv {
namespace {

// Keeps rows whose value has even length.
class EvenValueFilter final : public ScanFilter {
 public:
  bool Keep(const Slice&, const Slice& value) const override {
    return value.size() % 2 == 0;
  }
};

class RegionStoreTest : public ::testing::Test {
 protected:
  RegionStoreTest() : dir_("region_store") {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 16 * 1024;
    EXPECT_TRUE(
        RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  static std::string Key(int shard, const std::string& rest) {
    std::string key(1, static_cast<char>(shard));
    key += rest;
    return key;
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreTest, PutGetRoutesByShard) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_
                    ->Put(WriteOptions(), Key(shard, "k"),
                          "v" + std::to_string(shard))
                    .ok());
  }
  for (int shard = 0; shard < 4; ++shard) {
    std::string value;
    ASSERT_TRUE(store_->Get(ReadOptions(), Key(shard, "k"), &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(shard));
  }
}

TEST_F(RegionStoreTest, RejectsOutOfRangeShard) {
  EXPECT_FALSE(store_->Put(WriteOptions(), Key(9, "k"), "v").ok());
  EXPECT_FALSE(store_->Put(WriteOptions(), "", "v").ok());
}

TEST_F(RegionStoreTest, ScanReplicatesRangeAcrossShards) {
  // Each shard gets keys 00..99; a range scan without a shard byte must
  // return matches from every shard.
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 100; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%02d", i);
      ASSERT_TRUE(
          store_->Put(WriteOptions(), Key(shard, buf), "value").ok());
    }
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"10", "20"}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 4u * 10u);
  for (const Row& row : rows) {
    const std::string rest = row.key.substr(1);
    EXPECT_GE(rest, "10");
    EXPECT_LT(rest, "20");
  }
}

TEST_F(RegionStoreTest, ScanAppliesPushdownFilter) {
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "a"), "xx").ok());    // even
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "b"), "xxx").ok());   // odd
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(1, "c"), "xxxx").ok());  // even
  EvenValueFilter filter;
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, &filter, &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(RegionStoreTest, MultipleRangesInOneScan) {
  for (int i = 0; i < 50; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%02d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_
                  ->Scan({ScanRange{"05", "10"}, ScanRange{"40", "45"}},
                         nullptr, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(RegionStoreTest, ScanWithLimitStopsEarly) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(
      store_->ScanWithLimit({ScanRange{"", ""}}, nullptr, 5, &rows).ok());
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(RegionStoreTest, IoStatsAggregateAcrossRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  store_->ResetIoStats();
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(store_->TotalIoStats().rows_scanned, 4u);
}

TEST_F(RegionStoreTest, FlushPersistsAllRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_GT(store_->TotalTableBytes(), 0u);
}

// Fixture for availability tests: the store's regions live on a
// FaultInjectionEnv so individual regions can be made to fail.
class RegionStoreFaultTest : public ::testing::Test {
 protected:
  RegionStoreFaultTest()
      : dir_("region_store_fault"), env_(Env::Default()) {}

  void OpenStore(bool degraded) {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = 2;
    options.max_scan_retries = 2;
    options.retry_backoff_ms = 1;
    options.degraded_scans = degraded;
    options.db_options.env = &env_;
    ASSERT_TRUE(
        RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
    // Ten rows per region, flushed so scans must read table files (where
    // the injected faults live).
    for (int shard = 0; shard < 4; ++shard) {
      for (int i = 0; i < 10; ++i) {
        std::string key(1, static_cast<char>(shard));
        key += "k" + std::to_string(i);
        ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
      }
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  // Makes every table read in region `shard` fail until faults clear.
  void BreakRegion(int shard) {
    for (FaultOp op : {FaultOp::kOpenRead, FaultOp::kRead}) {
      FaultPoint fault;
      fault.op = op;
      fault.permanent = true;
      fault.path_substring = "region-" + std::to_string(shard);
      env_.InjectFault(fault);
    }
  }

  trass::testing::ScratchDir dir_;
  FaultInjectionEnv env_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreFaultTest, DegradedScanSkipsFailedRegionAndReportsIt) {
  OpenStore(/*degraded=*/true);
  BreakRegion(2);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  // All rows from the three healthy regions, none from the broken one.
  EXPECT_EQ(rows.size(), 30u);
  for (const Row& row : rows) {
    EXPECT_NE(row.key[0], 2) << "row from the skipped region";
  }
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  EXPECT_NE(report.skipped[0].error.find("region 2"), std::string::npos)
      << report.skipped[0].error;
  EXPECT_FALSE(report.complete());
  // 1 initial attempt + 2 retries, all failed, then one skip.
  const RegionHealth health = store_->Health(2);
  EXPECT_EQ(health.failed_attempts, 3u);
  EXPECT_EQ(health.consecutive_failures, 3u);
  EXPECT_EQ(health.skipped_scans, 1u);
  EXPECT_FALSE(health.last_error.empty());
  EXPECT_GE(report.retries, 2u);
  EXPECT_EQ(store_->Health(0).failed_attempts, 0u);
}

TEST_F(RegionStoreFaultTest, NonDegradedScanReturnsAttributedError) {
  OpenStore(/*degraded=*/false);
  BreakRegion(2);
  std::vector<Row> rows;
  ScanReport report;
  const Status s = store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("region 2"), std::string::npos)
      << s.ToString();
  EXPECT_TRUE(rows.empty());  // no partial rows without opting in
  EXPECT_TRUE(report.skipped.empty());
}

TEST_F(RegionStoreFaultTest, TransientFaultHealsViaRetry) {
  OpenStore(/*degraded=*/false);
  FaultPoint fault;  // one-shot: first table open in region 1 fails
  fault.op = FaultOp::kOpenRead;
  fault.path_substring = "region-1";
  env_.InjectFault(fault);
  std::vector<Row> rows;
  ScanReport report;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report).ok());
  EXPECT_EQ(rows.size(), 40u);  // retry recovered the full result
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(report.complete());
  const RegionHealth health = store_->Health(1);
  EXPECT_EQ(health.failed_attempts, 1u);
  EXPECT_EQ(health.consecutive_failures, 0u);  // cleared by the success
  EXPECT_EQ(health.skipped_scans, 0u);
}

TEST_F(RegionStoreFaultTest, GetAttributesErrorToRegion) {
  OpenStore(/*degraded=*/true);
  BreakRegion(3);
  std::string value;
  std::string key(1, static_cast<char>(3));
  key += "k0";
  const Status s = store_->Get(ReadOptions(), key, &value);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("region 3"), std::string::npos)
      << s.ToString();
}

TEST_F(RegionStoreFaultTest, VerifyIntegrityCoversEveryRegion) {
  OpenStore(/*degraded=*/true);
  EXPECT_TRUE(store_->VerifyIntegrity().ok());
}

// ---- cooperative cancellation ----

// A pushdown filter that raises the query's cancel flag after `trigger`
// rows — deterministic mid-scan cancellation without timing assumptions.
class CancelAfterFilter final : public ScanFilter {
 public:
  CancelAfterFilter(std::atomic<bool>* cancel, uint64_t trigger)
      : cancel_(cancel), trigger_(trigger) {}

  bool Keep(const Slice&, const Slice&) const override {
    if (seen_.fetch_add(1) + 1 >= trigger_) cancel_->store(true);
    return true;
  }

 private:
  std::atomic<bool>* cancel_;
  const uint64_t trigger_;
  mutable std::atomic<uint64_t> seen_{0};
};

class RegionStoreControlTest : public RegionStoreTest {
 protected:
  // Enough rows in one region that the worker's per-128-row control poll
  // fires several times mid-scan.
  void FillShardZero(int rows) {
    for (int i = 0; i < rows; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%04d", i);
      ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
    }
  }
};

TEST_F(RegionStoreControlTest, ExpiredDeadlineFailsScanWithTimedOut) {
  FillShardZero(64);
  QueryContext control;
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(rows.empty());  // gathered rows discarded on a stop
  EXPECT_TRUE(report.skipped.empty());  // a stop is not a degraded skip
}

TEST_F(RegionStoreControlTest, MidScanCancelStopsWorkerAtCheckInterval) {
  FillShardZero(1000);
  std::atomic<bool> cancel{false};
  CancelAfterFilter filter(&cancel, /*trigger=*/1);
  QueryContext control;
  control.SetCancelFlag(&cancel);
  std::vector<Row> rows;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, &filter, &rows, nullptr, &control);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(rows.empty());
}

TEST_F(RegionStoreControlTest, CandidateBudgetStopsScanWithBusy) {
  FillShardZero(500);
  QueryContext control;
  control.SetCandidateBudget(10);
  std::vector<Row> rows;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, nullptr, &control);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(s.IsQueryStop());
  EXPECT_TRUE(rows.empty());
}

TEST_F(RegionStoreControlTest, UnarmedControlScansCompletely) {
  FillShardZero(300);
  QueryContext control;  // nothing armed: must behave like no control
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows, nullptr,
                           &control)
                  .ok());
  EXPECT_EQ(rows.size(), 300u);
}

TEST_F(RegionStoreFaultTest, QueryStopIsNeverCountedAsRegionFault) {
  OpenStore(/*degraded=*/true);
  QueryContext control;
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<Row> rows;
  ScanReport report;
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  // Degraded mode must not "skip" regions over a deadline, and region
  // health must not blame storage for a caller-attributed stop.
  EXPECT_TRUE(report.skipped.empty());
  for (int region = 0; region < 4; ++region) {
    const RegionHealth health = store_->Health(region);
    EXPECT_EQ(health.failed_attempts, 0u) << "region " << region;
    EXPECT_EQ(health.skipped_scans, 0u) << "region " << region;
  }
}

TEST_F(RegionStoreFaultTest, DeadlineDuringRetriesStillSkipsBrokenRegion) {
  // A deadline that expires while the broken region sleeps between
  // retries stops the retrying, but the *fault* outcome stands: degraded
  // mode skips the region and the healthy rows are returned — the caller
  // sees OK + a skip report, and decides the partial policy itself.
  RegionStore::RegionOptions options;
  options.num_regions = 4;
  options.scan_threads = 4;  // healthy regions finish while 2 retries
  options.max_scan_retries = 3;
  options.retry_backoff_ms = 64;
  options.degraded_scans = true;
  options.db_options.env = &env_;
  ASSERT_TRUE(
      RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 10; ++i) {
      std::string key(1, static_cast<char>(shard));
      key += "k" + std::to_string(i);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
    }
  }
  ASSERT_TRUE(store_->Flush().ok());
  BreakRegion(2);

  QueryContext control;
  control.SetDeadlineAfterMillis(30.0);
  std::vector<Row> rows;
  ScanReport report;
  const auto start = std::chrono::steady_clock::now();
  const Status s =
      store_->Scan({ScanRange{"", ""}}, nullptr, &rows, &report, &control);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rows.size(), 30u);  // the three healthy regions
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].shard, 2);
  EXPECT_GE(report.retries, 1u);
  // The deadline clamps the backoff sleeps: total retry time collapses
  // to roughly the 30ms budget instead of the 64+100+100ms schedule.
  EXPECT_LT(elapsed_ms, 150.0);
  EXPECT_EQ(store_->Health(2).skipped_scans, 1u);
}

}  // namespace
}  // namespace kv
}  // namespace trass
