#include "kv/region_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "test_util.h"

namespace trass {
namespace kv {
namespace {

// Keeps rows whose value has even length.
class EvenValueFilter final : public ScanFilter {
 public:
  bool Keep(const Slice&, const Slice& value) const override {
    return value.size() % 2 == 0;
  }
};

class RegionStoreTest : public ::testing::Test {
 protected:
  RegionStoreTest() : dir_("region_store") {
    RegionStore::RegionOptions options;
    options.num_regions = 4;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 16 * 1024;
    EXPECT_TRUE(
        RegionStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  static std::string Key(int shard, const std::string& rest) {
    std::string key(1, static_cast<char>(shard));
    key += rest;
    return key;
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<RegionStore> store_;
};

TEST_F(RegionStoreTest, PutGetRoutesByShard) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_
                    ->Put(WriteOptions(), Key(shard, "k"),
                          "v" + std::to_string(shard))
                    .ok());
  }
  for (int shard = 0; shard < 4; ++shard) {
    std::string value;
    ASSERT_TRUE(store_->Get(ReadOptions(), Key(shard, "k"), &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(shard));
  }
}

TEST_F(RegionStoreTest, RejectsOutOfRangeShard) {
  EXPECT_FALSE(store_->Put(WriteOptions(), Key(9, "k"), "v").ok());
  EXPECT_FALSE(store_->Put(WriteOptions(), "", "v").ok());
}

TEST_F(RegionStoreTest, ScanReplicatesRangeAcrossShards) {
  // Each shard gets keys 00..99; a range scan without a shard byte must
  // return matches from every shard.
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 100; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%02d", i);
      ASSERT_TRUE(
          store_->Put(WriteOptions(), Key(shard, buf), "value").ok());
    }
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"10", "20"}}, nullptr, &rows).ok());
  EXPECT_EQ(rows.size(), 4u * 10u);
  for (const Row& row : rows) {
    const std::string rest = row.key.substr(1);
    EXPECT_GE(rest, "10");
    EXPECT_LT(rest, "20");
  }
}

TEST_F(RegionStoreTest, ScanAppliesPushdownFilter) {
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "a"), "xx").ok());    // even
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, "b"), "xxx").ok());   // odd
  ASSERT_TRUE(store_->Put(WriteOptions(), Key(1, "c"), "xxxx").ok());  // even
  EvenValueFilter filter;
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, &filter, &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(RegionStoreTest, MultipleRangesInOneScan) {
  for (int i = 0; i < 50; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%02d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(store_
                  ->Scan({ScanRange{"05", "10"}, ScanRange{"40", "45"}},
                         nullptr, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(RegionStoreTest, ScanWithLimitStopsEarly) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(0, buf), "v").ok());
  }
  std::vector<Row> rows;
  ASSERT_TRUE(
      store_->ScanWithLimit({ScanRange{"", ""}}, nullptr, 5, &rows).ok());
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(RegionStoreTest, IoStatsAggregateAcrossRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  store_->ResetIoStats();
  std::vector<Row> rows;
  ASSERT_TRUE(store_->Scan({ScanRange{"", ""}}, nullptr, &rows).ok());
  EXPECT_EQ(store_->TotalIoStats().rows_scanned, 4u);
}

TEST_F(RegionStoreTest, FlushPersistsAllRegions) {
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(shard, "k"), "v").ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_GT(store_->TotalTableBytes(), 0u);
}

}  // namespace
}  // namespace kv
}  // namespace trass
