#include "core/row_codec.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

TEST(RowCodecTest, KeyRoundTrip) {
  const std::string key = EncodeRowKey(5, 123456789012345ll, 42);
  EXPECT_EQ(key.size(), 17u);
  uint8_t shard;
  int64_t value;
  uint64_t tid;
  ASSERT_TRUE(DecodeRowKey(key, &shard, &value, &tid).ok());
  EXPECT_EQ(shard, 5);
  EXPECT_EQ(value, 123456789012345ll);
  EXPECT_EQ(tid, 42u);
}

TEST(RowCodecTest, KeyOrderMatchesValueThenTidOrder) {
  Random rnd(91);
  for (int iter = 0; iter < 2000; ++iter) {
    const int64_t v1 = static_cast<int64_t>(rnd.Uniform(1ll << 40));
    const int64_t v2 = static_cast<int64_t>(rnd.Uniform(1ll << 40));
    const uint64_t t1 = rnd.Uniform(1000);
    const uint64_t t2 = rnd.Uniform(1000);
    const std::string k1 = EncodeRowKey(3, v1, t1);
    const std::string k2 = EncodeRowKey(3, v2, t2);
    const bool numeric_less = v1 < v2 || (v1 == v2 && t1 < t2);
    ASSERT_EQ(numeric_less, k1 < k2);
  }
}

TEST(RowCodecTest, IndexValueRangeCoversAllTids) {
  std::string start, end;
  IndexValueRange(100, 200, &start, &end);
  // Any key with value in [100, 200] falls inside [start, end).
  for (int64_t v : {100ll, 150ll, 200ll}) {
    for (uint64_t tid : {0ull, 1ull, ~0ull}) {
      const std::string key = EncodeRowKey(0, v, tid);
      const std::string shardless = key.substr(1);
      EXPECT_GE(shardless, start);
      EXPECT_LT(shardless, end);
    }
  }
  // Boundary values fall outside.
  EXPECT_LT(EncodeRowKey(0, 99, ~0ull).substr(1), start);
  EXPECT_GE(EncodeRowKey(0, 201, 0).substr(1), end);
}

TEST(RowCodecTest, DecodeRowKeyRejectsBadLength) {
  uint8_t shard;
  int64_t value;
  uint64_t tid;
  EXPECT_FALSE(DecodeRowKey(Slice("short"), &shard, &value, &tid).ok());
}

TEST(RowCodecTest, ValueRoundTrip) {
  Random rnd(93);
  for (int iter = 0; iter < 200; ++iter) {
    const auto t = trass::testing::RandomTrajectory(&rnd, 7, 40).points;
    const DpFeatures f = DpFeatures::Compute(t, 0.01);
    const std::string encoded = EncodeRowValue(t, f);
    std::vector<geo::Point> points;
    DpFeatures decoded;
    ASSERT_TRUE(DecodeRowValue(encoded, &points, &decoded).ok());
    ASSERT_EQ(points.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(points[i], t[i]);
    }
    ASSERT_EQ(decoded.rep_indices, f.rep_indices);
    ASSERT_EQ(decoded.rep_points.size(), f.rep_points.size());
    ASSERT_EQ(decoded.boxes.size(), f.boxes.size());
    for (size_t i = 0; i < f.boxes.size(); ++i) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(decoded.boxes[i].corner(c), f.boxes[i].corner(c));
      }
    }
  }
}

TEST(RowCodecTest, FullRowRoundTrip) {
  Random rnd(95);
  const auto points = trass::testing::RandomTrajectory(&rnd, 77, 25).points;
  const DpFeatures f = DpFeatures::Compute(points, 0.01);
  const std::string key = EncodeRowKey(2, 9999, 77);
  const std::string value = EncodeRowValue(points, f);
  StoredTrajectory decoded;
  ASSERT_TRUE(DecodeRow(key, value, &decoded).ok());
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.points.size(), points.size());
}

TEST(RowCodecTest, DecodeValueRejectsCorruption) {
  Random rnd(97);
  const auto points = trass::testing::RandomTrajectory(&rnd, 1, 10).points;
  const DpFeatures f = DpFeatures::Compute(points, 0.01);
  std::string encoded = EncodeRowValue(points, f);
  std::vector<geo::Point> out;
  DpFeatures fout;
  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t cut = 0; cut + 1 < encoded.size(); cut += 7) {
    const std::string truncated = encoded.substr(0, cut);
    DecodeRowValue(truncated, &out, &fout);  // status checked, no crash
  }
  // Out-of-range dp index.
  std::string bad = EncodeRowValue(points, f);
  // Corrupt the representative count region heuristically: append junk and
  // verify a clean parse of the original still works.
  ASSERT_TRUE(DecodeRowValue(Slice(bad), &out, &fout).ok());
}

TEST(RowCodecTest, StringKeyLongerThanIntegerKeyAtHighResolution) {
  // The paper's Figure 13(c): integer keys beat string keys.
  index::XzStar xz(16);
  std::vector<geo::Point> points = {{0.50001, 0.50001}, {0.50002, 0.50002}};
  const index::XzStar::IndexSpace space = xz.Index(points);
  ASSERT_EQ(space.seq.length(), 16);
  const std::string int_key = EncodeRowKey(0, xz.Encode(space), 1);
  const std::string str_key = EncodeStringRowKey(0, space, 1);
  EXPECT_EQ(int_key.size(), 17u);
  EXPECT_EQ(str_key.size(), 1u + 16u + 1u + 8u);
  EXPECT_LT(int_key.size(), str_key.size());
}

}  // namespace
}  // namespace core
}  // namespace trass
