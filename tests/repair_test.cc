// DB::Repair: rebuilding a usable manifest from surviving SSTable
// footers after the manifest/CURRENT chain is lost or corrupted, and
// quarantining tables that fail their checksum walk.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/db.h"
#include "kv/filename.h"
#include "test_util.h"

namespace trass {
namespace kv {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() : dir_("repair") {}

  std::string DbPath() const { return dir_.path() + "/db"; }

  static std::string KeyOf(const std::string& prefix, int i) {
    return prefix + "-" + std::to_string(i);
  }
  static std::string ValueOf(int i) {
    return std::string(16 + i % 40, 'a' + i % 26);
  }

  void FillAndClose(const std::string& prefix, int count, bool flush) {
    Options options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), KeyOf(prefix, i), ValueOf(i)).ok());
    }
    if (flush) ASSERT_TRUE(db->Flush().ok());
  }

  std::vector<std::string> FilesOfType(FileType want) {
    std::vector<std::string> children;
    EXPECT_TRUE(Env::Default()->GetChildren(DbPath(), &children).ok());
    std::vector<std::string> paths;
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) && type == want) {
        paths.push_back(DbPath() + "/" + child);
      }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
  }

  void CorruptMiddle(const std::string& path) {
    std::string contents;
    ASSERT_TRUE(Env::Default()->ReadFileToString(path, &contents).ok());
    ASSERT_GT(contents.size(), 64u);
    for (size_t i = contents.size() / 2; i < contents.size() / 2 + 32; ++i) {
      contents[i] = static_cast<char>(contents[i] ^ 0xff);
    }
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFile(contents, path, /*sync=*/false)
                    .ok());
  }

  void ExpectKeys(DB* db, const std::string& prefix, int count,
                  bool present) {
    for (int i = 0; i < count; ++i) {
      std::string value;
      const Status s = db->Get(ReadOptions(), KeyOf(prefix, i), &value);
      if (present) {
        ASSERT_TRUE(s.ok()) << KeyOf(prefix, i) << ": " << s.ToString();
        EXPECT_EQ(value, ValueOf(i));
      } else {
        EXPECT_TRUE(s.IsNotFound()) << KeyOf(prefix, i);
      }
    }
  }

  trass::testing::ScratchDir dir_;
};

TEST_F(RepairTest, RebuildsAfterManifestCorruption) {
  FillAndClose("key", 200, /*flush=*/true);
  const auto manifests = FilesOfType(FileType::kManifestFile);
  ASSERT_EQ(manifests.size(), 1u);
  // Smash the magic: Open must refuse the manifest, Repair must rebuild
  // it from the surviving table.
  std::string contents;
  ASSERT_TRUE(
      Env::Default()->ReadFileToString(manifests[0], &contents).ok());
  for (int i = 0; i < 8; ++i) contents[i] = 'X';
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(contents, manifests[0], false)
                  .ok());

  Options options;
  std::unique_ptr<DB> db;
  ASSERT_FALSE(DB::Open(options, DbPath(), &db).ok());
  ASSERT_TRUE(DB::Repair(options, DbPath()).ok());
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  ExpectKeys(db.get(), "key", 200, /*present=*/true);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(RepairTest, RecoversTablesOrphanedByMissingCurrent) {
  FillAndClose("key", 150, /*flush=*/true);
  ASSERT_TRUE(Env::Default()->RemoveFile(CurrentFileName(DbPath())).ok());
  // Plain Open treats a CURRENT-less directory as a fresh store and the
  // flushed tables stay orphaned; Repair readopts them.
  ASSERT_TRUE(DB::Repair(Options(), DbPath()).ok());
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  ExpectKeys(db.get(), "key", 150, /*present=*/true);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(RepairTest, QuarantinesCorruptTableAndSalvagesTheRest) {
  FillAndClose("aaa", 120, /*flush=*/true);
  FillAndClose("bbb", 120, /*flush=*/true);
  const auto tables = FilesOfType(FileType::kTableFile);
  ASSERT_EQ(tables.size(), 2u);
  // Lower file number == earlier flush == the "aaa" batch.
  CorruptMiddle(tables[0]);
  ASSERT_TRUE(Env::Default()->RemoveFile(CurrentFileName(DbPath())).ok());

  ASSERT_TRUE(DB::Repair(Options(), DbPath()).ok());
  EXPECT_TRUE(Env::Default()->FileExists(tables[0] + ".bad"));
  EXPECT_FALSE(Env::Default()->FileExists(tables[0]));

  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  ExpectKeys(db.get(), "bbb", 120, /*present=*/true);
  ExpectKeys(db.get(), "aaa", 120, /*present=*/false);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_F(RepairTest, OverlappingFlushesKeepNewestValueAfterRepair) {
  // Same keys written in two flush generations: Repair installs both
  // tables at L0, where the higher file number must shadow the lower.
  {
    Options options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put(WriteOptions(), KeyOf("key", i), "old").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), KeyOf("key", i), ValueOf(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(Env::Default()->RemoveFile(CurrentFileName(DbPath())).ok());
  ASSERT_TRUE(DB::Repair(Options(), DbPath()).ok());
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  ExpectKeys(db.get(), "key", 50, /*present=*/true);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace kv
}  // namespace trass
