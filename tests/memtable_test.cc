#include "kv/memtable.h"

#include <gtest/gtest.h>

#include <memory>

namespace trass {
namespace kv {
namespace {

TEST(MemTableTest, EmptyGetMisses) {
  MemTable mem;
  std::string value;
  Status status;
  EXPECT_FALSE(mem.Get("key", 100, &value, &status));
  EXPECT_TRUE(mem.empty());
}

TEST(MemTableTest, AddThenGet) {
  MemTable mem;
  mem.Add(1, kTypeValue, "key", "value");
  std::string value;
  Status status;
  ASSERT_TRUE(mem.Get("key", 100, &value, &status));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(value, "value");
  EXPECT_FALSE(mem.empty());
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mem;
  mem.Add(1, kTypeValue, "key", "v1");
  mem.Add(2, kTypeValue, "key", "v2");
  std::string value;
  Status status;
  ASSERT_TRUE(mem.Get("key", 100, &value, &status));
  EXPECT_EQ(value, "v2");
}

TEST(MemTableTest, SnapshotSequenceRespected) {
  MemTable mem;
  mem.Add(5, kTypeValue, "key", "old");
  mem.Add(9, kTypeValue, "key", "new");
  std::string value;
  Status status;
  ASSERT_TRUE(mem.Get("key", 7, &value, &status));
  EXPECT_EQ(value, "old");
  ASSERT_TRUE(mem.Get("key", 9, &value, &status));
  EXPECT_EQ(value, "new");
}

TEST(MemTableTest, DeletionShadowsValue) {
  MemTable mem;
  mem.Add(1, kTypeValue, "key", "v");
  mem.Add(2, kTypeDeletion, "key", "");
  std::string value;
  Status status;
  ASSERT_TRUE(mem.Get("key", 100, &value, &status));
  EXPECT_TRUE(status.IsNotFound());
}

TEST(MemTableTest, IteratorYieldsInternalKeyOrder) {
  MemTable mem;
  mem.Add(3, kTypeValue, "b", "vb");
  mem.Add(1, kTypeValue, "a", "va");
  mem.Add(2, kTypeValue, "c", "vc");
  std::unique_ptr<Iterator> iter(mem.NewIterator());
  iter->SeekToFirst();
  std::vector<std::string> keys;
  for (; iter->Valid(); iter->Next()) {
    keys.push_back(ExtractUserKey(iter->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemTableTest, IteratorSeek) {
  MemTable mem;
  for (int i = 0; i < 100; i += 2) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    mem.Add(static_cast<SequenceNumber>(i + 1), kTypeValue, buf, "v");
  }
  std::unique_ptr<Iterator> iter(mem.NewIterator());
  iter->Seek(MakeLookupKey("k011", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "k012");
}

TEST(MemTableTest, EmptyValueAndBinaryKeys) {
  MemTable mem;
  const std::string binary_key("a\0b\xff", 4);
  mem.Add(1, kTypeValue, binary_key, "");
  std::string value = "sentinel";
  Status status;
  ASSERT_TRUE(mem.Get(binary_key, 10, &value, &status));
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(value.empty());
}

}  // namespace
}  // namespace kv
}  // namespace trass
