#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace trass {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&count](size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace trass
