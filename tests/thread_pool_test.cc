#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace trass {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&count](size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsFailedFuture) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  auto future = pool.Submit([&ran] { ran = true; });
  EXPECT_THROW(future.get(), std::runtime_error);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDrainsQueued) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  for (auto& f : futures) f.get();  // queued work still ran
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(32, [&completed](size_t i) {
      if (i == 7) throw std::runtime_error("task 7 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // Every non-throwing task that started must have finished before the
  // rethrow (no task may outlive the call and touch dead stack locals).
  EXPECT_LE(completed.load(), 31);
}

TEST(ThreadPoolTest, CancellationAwareParallelForSkipsUnstartedIndices) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::atomic<size_t> ran{0};
  const size_t count = pool.ParallelFor(
      1000,
      [&](size_t) {
        if (ran.fetch_add(1) + 1 >= 10) stop.store(true);
      },
      [&stop] { return stop.load(); });
  EXPECT_EQ(count, ran.load());
  EXPECT_GE(count, 10u);
  EXPECT_LT(count, 1000u);  // the stop flag pruned the tail
}

TEST(ThreadPoolTest, CancellationAwareParallelForRunsAllWithoutStop) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  const size_t count = pool.ParallelFor(
      64, [&ran](size_t) { ran.fetch_add(1); }, [] { return false; });
  EXPECT_EQ(count, 64u);
  EXPECT_EQ(ran.load(), 64u);
}

}  // namespace
}  // namespace trass
