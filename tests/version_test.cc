#include "kv/version.h"

#include <gtest/gtest.h>

#include "kv/dbformat.h"
#include "test_util.h"

namespace trass {
namespace kv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, kTypeValue);
  return k;
}

FileMetaData File(uint64_t number, const std::string& smallest,
                  const std::string& largest, uint64_t size = 1000) {
  FileMetaData f;
  f.number = number;
  f.file_size = size;
  f.smallest = IKey(smallest);
  f.largest = IKey(largest);
  return f;
}

TEST(VersionTest, OverlappingSelectsByUserKeyRange) {
  Version v;
  v.files[1] = {File(1, "a", "c"), File(2, "e", "g"), File(3, "i", "k")};
  auto hits = v.Overlapping(1, "f", "j");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].number, 2u);
  EXPECT_EQ(hits[1].number, 3u);
  // Boundary touch counts as overlap.
  EXPECT_EQ(v.Overlapping(1, "c", "c").size(), 1u);
  // Unbounded sides.
  EXPECT_EQ(v.Overlapping(1, Slice(), Slice()).size(), 3u);
  EXPECT_EQ(v.Overlapping(1, "h", Slice()).size(), 1u);
  EXPECT_EQ(v.Overlapping(1, Slice(), "d").size(), 1u);
}

TEST(VersionTest, LevelAccounting) {
  Version v;
  v.files[2] = {File(1, "a", "b", 500), File(2, "c", "d", 700)};
  EXPECT_EQ(v.LevelBytes(2), 1200u);
  EXPECT_EQ(v.NumFiles(2), 2);
  EXPECT_EQ(v.NumFiles(3), 0);
}

class VersionSetTest : public ::testing::Test {
 protected:
  VersionSetTest() : dir_("version_set") {}

  trass::testing::ScratchDir dir_;
};

TEST_F(VersionSetTest, SnapshotRecoverRoundTrip) {
  {
    VersionSet versions(dir_.path(), Env::Default());
    versions.mutable_current()->files[0].push_back(File(7, "k1", "k9"));
    versions.mutable_current()->files[3].push_back(File(9, "a", "z", 4096));
    versions.set_last_sequence(12345);
    versions.set_log_number(42);
    while (versions.next_file_number() < 50) versions.NewFileNumber();
    ASSERT_TRUE(versions.WriteSnapshot().ok());
  }
  VersionSet recovered(dir_.path(), Env::Default());
  bool found = false;
  ASSERT_TRUE(recovered.Recover(&found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(recovered.last_sequence(), 12345u);
  EXPECT_EQ(recovered.log_number(), 42u);
  EXPECT_GE(recovered.next_file_number(), 50u);
  ASSERT_EQ(recovered.current().NumFiles(0), 1);
  EXPECT_EQ(recovered.current().files[0][0].number, 7u);
  ASSERT_EQ(recovered.current().NumFiles(3), 1);
  EXPECT_EQ(recovered.current().files[3][0].file_size, 4096u);
  EXPECT_EQ(ExtractUserKey(Slice(recovered.current().files[3][0].smallest))
                .ToString(),
            "a");
}

TEST_F(VersionSetTest, RecoverWithoutManifestReportsAbsent) {
  VersionSet versions(dir_.path(), Env::Default());
  bool found = true;
  ASSERT_TRUE(versions.Recover(&found).ok());
  EXPECT_FALSE(found);
}

TEST_F(VersionSetTest, CorruptManifestRejected) {
  {
    VersionSet versions(dir_.path(), Env::Default());
    ASSERT_TRUE(versions.WriteSnapshot().ok());
  }
  // Clobber the manifest contents.
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(dir_.path(), &children).ok());
  for (const auto& child : children) {
    if (child.rfind("MANIFEST-", 0) == 0) {
      ASSERT_TRUE(Env::Default()
                      ->WriteStringToFile("garbage-manifest",
                                          dir_.path() + "/" + child, false)
                      .ok());
    }
  }
  VersionSet versions(dir_.path(), Env::Default());
  bool found = false;
  EXPECT_FALSE(versions.Recover(&found).ok());
}

TEST_F(VersionSetTest, PickCompactionLevel) {
  VersionSet versions(dir_.path(), Env::Default());
  Version* v = versions.mutable_current();
  // No files: nothing to compact.
  EXPECT_EQ(versions.PickCompactionLevel(4, 1000), -1);
  // L0 trigger by file count.
  for (int i = 0; i < 4; ++i) {
    v->files[0].push_back(File(10 + i, "a", "b", 10));
  }
  EXPECT_EQ(versions.PickCompactionLevel(4, 1000), 0);
  v->files[0].clear();
  // Level byte budgets: L1 budget = base, L2 = 10x base.
  v->files[1].push_back(File(20, "a", "b", 1500));
  EXPECT_EQ(versions.PickCompactionLevel(4, 1000), 1);
  v->files[1].clear();
  v->files[2].push_back(File(21, "a", "b", 9000));
  EXPECT_EQ(versions.PickCompactionLevel(4, 1000), -1);  // under 10x budget
  v->files[2][0].file_size = 11000;
  EXPECT_EQ(versions.PickCompactionLevel(4, 1000), 2);
}

TEST_F(VersionSetTest, FileNumbersMonotonic) {
  VersionSet versions(dir_.path(), Env::Default());
  const uint64_t a = versions.NewFileNumber();
  const uint64_t b = versions.NewFileNumber();
  EXPECT_LT(a, b);
  versions.BumpFileNumber(100);
  EXPECT_GT(versions.NewFileNumber(), 100u);
  versions.BumpFileNumber(5);  // lower floor is a no-op
  EXPECT_GT(versions.NewFileNumber(), 100u);
}

}  // namespace
}  // namespace kv
}  // namespace trass
