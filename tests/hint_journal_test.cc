// HintJournal: the hinted-handoff WAL behind the coordinator's quorum
// writes — append/retire bookkeeping, durability across reopen, torn
// tails, and compaction of applied history.

#include "serve/hint_journal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/env.h"
#include "test_util.h"

namespace trass {
namespace serve {
namespace {

using core::Trajectory;

std::vector<Trajectory> Rows(uint64_t first_id, size_t count) {
  std::vector<Trajectory> rows(count);
  for (size_t i = 0; i < count; ++i) {
    rows[i].id = first_id + i;
    rows[i].points = {{0.1 * static_cast<double>(i + 1), 0.5}, {0.6, 0.7}};
  }
  return rows;
}

std::unique_ptr<HintJournal> OpenAt(const std::string& dir) {
  HintJournal::Options options;
  options.dir = dir;
  std::unique_ptr<HintJournal> journal;
  EXPECT_TRUE(HintJournal::Open(options, &journal).ok());
  return journal;
}

TEST(HintJournalTest, AppendPendingApplyLifecycle) {
  trass::testing::ScratchDir dir("hint_journal_basic");
  auto journal = OpenAt(dir.path() + "/hints");
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->pending_records(), 0u);
  EXPECT_TRUE(journal->ShardsWithHints().empty());

  uint64_t seq_a = 0, seq_b = 0, seq_c = 0;
  ASSERT_TRUE(journal->Append(2, Rows(10, 3), &seq_a).ok());
  ASSERT_TRUE(journal->Append(0, Rows(20, 1), &seq_b).ok());
  ASSERT_TRUE(journal->Append(2, Rows(30, 2), &seq_c).ok());
  EXPECT_LT(seq_a, seq_b);
  EXPECT_LT(seq_b, seq_c);
  EXPECT_EQ(journal->pending_records(), 3u);
  EXPECT_EQ(journal->ShardsWithHints(), (std::vector<size_t>{0, 2}));

  // Per-shard snapshots come back oldest first with the rows intact.
  const auto shard2 = journal->Pending(2);
  ASSERT_EQ(shard2.size(), 2u);
  EXPECT_EQ(shard2[0].seq, seq_a);
  EXPECT_EQ(shard2[1].seq, seq_c);
  ASSERT_EQ(shard2[0].rows.size(), 3u);
  EXPECT_EQ(shard2[0].rows[1].id, 11u);
  ASSERT_EQ(shard2[0].rows[1].points.size(), 2u);
  EXPECT_DOUBLE_EQ(shard2[0].rows[1].points[0].x, 0.2);

  // Retiring hints removes them; unknown seqs are a harmless no-op.
  ASSERT_TRUE(journal->MarkApplied(seq_a).ok());
  EXPECT_TRUE(journal->MarkApplied(987654).ok());
  EXPECT_EQ(journal->pending_records(), 2u);
  EXPECT_EQ(journal->Pending(2).size(), 1u);

  const auto stats = journal->stats();
  EXPECT_EQ(stats.appended, 3u);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.pending, 2u);
  EXPECT_EQ(stats.pending_rows, 3u);  // 1 (shard 0) + 2 (shard 2)

  // An empty hint is a caller bug, not a record.
  EXPECT_TRUE(journal->Append(1, {}).IsInvalidArgument());
}

TEST(HintJournalTest, PendingHintsSurviveReopenAppliedDoNot) {
  trass::testing::ScratchDir dir("hint_journal_reopen");
  const std::string path = dir.path() + "/hints";
  uint64_t retired = 0;
  {
    auto journal = OpenAt(path);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Append(1, Rows(100, 2), &retired).ok());
    ASSERT_TRUE(journal->Append(0, Rows(200, 1)).ok());
    ASSERT_TRUE(journal->Append(1, Rows(300, 4)).ok());
    ASSERT_TRUE(journal->MarkApplied(retired).ok());
  }
  auto journal = OpenAt(path);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->pending_records(), 2u);
  EXPECT_EQ(journal->stats().recovered, 2u);
  EXPECT_TRUE(journal->Pending(1).size() == 1 &&
              journal->Pending(1)[0].rows.size() == 4u)
      << "applied hint came back from the dead";
  // Sequence numbers keep advancing past everything recovered, so a
  // replayed MarkApplied can never retire a fresh hint by accident.
  uint64_t fresh = 0;
  ASSERT_TRUE(journal->Append(2, Rows(400, 1), &fresh).ok());
  EXPECT_GT(fresh, retired);
  EXPECT_EQ(journal->pending_records(), 3u);
}

TEST(HintJournalTest, ToleratesATornTail) {
  trass::testing::ScratchDir dir("hint_journal_torn");
  const std::string path = dir.path() + "/hints";
  {
    auto journal = OpenAt(path);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->Append(0, Rows(1, 2)).ok());
    ASSERT_TRUE(journal->Append(1, Rows(10, 2)).ok());
  }
  // Crash mid-append: chop bytes off the log's tail.
  kv::Env* env = kv::Env::Default();
  const std::string log = path + "/hints.log";
  uint64_t size = 0;
  ASSERT_TRUE(env->GetFileSize(log, &size).ok());
  ASSERT_GT(size, 6u);
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(log, &contents).ok());
  ASSERT_EQ(contents.size(), size);
  {
    std::unique_ptr<kv::WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(log, &file).ok());
    ASSERT_TRUE(file->Append(Slice(contents.data(), size - 5)).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto journal = OpenAt(path);
  ASSERT_NE(journal, nullptr);
  // The fully-synced first record survives; the torn second one is
  // dropped cleanly instead of poisoning recovery.
  EXPECT_EQ(journal->pending_records(), 1u);
  ASSERT_EQ(journal->Pending(0).size(), 1u);
  EXPECT_EQ(journal->Pending(0)[0].rows.size(), 2u);
}

TEST(HintJournalTest, DrainingTheBacklogCompactsTheLog) {
  trass::testing::ScratchDir dir("hint_journal_compact");
  const std::string path = dir.path() + "/hints";
  kv::Env* env = kv::Env::Default();
  auto journal = OpenAt(path);
  ASSERT_NE(journal, nullptr);
  std::vector<uint64_t> seqs(8);
  for (size_t i = 0; i < seqs.size(); ++i) {
    ASSERT_TRUE(journal->Append(i % 3, Rows(i * 10, 2), &seqs[i]).ok());
  }
  uint64_t full_size = 0;
  ASSERT_TRUE(env->GetFileSize(path + "/hints.log", &full_size).ok());
  const uint64_t compactions_before = journal->stats().compactions;
  for (uint64_t seq : seqs) {
    ASSERT_TRUE(journal->MarkApplied(seq).ok());
  }
  // Backlog drained: the log was rewritten empty rather than keeping
  // the full hint + applied history around forever.
  EXPECT_GT(journal->stats().compactions, compactions_before);
  uint64_t drained_size = 0;
  ASSERT_TRUE(env->GetFileSize(path + "/hints.log", &drained_size).ok());
  EXPECT_LT(drained_size, full_size);
  EXPECT_EQ(journal->pending_records(), 0u);

  // The journal still accepts appends on the compacted file.
  ASSERT_TRUE(journal->Append(1, Rows(500, 1)).ok());
  EXPECT_EQ(journal->pending_records(), 1u);
}

TEST(HintJournalTest, OpenRequiresADirectory) {
  std::unique_ptr<HintJournal> journal;
  EXPECT_TRUE(HintJournal::Open(HintJournal::Options{}, &journal)
                  .IsInvalidArgument());
  EXPECT_EQ(journal, nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace trass
