// The online ingest pipeline end to end: asynchronous submission with
// tickets and watermarks, group-commit coalescing, atomic visibility
// (row + statistics + value-directory entry appear together at watermark
// advance), explicit backpressure, queries running concurrently with
// sustained ingest (the TSan target), ingest racing the anti-entropy
// scrub, ingest through a single-replica fault with min-ack, and the
// crash/fault matrix for partial-ingest state (satellite: RebuildIngestState
// restores a consistent view after a failed Put/PutBatch or a crash
// mid-batch).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "kv/fault_injection_env.h"
#include "test_util.h"

namespace trass {
namespace core {
namespace {

geo::Mbr Everywhere() { return geo::Mbr(0.0, 0.0, 1.0, 1.0); }

// A family of near-identical trajectories: clone `i` of the base path,
// offset by a sub-metre shift so ids are distinct but every clone stays
// within any reasonable eps of the base. Submitted in id order from one
// producer, ticket i corresponds to id i — which is what lets the
// concurrency tests turn "watermark == W" into "ids 1..W must be
// visible".
std::vector<Trajectory> CloneFamily(size_t count, uint64_t seed) {
  Random rnd(seed);
  const Trajectory base = trass::testing::RandomTrajectory(&rnd, 1, 20);
  std::vector<Trajectory> family;
  family.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Trajectory t;
    t.id = i + 1;
    t.points = base.points;
    const double shift = static_cast<double>(i) * 1e-7;
    for (auto& p : t.points) {
      p.x = std::min(1.0, p.x + shift);
    }
    family.push_back(std::move(t));
  }
  return family;
}

TEST(IngestPipelineTest, SubmitAsyncBecomesVisibleAtWatermark) {
  trass::testing::ScratchDir dir("ingest_basic");
  TrassOptions options;
  options.shards = 4;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = trass::testing::RandomDataset(3, 50);
  uint64_t last_ticket = 0;
  for (const auto& t : data) {
    uint64_t ticket = 0;
    ASSERT_TRUE(store->SubmitAsync(t, /*max_wait_ms=*/1000, &ticket).ok());
    EXPECT_EQ(ticket, last_ticket + 1);  // FIFO ticket assignment
    last_ticket = ticket;
  }
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());
  EXPECT_GE(store->ingest_watermark(), last_ticket);

  EXPECT_EQ(store->num_trajectories(), data.size());
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), data.size());

  const auto stats = store->ingest_stats();
  EXPECT_EQ(stats.accepted, data.size());
  EXPECT_EQ(stats.rows_committed, data.size());
  EXPECT_EQ(stats.encode_failures, 0u);
  EXPECT_EQ(stats.commit_failures, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GE(stats.batches_committed, 1u);
  EXPECT_TRUE(store->ingest_last_error().ok());
}

TEST(IngestPipelineTest, NothingIsVisibleBeforeWatermarkAdvances) {
  trass::testing::ScratchDir dir("ingest_visibility");
  TrassOptions options;
  options.shards = 2;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  // Freeze the commit thread, queue three trajectories: the watermark
  // must stay at 0 and queries must see an empty store — visibility is
  // atomic at watermark advance, never row-by-row.
  store->ingest_pipeline()->SetCommitHoldForTesting(true);
  const auto data = trass::testing::RandomDataset(5, 3);
  uint64_t last_ticket = 0;
  for (const auto& t : data) {
    ASSERT_TRUE(store->SubmitAsync(t, 0, &last_ticket).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(store->ingest_watermark(), 0u);
  EXPECT_EQ(store->num_trajectories(), 0u);
  EXPECT_TRUE(store->value_directory()->empty());
  QueryMetrics metrics;
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids, &metrics).ok());
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(metrics.ingest_watermark, 0u);

  store->ingest_pipeline()->SetCommitHoldForTesting(false);
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids, &metrics).ok());
  EXPECT_EQ(ids.size(), data.size());
  EXPECT_GE(metrics.ingest_watermark, last_ticket);
}

TEST(IngestPipelineTest, GroupCommitCoalescesQueuedRows) {
  trass::testing::ScratchDir dir("ingest_coalesce");
  TrassOptions options;
  options.shards = 4;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  // Hold the commit thread while 64 trajectories pile up, then release:
  // the backlog must drain in a few large batches, not 64 singletons.
  store->ingest_pipeline()->SetCommitHoldForTesting(true);
  const auto data = trass::testing::RandomDataset(7, 64);
  uint64_t last_ticket = 0;
  for (const auto& t : data) {
    ASSERT_TRUE(store->SubmitAsync(t, 1000, &last_ticket).ok());
  }
  store->ingest_pipeline()->SetCommitHoldForTesting(false);
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());

  const auto stats = store->ingest_stats();
  EXPECT_EQ(stats.rows_committed, 64u);
  EXPECT_LE(stats.batches_committed, 8u);
  EXPECT_GE(stats.max_batch_rows, 32u);
  EXPECT_EQ(store->num_trajectories(), 64u);
}

TEST(IngestPipelineTest, FullQueueShedsWithBusyAndRecovers) {
  trass::testing::ScratchDir dir("ingest_backpressure");
  TrassOptions options;
  options.shards = 2;
  options.ingest_queue_capacity = 4;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  store->ingest_pipeline()->SetCommitHoldForTesting(true);
  const auto data = trass::testing::RandomDataset(9, 32);
  size_t accepted = 0;
  bool saw_busy = false;
  for (const auto& t : data) {
    const Status s = store->SubmitAsync(t, /*max_wait_ms=*/0);
    if (s.ok()) {
      ++accepted;
    } else {
      ASSERT_TRUE(s.IsBusy()) << s.ToString();
      saw_busy = true;
    }
  }
  // Capacity 4 plus whatever the commit thread had already popped: far
  // fewer than 32 can be in flight, so backpressure must have fired.
  EXPECT_TRUE(saw_busy);
  EXPECT_LT(accepted, data.size());
  const auto held_stats = store->ingest_stats();
  EXPECT_GT(held_stats.shed, 0u);
  EXPECT_GT(held_stats.queue_high_water, 0u);

  store->ingest_pipeline()->SetCommitHoldForTesting(false);
  ASSERT_TRUE(store->DrainIngest(10000).ok());
  // Every accepted trajectory (and only those) became visible.
  EXPECT_EQ(store->num_trajectories(), accepted);
  const auto stats = store->ingest_stats();
  EXPECT_EQ(stats.rows_committed, accepted);
  EXPECT_EQ(stats.shed + stats.accepted, stats.submitted);
}

TEST(IngestPipelineTest, PutAndPutBatchInterleaveWithSubmitAsync) {
  trass::testing::ScratchDir dir("ingest_interleave");
  TrassOptions options;
  options.shards = 4;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = trass::testing::RandomDataset(11, 90);
  // First third: synchronous Put. Second third: one PutBatch group
  // commit. Final third: async submission. All three funnel through the
  // same commit path and must coexist.
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store->Put(data[i]).ok());
  }
  ASSERT_TRUE(
      store
          ->PutBatch(std::vector<Trajectory>(data.begin() + 30,
                                             data.begin() + 60))
          .ok());
  uint64_t last_ticket = 0;
  for (size_t i = 60; i < 90; ++i) {
    ASSERT_TRUE(store->SubmitAsync(data[i], 1000, &last_ticket).ok());
  }
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());

  EXPECT_EQ(store->num_trajectories(), 90u);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  ASSERT_EQ(ids.size(), 90u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);  // sorted, exactly 1..90
  }
  // PutBatch was one group commit: at most one batch per touched region
  // in the io stats, far fewer than its 30 rows.
  const auto io = store->region_store()->TotalIoStats();
  EXPECT_GT(io.batch_commits, 0u);
  EXPECT_GE(io.batch_rows, 90u);
}

// The TSan target: threshold, top-k, and range queries run against
// sustained asynchronous ingest. Snapshot consistency is checked through
// the watermark contract — a query reporting ingest_watermark W must see
// every trajectory with ticket <= W (tickets == ids here, and every
// clone matches every query), and must never see a torn trajectory (a
// directory entry without its row or vice versa would break the result
// counts).
TEST(IngestPipelineTest, QueriesStayConsistentUnderConcurrentIngest) {
  trass::testing::ScratchDir dir("ingest_concurrent");
  TrassOptions options;
  options.shards = 4;
  options.ingest_batch_linger_ms = 0.5;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  constexpr size_t kCount = 300;
  const auto family = CloneFamily(kCount, 13);
  const std::vector<geo::Point> query = family[0].points;
  const double eps = 0.05;

  std::thread producer([&] {
    for (const auto& t : family) {
      Status s;
      do {
        s = store->SubmitAsync(t, 100);
      } while (s.IsBusy());
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });

  // Interleave all three query kinds while the producer runs.
  for (int round = 0; round < 12; ++round) {
    QueryMetrics metrics;
    std::vector<uint64_t> ids;
    ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids, &metrics).ok());
    const uint64_t w = metrics.ingest_watermark;
    ASSERT_LE(w, kCount);
    // Every ticket <= W is fully visible; later ones may or may not be.
    std::set<uint64_t> seen(ids.begin(), ids.end());
    for (uint64_t id = 1; id <= w; ++id) {
      ASSERT_TRUE(seen.count(id)) << "id " << id << " missing at watermark "
                                  << w;
    }
    for (uint64_t id : ids) {
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, kCount);
    }

    std::vector<SearchResult> results;
    ASSERT_TRUE(store->ThresholdSearch(query, eps, Measure::kFrechet,
                                       &results, &metrics)
                    .ok());
    ASSERT_GE(results.size(), metrics.ingest_watermark);

    results.clear();
    ASSERT_TRUE(store->TopKSearch(query, static_cast<int>(kCount),
                                  Measure::kFrechet, &results, &metrics)
                    .ok());
    ASSERT_GE(results.size(), metrics.ingest_watermark);
  }

  producer.join();
  ASSERT_TRUE(store->DrainIngest(20000).ok());
  const auto stats = store->ingest_stats();
  EXPECT_EQ(stats.encode_failures, 0u);
  EXPECT_EQ(stats.commit_failures, 0u);
  EXPECT_EQ(store->num_trajectories(), kCount);
  std::vector<SearchResult> results;
  ASSERT_TRUE(
      store->ThresholdSearch(query, eps, Measure::kFrechet, &results).ok());
  EXPECT_EQ(results.size(), kCount);
}

TEST(IngestPipelineTest, IngestRacesScrubReplicasWithoutDivergence) {
  trass::testing::ScratchDir dir("ingest_scrub_race");
  TrassOptions options;
  options.shards = 2;
  options.replication_factor = 2;
  options.ingest_batch_linger_ms = 0.5;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  constexpr size_t kCount = 200;
  const auto data = trass::testing::RandomDataset(17, kCount);
  std::thread producer([&] {
    for (const auto& t : data) {
      Status s;
      do {
        s = store->SubmitAsync(t, 100);
      } while (s.IsBusy());
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });
  // Scrubs and group commits serialize on the store's ingest mutex: the
  // scrub must never observe (or manufacture) replica divergence from a
  // half-applied batch.
  for (int round = 0; round < 8; ++round) {
    kv::ScrubReport report;
    ASSERT_TRUE(store->ScrubReplicas(&report).ok());
    EXPECT_EQ(report.divergent_replicas, 0u);
    EXPECT_EQ(report.corrupt_replicas, 0u);
  }
  producer.join();
  ASSERT_TRUE(store->DrainIngest(20000).ok());

  kv::ScrubReport final_report;
  ASSERT_TRUE(store->ScrubReplicas(&final_report).ok());
  EXPECT_EQ(final_report.divergent_replicas, 0u);
  EXPECT_EQ(store->num_trajectories(), kCount);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), kCount);
}

TEST(IngestPipelineTest, MinAckIngestRidesThroughSingleReplicaFault) {
  trass::testing::ScratchDir dir("ingest_min_ack");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 2;
  options.replication_factor = 2;
  options.ingest_min_ack_replicas = 1;
  options.db_options.env = &env;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = trass::testing::RandomDataset(19, 80);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(store->Put(data[i]).ok());
  }

  // Every second replica loses its disk. With min_ack_replicas = 1 the
  // pipeline keeps committing on the surviving copies.
  kv::FaultPoint fault;
  fault.op = kv::FaultOp::kAppend;
  fault.permanent = true;
  fault.path_substring = "-replica-1";
  env.InjectFault(fault);

  uint64_t last_ticket = 0;
  for (size_t i = 40; i < 80; ++i) {
    ASSERT_TRUE(store->SubmitAsync(data[i], 1000, &last_ticket).ok());
  }
  ASSERT_TRUE(store->WaitForWatermark(last_ticket, 10000).ok());
  EXPECT_EQ(store->ingest_stats().commit_failures, 0u);
  EXPECT_EQ(store->num_trajectories(), 80u);
  EXPECT_GT(store->region_store()->TotalIoStats().degraded_writes, 0u);

  // Queries fail over past the stale replica and still see everything.
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), 80u);

  // Heal: the scrub rebuilds the divergent replicas from the survivors,
  // after which strict reads from any replica agree.
  env.ClearFaults();
  kv::ScrubReport report;
  ASSERT_TRUE(store->ScrubReplicas(&report).ok());
  EXPECT_GT(report.replicas_rebuilt, 0u);
  ids.clear();
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), 80u);
  kv::ScrubReport clean;
  ASSERT_TRUE(store->ScrubReplicas(&clean).ok());
  EXPECT_EQ(clean.divergent_replicas, 0u);
}

TEST(IngestPipelineTest, StrictModeFailsBatchesButAdvancesWatermark) {
  trass::testing::ScratchDir dir("ingest_strict_fail");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 2;
  options.db_options.env = &env;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, dir.path() + "/store", &store).ok());

  // All WAL appends fail: every commit errors. The watermark must still
  // advance past the failed tickets — one poisoned batch must not stall
  // visibility forever — with the failure held in stats/last_error.
  kv::FaultPoint fault;
  fault.op = kv::FaultOp::kAppend;
  fault.permanent = true;
  env.InjectFault(fault);

  Random rnd(23);
  uint64_t ticket = 0;
  ASSERT_TRUE(store
                  ->SubmitAsync(trass::testing::RandomTrajectory(&rnd, 1, 10),
                                1000, &ticket)
                  .ok());
  ASSERT_TRUE(store->WaitForWatermark(ticket, 10000).ok());
  EXPECT_GE(store->ingest_watermark(), ticket);
  EXPECT_GT(store->ingest_stats().commit_failures, 0u);
  EXPECT_FALSE(store->ingest_last_error().ok());
  EXPECT_EQ(store->num_trajectories(), 0u);  // nothing published
}

// Satellite: a fault mid-Put/PutBatch leaves some regions applied and
// others not. The in-memory state must count only the applied rows, and
// reopening the store (RebuildIngestState) must re-derive exactly the
// same consistent view from what the store actually holds.
TEST(IngestPipelineTest, PartialPutBatchStaysConsistentAndRebuilds) {
  trass::testing::ScratchDir dir("ingest_partial_put");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 4;
  options.db_options.env = &env;
  const std::string path = dir.path() + "/store";
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());

  // Region 1's WAL rejects appends: the PutBatch group commit applies on
  // the healthy regions and fails region 1.
  kv::FaultPoint fault;
  fault.op = kv::FaultOp::kAppend;
  fault.permanent = true;
  fault.path_substring = "region-1/";
  env.InjectFault(fault);

  const auto data = trass::testing::RandomDataset(29, 60);
  const Status s = store->PutBatch(data);
  ASSERT_FALSE(s.ok());  // the failure is reported, not swallowed
  EXPECT_NE(s.ToString().find("region 1"), std::string::npos)
      << s.ToString();

  // Only applied rows were published: statistics and the store agree.
  const uint64_t applied = store->num_trajectories();
  EXPECT_GT(applied, 0u);
  EXPECT_LT(applied, 60u);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), applied);

  // Same story for single Puts into the faulted region.
  size_t put_failures = 0;
  for (const auto& t : trass::testing::RandomDataset(31, 20)) {
    Trajectory moved = t;
    moved.id += 1000;
    if (!store->Put(moved).ok()) ++put_failures;
  }
  EXPECT_GT(put_failures, 0u);
  ids.clear();
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), store->num_trajectories());

  // Reopen: RebuildIngestState must re-derive the identical view from
  // the surviving rows alone.
  env.ClearFaults();
  // The failed WAL appends wedged region 1 read-only (sticky background
  // error); Resume restores writability now that the fault is gone.
  ASSERT_TRUE(store->Resume().ok());
  const uint64_t before_count = store->num_trajectories();
  const uint64_t before_distinct = store->distinct_index_values();
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
  EXPECT_EQ(store->num_trajectories(), before_count);
  EXPECT_EQ(store->distinct_index_values(), before_distinct);
  std::vector<uint64_t> reopened_ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &reopened_ids).ok());
  EXPECT_EQ(reopened_ids, ids);
}

// Crash matrix for the async path: power loss mid-stream. Each region
// batch is one WAL record, so a crash replays whole batches or nothing;
// reopening must produce directory/statistics that exactly match the
// surviving rows (watermark-consistent recovery).
TEST(IngestPipelineTest, CrashMidIngestRecoversConsistentState) {
  trass::testing::ScratchDir dir("ingest_crash");
  kv::FaultInjectionEnv env(kv::Env::Default());
  TrassOptions options;
  options.shards = 4;
  options.db_options.env = &env;
  const std::string path = dir.path() + "/store";

  std::set<uint64_t> submitted;
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
    const auto data = trass::testing::RandomDataset(37, 120);
    for (const auto& t : data) {
      if (store->SubmitAsync(t, 100).ok()) submitted.insert(t.id);
    }
    // Power loss with the stream still in flight: fail further writes so
    // shutdown's drain cannot mask the damage, then cut the queue.
    env.SetFilesystemActive(false);
    store.reset();  // pipeline drains; in-flight commits fail harmlessly
    env.ClearFaults();
    ASSERT_TRUE(env.DropUnsyncedData().ok());
    env.SetFilesystemActive(true);
  }

  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
  // Whatever survived: statistics, directory, and rows must agree with
  // each other, and hold only submitted trajectories.
  std::vector<uint64_t> ids;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &ids).ok());
  EXPECT_EQ(ids.size(), store->num_trajectories());
  for (uint64_t id : ids) {
    EXPECT_TRUE(submitted.count(id)) << id;
  }
  // The rebuilt directory serves queries without errors.
  if (!ids.empty()) {
    Random rnd(41);
    std::vector<SearchResult> results;
    QueryMetrics metrics;
    ASSERT_TRUE(
        store
            ->TopKSearch(trass::testing::RandomTrajectory(&rnd, 1, 10).points,
                         5, Measure::kFrechet, &results, &metrics)
            .ok());
  }
  // And ingest keeps working after recovery.
  Random rnd(43);
  uint64_t ticket = 0;
  Trajectory fresh = trass::testing::RandomTrajectory(&rnd, 5000, 10);
  ASSERT_TRUE(store->SubmitAsync(fresh, 1000, &ticket).ok());
  ASSERT_TRUE(store->WaitForWatermark(ticket, 10000).ok());
  std::vector<uint64_t> after;
  ASSERT_TRUE(store->RangeQuery(Everywhere(), &after).ok());
  EXPECT_EQ(after.size(), ids.size() + 1);
}

TEST(IngestPipelineTest, ShutdownDrainsAcceptedTrajectories) {
  trass::testing::ScratchDir dir("ingest_shutdown");
  TrassOptions options;
  options.shards = 2;
  const std::string path = dir.path() + "/store";
  size_t accepted = 0;
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
    for (const auto& t : trass::testing::RandomDataset(47, 40)) {
      if (store->SubmitAsync(t, 100).ok()) ++accepted;
    }
    // No drain, no flush: destruction itself must commit the backlog.
  }
  ASSERT_GT(accepted, 0u);
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
  EXPECT_EQ(store->num_trajectories(), accepted);
}

}  // namespace
}  // namespace core
}  // namespace trass
