// Serving-tier building blocks: wire codec round-trips, circuit-breaker
// state machine, tenant token buckets, fault-injection behaviors, and
// the two transports (in-process direct, local-socket multi-process)
// answering identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "serve/circuit_breaker.h"
#include "serve/direct_transport.h"
#include "serve/fault_injection_transport.h"
#include "serve/shard_server.h"
#include "serve/shard_transport.h"
#include "serve/socket_transport.h"
#include "serve/tenant_quota.h"
#include "serve/wire.h"
#include "test_util.h"

namespace trass {
namespace serve {
namespace {

using core::Measure;
using core::SearchResult;
using core::Trajectory;
using core::TrassOptions;
using core::TrassStore;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(WireTest, RequestRoundTripsEveryField) {
  ShardRequest request;
  request.op = ShardOp::kTopK;
  request.query = {{0.25, 0.5}, {0.26, 0.52}, {0.3, 0.55}};
  request.eps = 0.125;
  request.k = 7;
  request.measure = Measure::kDtw;
  request.window = geo::Mbr(0.1, 0.2, 0.3, 0.4);
  request.bound = 0.0625;
  request.deadline_ms = 1234.5;
  request.max_candidates = 99;
  request.allow_partial = true;
  Trajectory t;
  t.id = 42;
  t.points = {{0.7, 0.7}, {0.71, 0.72}};
  request.trajectories.push_back(t);

  std::string payload;
  EncodeShardRequest(request, &payload);
  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(Slice(payload), &decoded).ok());

  EXPECT_EQ(decoded.op, request.op);
  ASSERT_EQ(decoded.query.size(), request.query.size());
  for (size_t i = 0; i < request.query.size(); ++i) {
    EXPECT_DOUBLE_EQ(decoded.query[i].x, request.query[i].x);
    EXPECT_DOUBLE_EQ(decoded.query[i].y, request.query[i].y);
  }
  EXPECT_DOUBLE_EQ(decoded.eps, request.eps);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.measure, request.measure);
  EXPECT_DOUBLE_EQ(decoded.window.min_x(), request.window.min_x());
  EXPECT_DOUBLE_EQ(decoded.window.max_y(), request.window.max_y());
  EXPECT_DOUBLE_EQ(decoded.bound, request.bound);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.max_candidates, request.max_candidates);
  EXPECT_EQ(decoded.allow_partial, request.allow_partial);
  ASSERT_EQ(decoded.trajectories.size(), 1u);
  EXPECT_EQ(decoded.trajectories[0].id, 42u);
  ASSERT_EQ(decoded.trajectories[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded.trajectories[0].points[1].y, 0.72);
}

TEST(WireTest, InfiniteBoundSurvivesTheWire) {
  ShardRequest request;
  request.op = ShardOp::kTopK;
  request.query = {{0.5, 0.5}};
  request.k = 3;
  std::string payload;
  EncodeShardRequest(request, &payload);
  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(Slice(payload), &decoded).ok());
  EXPECT_TRUE(std::isinf(decoded.bound));
}

TEST(WireTest, ResponseRoundTripsPayloadAndStatus) {
  ShardResponse response;
  response.results = {{11, 0.25}, {13, 0.5}};
  response.ids = {3, 5, 8};
  Trajectory t;
  t.id = 9;
  t.points = {{0.4, 0.4}};
  response.trajectories.push_back(t);
  response.metrics.retrieved = 100;
  response.metrics.candidates = 40;
  response.metrics.results = 2;
  response.metrics.partial = true;
  response.metrics.deadline_expired = true;
  response.metrics.scan_ms = 1.5;
  response.metrics.ingest_watermark = 77;

  std::string payload;
  EncodeShardResponse(response, Status::NoSpace("disk full"), &payload);
  ShardResponse decoded;
  Status exec;
  ASSERT_TRUE(DecodeShardResponse(Slice(payload), &decoded, &exec).ok());

  EXPECT_TRUE(exec.IsNoSpace()) << exec.ToString();
  ASSERT_EQ(decoded.results.size(), 2u);
  EXPECT_EQ(decoded.results[0].id, 11u);
  EXPECT_DOUBLE_EQ(decoded.results[1].distance, 0.5);
  EXPECT_EQ(decoded.ids, response.ids);
  ASSERT_EQ(decoded.trajectories.size(), 1u);
  EXPECT_EQ(decoded.trajectories[0].id, 9u);
  EXPECT_EQ(decoded.metrics.retrieved, 100u);
  EXPECT_EQ(decoded.metrics.candidates, 40u);
  EXPECT_TRUE(decoded.metrics.partial);
  EXPECT_TRUE(decoded.metrics.deadline_expired);
  EXPECT_FALSE(decoded.metrics.cancelled);
  EXPECT_DOUBLE_EQ(decoded.metrics.scan_ms, 1.5);
  EXPECT_EQ(decoded.metrics.ingest_watermark, 77u);
}

TEST(WireTest, RejectsWrongVersionAndTruncation) {
  ShardRequest request;
  request.op = ShardOp::kPing;
  std::string payload;
  EncodeShardRequest(request, &payload);

  std::string wrong_version = payload;
  wrong_version[0] = static_cast<char>(0x7f);
  ShardRequest decoded;
  EXPECT_TRUE(DecodeShardRequest(Slice(wrong_version), &decoded).IsCorruption());

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeShardRequest(Slice(payload.data(), cut), &decoded).ok())
        << "accepted a " << cut << "-byte prefix";
  }
}

TEST(WireTest, RejectsCountsLargerThanThePayload) {
  // Element counts must be bounded by the bytes actually present, not
  // by the max frame size: a few corrupt bytes in a tiny frame must
  // fail the parse outright instead of provoking a multi-GB reserve().
  ShardResponse empty;
  std::string payload;
  EncodeShardResponse(empty, Status::OK(), &payload);
  // Empty-response layout: version, status code, status-msg len,
  // result count, id count — one byte each.
  ASSERT_GE(payload.size(), 5u);
  ShardResponse decoded;
  Status exec;

  // Result count claims ~268M entries with nothing behind it.
  std::string evil_results = payload.substr(0, 3);
  evil_results += "\xff\xff\xff\x7f";
  EXPECT_TRUE(DecodeShardResponse(Slice(evil_results), &decoded, &exec)
                  .IsCorruption());

  // Id count likewise.
  std::string evil_ids = payload.substr(0, 4);
  evil_ids += "\xff\xff\xff\x7f";
  EXPECT_TRUE(
      DecodeShardResponse(Slice(evil_ids), &decoded, &exec).IsCorruption());
}

TEST(WireTest, PlacementFieldsAndFingerprintsRoundTrip) {
  // v2 request fields: the coordinator's topology rides kFingerprint
  // and filtered kExport so the shard digests under the same placement.
  ShardRequest request;
  request.op = ShardOp::kFingerprint;
  request.num_shards = 5;
  request.export_primary = 3;
  std::string payload;
  EncodeShardRequest(request, &payload);
  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(Slice(payload), &decoded).ok());
  EXPECT_EQ(decoded.op, ShardOp::kFingerprint);
  EXPECT_EQ(decoded.num_shards, 5u);
  EXPECT_EQ(decoded.export_primary, 3);

  // The no-filter default (-1) survives too.
  ShardRequest plain;
  plain.op = ShardOp::kExport;
  EncodeShardRequest(plain, &payload);
  ASSERT_TRUE(DecodeShardRequest(Slice(payload), &decoded).ok());
  EXPECT_EQ(decoded.num_shards, 0u);
  EXPECT_EQ(decoded.export_primary, -1);

  // v2 response fingerprints.
  ShardResponse response;
  response.fingerprints.push_back({2, 41, 0xdeadbeef});
  response.fingerprints.push_back({4, 0, 0});
  EncodeShardResponse(response, Status::OK(), &payload);
  ShardResponse decoded_response;
  Status exec;
  ASSERT_TRUE(
      DecodeShardResponse(Slice(payload), &decoded_response, &exec).ok());
  ASSERT_EQ(decoded_response.fingerprints.size(), 2u);
  EXPECT_EQ(decoded_response.fingerprints[0].primary, 2u);
  EXPECT_EQ(decoded_response.fingerprints[0].rows, 41u);
  EXPECT_EQ(decoded_response.fingerprints[0].crc, 0xdeadbeefu);
  EXPECT_EQ(decoded_response.fingerprints[1].primary, 4u);

  // A corrupt fingerprint count larger than the remaining bytes fails
  // the parse instead of provoking a giant reserve().
  EncodeShardResponse(ShardResponse(), Status::OK(), &payload);
  std::string evil = payload;
  ASSERT_EQ(static_cast<uint8_t>(evil.back()), 0u);  // fingerprint count
  evil.pop_back();
  evil += "\xff\xff\xff\x7f";
  EXPECT_TRUE(DecodeShardResponse(Slice(evil), &decoded_response, &exec)
                  .IsCorruption());
}

TEST(WireTest, TrajectoryListRoundTrips) {
  // The hint journal persists trajectory payloads with the same codec
  // the wire uses.
  std::vector<Trajectory> rows(2);
  rows[0].id = 17;
  rows[0].points = {{0.1, 0.2}, {0.3, 0.4}};
  rows[1].id = 99;
  rows[1].points = {{0.5, 0.5}};
  std::string payload;
  EncodeTrajectoryList(rows, &payload);
  std::vector<Trajectory> decoded;
  ASSERT_TRUE(DecodeTrajectoryList(Slice(payload), &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].id, 17u);
  ASSERT_EQ(decoded[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded[0].points[1].x, 0.3);
  EXPECT_EQ(decoded[1].id, 99u);
  EXPECT_TRUE(
      DecodeTrajectoryList(Slice(payload.data(), payload.size() - 1), &decoded)
          .IsCorruption());
}

// ---------------------------------------------------------------------------
// Circuit breaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRejects) {
  CircuitBreaker breaker(CircuitBreaker::Options{3, 60000.0});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(Status::IoError("a"));
  breaker.RecordFailure(Status::IoError("b"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(Status::IoError("c"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kReject);
  EXPECT_TRUE(breaker.last_error().IsIoError());
  const auto counters = breaker.counters();
  EXPECT_EQ(counters.trips, 1u);
  EXPECT_EQ(counters.rejected, 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker(CircuitBreaker::Options{2, 60000.0});
  breaker.RecordFailure(Status::IoError("x"));
  breaker.RecordSuccess();
  breaker.RecordFailure(Status::IoError("y"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeReinstatesOnSuccess) {
  CircuitBreaker breaker(CircuitBreaker::Options{1, 30.0});
  breaker.RecordFailure(Status::IoError("dead"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  // Only one probe slot while the first is outstanding.
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kReject);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProceed);
  EXPECT_TRUE(breaker.last_error().ok());
  EXPECT_EQ(breaker.counters().reinstatements, 1u);
}

TEST(CircuitBreakerTest, CancelledProbeReleasesTheSlot) {
  CircuitBreaker breaker(CircuitBreaker::Options{1, 30.0});
  breaker.RecordFailure(Status::IoError("dead"));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  // The coordinator cancelled the probe attempt (fan-out teardown or
  // hedge loser): no outcome was recorded, but the slot must come back
  // or the shard is never probed again.
  breaker.ReleaseProbe();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Outside half-open the release is a no-op.
  breaker.ReleaseProbe();
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProceed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(CircuitBreaker::Options{1, 30.0});
  breaker.RecordFailure(Status::IoError("dead"));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kProbe);
  breaker.RecordFailure(Status::IoError("still dead"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Decision::kReject);
  EXPECT_EQ(breaker.counters().trips, 2u);
}

// ---------------------------------------------------------------------------
// Tenant quota

TEST(TenantQuotaTest, DisabledQuotaAdmitsEverything) {
  TenantQuota quota(TenantQuota::Options{0.0, 0.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(quota.Acquire("anyone").ok());
  }
  EXPECT_EQ(quota.counters().shed, 0u);
}

TEST(TenantQuotaTest, BurstThenShedPerTenant) {
  TenantQuota quota(TenantQuota::Options{1.0, 3.0});  // 1 qps, burst 3
  EXPECT_TRUE(quota.Acquire("alice").ok());
  EXPECT_TRUE(quota.Acquire("alice").ok());
  EXPECT_TRUE(quota.Acquire("alice").ok());
  const Status shed = quota.Acquire("alice");
  EXPECT_TRUE(shed.IsBusy()) << shed.ToString();
  // Buckets are per tenant: bob still has his full burst.
  EXPECT_TRUE(quota.Acquire("bob").ok());
  const auto counters = quota.counters();
  EXPECT_EQ(counters.admitted, 4u);
  EXPECT_EQ(counters.shed, 1u);
}

TEST(TenantQuotaTest, BucketRefillsOverTime) {
  TenantQuota quota(TenantQuota::Options{50.0, 1.0});  // refill 1 token/20ms
  EXPECT_TRUE(quota.Acquire("carol").ok());
  EXPECT_TRUE(quota.Acquire("carol").IsBusy());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(quota.Acquire("carol").ok());
}

// ---------------------------------------------------------------------------
// Fault injection

/// Inner transport that answers instantly and counts calls.
class CountingTransport : public ShardTransport {
 public:
  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    (void)request;
    (void)cancel;
    response->metrics.results = 1;
    calls.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::string Describe() const override { return "counting"; }
  std::atomic<int> calls{0};
};

TEST(FaultInjectionTest, ErrorFaultFailsWithoutForwarding) {
  auto inner = std::make_shared<CountingTransport>();
  FaultInjectionTransport::Options options;
  options.error_probability = 1.0;
  FaultInjectionTransport transport(inner, options);
  ShardRequest request;
  ShardResponse response;
  EXPECT_TRUE(transport.Execute(request, nullptr, &response).IsIoError());
  EXPECT_EQ(inner->calls.load(), 0);
  EXPECT_EQ(transport.counters().errors, 1u);
}

TEST(FaultInjectionTest, DropBurnsTheAttemptBudgetThenTimesOut) {
  auto inner = std::make_shared<CountingTransport>();
  FaultInjectionTransport::Options options;
  options.drop_probability = 1.0;
  FaultInjectionTransport transport(inner, options);
  ShardRequest request;
  request.deadline_ms = 50.0;
  ShardResponse response;
  const auto start = std::chrono::steady_clock::now();
  const Status s = transport.Execute(request, nullptr, &response);
  const double elapsed = ElapsedMs(start);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(elapsed, 45.0);     // held for the budget...
  EXPECT_LT(elapsed, 5000.0);   // ...but not forever
  EXPECT_EQ(inner->calls.load(), 0);
}

TEST(FaultInjectionTest, WedgeBlocksUntilCancelled) {
  auto inner = std::make_shared<CountingTransport>();
  FaultInjectionTransport transport(inner, FaultInjectionTransport::Options{});
  transport.SetWedged(true);
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true);
  });
  ShardRequest request;
  ShardResponse response;
  const auto start = std::chrono::steady_clock::now();
  const Status s = transport.Execute(request, &cancel, &response);
  const double elapsed = ElapsedMs(start);
  canceller.join();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_GE(elapsed, 40.0);
  EXPECT_LT(elapsed, 5000.0) << "cancel did not unblock the wedge";
  EXPECT_EQ(transport.counters().wedged_calls, 1u);
  transport.SetWedged(false);
  EXPECT_TRUE(transport.Execute(request, &cancel, &response).ok());
}

TEST(FaultInjectionTest, DuplicateDeliversTwiceAnswersOnce) {
  auto inner = std::make_shared<CountingTransport>();
  FaultInjectionTransport::Options options;
  options.duplicate_probability = 1.0;
  FaultInjectionTransport transport(inner, options);
  ShardRequest request;
  ShardResponse response;
  EXPECT_TRUE(transport.Execute(request, nullptr, &response).ok());
  EXPECT_EQ(inner->calls.load(), 2);
  EXPECT_EQ(response.metrics.results, 1u);  // one answer, not a merge of two
  EXPECT_EQ(transport.counters().duplicates, 1u);
}

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  auto run_schedule = [](uint64_t seed) {
    auto inner = std::make_shared<CountingTransport>();
    FaultInjectionTransport::Options options;
    options.error_probability = 0.3;
    options.delay_probability = 0.2;
    options.delay_ms = 0.0;
    options.seed = seed;
    FaultInjectionTransport transport(inner, options);
    std::vector<bool> ok;
    for (int i = 0; i < 64; ++i) {
      ShardRequest request;
      ShardResponse response;
      ok.push_back(transport.Execute(request, nullptr, &response).ok());
    }
    return ok;
  };
  EXPECT_EQ(run_schedule(1234), run_schedule(1234));
  EXPECT_NE(run_schedule(1234), run_schedule(99991));
}

// ---------------------------------------------------------------------------
// Direct transport + socket harness against a real store

class ServeTransportTest : public ::testing::Test {
 protected:
  ServeTransportTest() : dir_("serve_transport") {}

  void OpenStore() {
    TrassOptions options;
    options.shards = 2;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 256 * 1024;
    ASSERT_TRUE(TrassStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<TrassStore> store_;
};

TEST_F(ServeTransportTest, DirectTransportMatchesTheStore) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(7, 80);
  DirectShardTransport transport(store_.get());

  ShardRequest put;
  put.op = ShardOp::kPut;
  put.trajectories = data;
  ShardResponse ignored;
  ASSERT_TRUE(transport.Execute(put, nullptr, &ignored).ok());
  ASSERT_TRUE(store_->Flush().ok());

  ShardRequest ping;
  ping.op = ShardOp::kPing;
  EXPECT_TRUE(transport.Execute(ping, nullptr, &ignored).ok());

  ShardRequest threshold;
  threshold.op = ShardOp::kThreshold;
  threshold.query = data[3].points;
  threshold.eps = 0.05;
  threshold.measure = Measure::kFrechet;
  ShardResponse via_transport;
  ASSERT_TRUE(transport.Execute(threshold, nullptr, &via_transport).ok());

  std::vector<SearchResult> direct;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(data[3].points, 0.05, Measure::kFrechet,
                                    &direct)
                  .ok());
  ASSERT_EQ(via_transport.results.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_transport.results[i].id, direct[i].id);
    EXPECT_DOUBLE_EQ(via_transport.results[i].distance, direct[i].distance);
  }

  // kTopK with a finite bound answers as a threshold search at that
  // bound (the follow-up-wave contract).
  ShardRequest bounded;
  bounded.op = ShardOp::kTopK;
  bounded.query = data[3].points;
  bounded.k = 5;
  bounded.measure = Measure::kFrechet;
  bounded.bound = 0.05;
  ShardResponse via_bound;
  ASSERT_TRUE(transport.Execute(bounded, nullptr, &via_bound).ok());
  ASSERT_EQ(via_bound.results.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_bound.results[i].id, direct[i].id);
  }

  // kExport streams every stored trajectory back out.
  ShardRequest export_request;
  export_request.op = ShardOp::kExport;
  ShardResponse exported;
  ASSERT_TRUE(transport.Execute(export_request, nullptr, &exported).ok());
  EXPECT_EQ(exported.trajectories.size(), data.size());
}

TEST_F(ServeTransportTest, FingerprintsAndFilteredExportAgree) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(13, 70);
  DirectShardTransport transport(store_.get());
  ShardRequest put;
  put.op = ShardOp::kPut;
  put.trajectories = data;
  ShardResponse ignored;
  ASSERT_TRUE(transport.Execute(put, nullptr, &ignored).ok());
  ASSERT_TRUE(store_->Flush().ok());

  // Fingerprints digest per primary partition under the caller's
  // topology; the rows across partitions account for every stored row.
  constexpr uint64_t kTopologyShards = 4;
  ShardRequest fingerprint;
  fingerprint.op = ShardOp::kFingerprint;
  fingerprint.num_shards = kTopologyShards;
  ShardResponse digest, digest_again;
  ASSERT_TRUE(transport.Execute(fingerprint, nullptr, &digest).ok());
  ASSERT_TRUE(transport.Execute(fingerprint, nullptr, &digest_again).ok());
  ASSERT_FALSE(digest.fingerprints.empty());
  uint64_t fingerprinted_rows = 0;
  for (size_t i = 0; i < digest.fingerprints.size(); ++i) {
    const PartitionFingerprint& fp = digest.fingerprints[i];
    EXPECT_LT(fp.primary, kTopologyShards);
    fingerprinted_rows += fp.rows;
    // Deterministic: same store, same topology, same digest.
    ASSERT_LT(i, digest_again.fingerprints.size());
    EXPECT_EQ(fp.primary, digest_again.fingerprints[i].primary);
    EXPECT_EQ(fp.rows, digest_again.fingerprints[i].rows);
    EXPECT_EQ(fp.crc, digest_again.fingerprints[i].crc);
  }
  EXPECT_EQ(fingerprinted_rows, data.size());

  // Filtered exports partition the full export exactly: each primary's
  // slice is disjoint and their union is everything.
  std::vector<uint64_t> exported_ids;
  for (uint64_t primary = 0; primary < kTopologyShards; ++primary) {
    ShardRequest filtered;
    filtered.op = ShardOp::kExport;
    filtered.num_shards = kTopologyShards;
    filtered.export_primary = static_cast<int64_t>(primary);
    ShardResponse slice;
    ASSERT_TRUE(transport.Execute(filtered, nullptr, &slice).ok());
    for (const Trajectory& t : slice.trajectories) {
      exported_ids.push_back(t.id);
    }
    // The slice size matches the partition's fingerprint rows.
    uint64_t expected_rows = 0;
    for (const PartitionFingerprint& fp : digest.fingerprints) {
      if (fp.primary == primary) expected_rows = fp.rows;
    }
    EXPECT_EQ(slice.trajectories.size(), expected_rows)
        << "primary " << primary;
  }
  std::sort(exported_ids.begin(), exported_ids.end());
  EXPECT_EQ(std::unique(exported_ids.begin(), exported_ids.end()),
            exported_ids.end());
  EXPECT_EQ(exported_ids.size(), data.size());

  // Topology is mandatory for a digest or a filtered export.
  ShardRequest bad;
  bad.op = ShardOp::kFingerprint;
  ShardResponse unused;
  EXPECT_TRUE(transport.Execute(bad, nullptr, &unused).IsInvalidArgument());
  bad.op = ShardOp::kExport;
  bad.export_primary = 1;
  EXPECT_TRUE(transport.Execute(bad, nullptr, &unused).IsInvalidArgument());

  // The digest crosses the socket byte-identically.
  ShardServer server(store_.get(), dir_.path() + "/fp.sock");
  ASSERT_TRUE(server.Start().ok());
  SocketShardTransport socket(dir_.path() + "/fp.sock");
  ShardResponse via_socket;
  ASSERT_TRUE(socket.Execute(fingerprint, nullptr, &via_socket).ok());
  ASSERT_EQ(via_socket.fingerprints.size(), digest.fingerprints.size());
  for (size_t i = 0; i < digest.fingerprints.size(); ++i) {
    EXPECT_EQ(via_socket.fingerprints[i].primary,
              digest.fingerprints[i].primary);
    EXPECT_EQ(via_socket.fingerprints[i].rows, digest.fingerprints[i].rows);
    EXPECT_EQ(via_socket.fingerprints[i].crc, digest.fingerprints[i].crc);
  }
  server.Stop();
}

TEST_F(ServeTransportTest, SocketHarnessMatchesDirectDispatch) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(11, 60);
  ShardServer server(store_.get(), dir_.path() + "/shard.sock");
  ASSERT_TRUE(server.Start().ok());
  SocketShardTransport socket(dir_.path() + "/shard.sock");
  DirectShardTransport direct(store_.get());

  ShardRequest put;
  put.op = ShardOp::kPut;
  put.trajectories = data;
  ShardResponse ignored;
  ASSERT_TRUE(socket.Execute(put, nullptr, &ignored).ok());
  ASSERT_TRUE(store_->Flush().ok());

  ShardRequest threshold;
  threshold.op = ShardOp::kThreshold;
  threshold.query = data[5].points;
  threshold.eps = 0.05;
  threshold.measure = Measure::kHausdorff;
  ShardResponse via_socket, via_direct;
  ASSERT_TRUE(socket.Execute(threshold, nullptr, &via_socket).ok());
  ASSERT_TRUE(direct.Execute(threshold, nullptr, &via_direct).ok());
  ASSERT_EQ(via_socket.results.size(), via_direct.results.size());
  for (size_t i = 0; i < via_direct.results.size(); ++i) {
    EXPECT_EQ(via_socket.results[i].id, via_direct.results[i].id);
    EXPECT_DOUBLE_EQ(via_socket.results[i].distance,
                     via_direct.results[i].distance);
  }
  // Shard-side metrics cross the wire intact enough to fold.
  EXPECT_EQ(via_socket.metrics.retrieved, via_direct.metrics.retrieved);
  EXPECT_EQ(via_socket.metrics.results, via_direct.metrics.results);
  EXPECT_GT(server.requests_served(), 0u);

  // A shard-side error status crosses the wire as a status, not a
  // transport failure.
  ShardRequest bad;
  bad.op = ShardOp::kThreshold;  // empty query
  ShardResponse bad_response;
  EXPECT_TRUE(
      socket.Execute(bad, nullptr, &bad_response).IsInvalidArgument());

  server.Stop();
  server.Stop();  // idempotent
}

TEST_F(ServeTransportTest, SocketTransportFailsCleanlyWithNoServer) {
  SocketShardTransport socket(dir_.path() + "/nobody-home.sock");
  ShardRequest ping;
  ping.op = ShardOp::kPing;
  ShardResponse response;
  const Status s = socket.Execute(ping, nullptr, &response);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsQueryStop()) << "connect failure must look like a shard "
                                   "fault, got "
                                << s.ToString();
}

TEST_F(ServeTransportTest, ServerReapsFinishedConnectionThreads) {
  OpenStore();
  ShardServer server(store_.get(), dir_.path() + "/reap.sock");
  ASSERT_TRUE(server.Start().ok());
  SocketShardTransport socket(dir_.path() + "/reap.sock");
  ShardRequest ping;
  ping.op = ShardOp::kPing;
  ShardResponse ignored;
  // Each Execute opens (and closes) its own connection; a long-lived
  // server must reap the finished per-connection threads as it goes
  // instead of accumulating one joinable handle + stack per request
  // until Stop().
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(socket.Execute(ping, nullptr, &ignored).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.tracked_connection_threads() > 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(server.tracked_connection_threads(), 2u);
  server.Stop();
}

TEST_F(ServeTransportTest, ServerStopUnwedgesInFlightRequests) {
  OpenStore();
  ShardServer server(store_.get(), dir_.path() + "/shard2.sock");
  ASSERT_TRUE(server.Start().ok());
  // A request with a long deadline sits server-side only as long as the
  // query runs; stopping the server mid-connection must not hang Stop().
  std::thread client([&] {
    SocketShardTransport socket(dir_.path() + "/shard2.sock");
    ShardRequest ping;
    ping.op = ShardOp::kPing;
    ShardResponse response;
    socket.Execute(ping, nullptr, &response);  // outcome irrelevant
  });
  client.join();
  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  EXPECT_LT(ElapsedMs(start), 5000.0);
}

}  // namespace
}  // namespace serve
}  // namespace trass
