#include "core/similarity.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

using geo::Point;
using Points = std::vector<Point>;

TEST(FrechetTest, IdenticalTrajectoriesAreAtZero) {
  const Points t = {{0, 0}, {0.5, 0.5}, {1, 1}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(t, t), 0.0);
}

TEST(FrechetTest, SinglePoints) {
  EXPECT_DOUBLE_EQ(DiscreteFrechet({{0, 0}}, {{3, 4}}), 5.0);
}

TEST(FrechetTest, ParallelLinesAtConstantOffset) {
  Points a, b;
  for (int i = 0; i <= 10; ++i) {
    a.push_back({i / 10.0, 0.0});
    b.push_back({i / 10.0, 0.25});
  }
  EXPECT_NEAR(DiscreteFrechet(a, b), 0.25, 1e-12);
}

TEST(FrechetTest, KnownAsymmetricCase) {
  // Walking a straight line vs. a detour: Fréchet is the detour depth.
  const Points line = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const Points detour = {{0, 0}, {1, 0}, {2, 1}, {3, 0}, {4, 0}};
  EXPECT_NEAR(DiscreteFrechet(line, detour), 1.0, 1e-12);
}

TEST(FrechetTest, SymmetricInArguments) {
  Random rnd(63);
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 12).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 17).points;
    EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b), DiscreteFrechet(b, a));
  }
}

TEST(FrechetTest, DominatesHausdorff) {
  // D_F >= D_H always (Fréchet respects order, Hausdorff does not).
  Random rnd(65);
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 10).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 13).points;
    EXPECT_GE(DiscreteFrechet(a, b) + 1e-12, Hausdorff(a, b));
  }
}

TEST(FrechetTest, WithinAgreesWithExact) {
  Random rnd(67);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 15).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 15).points;
    const double exact = DiscreteFrechet(a, b);
    // Stay a relative ulp away from the boundary: the decision procedure
    // works on squared distances, the exact value went through a sqrt.
    for (double eps : {exact * 0.5, exact * 0.99, exact * (1 - 1e-9)}) {
      EXPECT_FALSE(FrechetWithin(a, b, eps))
          << "exact=" << exact << " eps=" << eps;
    }
    for (double eps : {exact * (1 + 1e-9), exact * 1.01, exact * 2}) {
      EXPECT_TRUE(FrechetWithin(a, b, eps))
          << "exact=" << exact << " eps=" << eps;
    }
  }
}

TEST(HausdorffTest, Basic) {
  // Discrete Hausdorff over point sets: the detour point (0.5, 0.4) is
  // 0.4 from the sample at (0.5, 0).
  const Points a = {{0, 0}, {0.5, 0}, {1, 0}};
  const Points b = {{0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.4}};
  EXPECT_NEAR(Hausdorff(a, b), 0.4, 1e-12);
  EXPECT_NEAR(Hausdorff(b, a), 0.4, 1e-12);  // symmetric
}

TEST(HausdorffTest, WithinAgreesWithExact) {
  Random rnd(69);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 12).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 19).points;
    const double exact = Hausdorff(a, b);
    EXPECT_FALSE(HausdorffWithin(a, b, exact * (1 - 1e-9)));
    EXPECT_TRUE(HausdorffWithin(a, b, exact * (1 + 1e-9)));
    EXPECT_TRUE(HausdorffWithin(a, b, exact * 1.1));
  }
}

TEST(DtwTest, IdenticalIsZero) {
  const Points t = {{0, 0}, {0.5, 0.5}, {1, 1}};
  EXPECT_DOUBLE_EQ(Dtw(t, t), 0.0);
}

TEST(DtwTest, SinglePointSumsAllDistances) {
  // Definition 13: if n == 1, DTW is the sum of distances to every point.
  const Points one = {{0, 0}};
  const Points three = {{1, 0}, {2, 0}, {3, 0}};
  EXPECT_DOUBLE_EQ(Dtw(one, three), 6.0);
  EXPECT_DOUBLE_EQ(Dtw(three, one), 6.0);
}

TEST(DtwTest, WarpingAbsorbsResampling) {
  // The same path sampled at different rates has small DTW.
  Points coarse, fine;
  for (int i = 0; i <= 4; ++i) coarse.push_back({i / 4.0, 0.0});
  for (int i = 0; i <= 16; ++i) fine.push_back({i / 16.0, 0.0});
  // Every fine sample pays its offset to the nearest coarse sample:
  // ~1/16 on average over 17 points, so the total stays near 1.0 even
  // though the curves are geometrically identical.
  EXPECT_LT(Dtw(coarse, fine), 1.25);
  EXPECT_LT(DiscreteFrechet(coarse, fine), 0.13);  // max, not sum
}

TEST(DtwTest, DominatesPointwiseLowerBound) {
  // Paper Section VII-B: D_D(Q,T) >= d(q, T) for every q in Q.
  Random rnd(71);
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 10).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 10).points;
    const double dtw = Dtw(a, b);
    for (const Point& q : a) {
      double nearest = 1e18;
      for (const Point& t : b) {
        nearest = std::min(nearest, geo::Distance(q, t));
      }
      ASSERT_GE(dtw + 1e-12, nearest);
    }
  }
}

TEST(DtwTest, WithinAgreesWithExact) {
  Random rnd(73);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 12).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 12).points;
    const double exact = Dtw(a, b);
    for (double eps : {exact * 0.9, exact, exact * 1.1}) {
      EXPECT_EQ(DtwWithin(a, b, eps), exact <= eps)
          << "exact=" << exact << " eps=" << eps;
    }
  }
}

TEST(DispatchTest, MatchesDirectCalls) {
  Random rnd(75);
  const auto a = trass::testing::RandomTrajectory(&rnd, 1, 9).points;
  const auto b = trass::testing::RandomTrajectory(&rnd, 2, 11).points;
  EXPECT_EQ(Similarity(Measure::kFrechet, a, b), DiscreteFrechet(a, b));
  EXPECT_EQ(Similarity(Measure::kHausdorff, a, b), Hausdorff(a, b));
  EXPECT_EQ(Similarity(Measure::kDtw, a, b), Dtw(a, b));
}

TEST(MeasureTest, Names) {
  EXPECT_STREQ(MeasureName(Measure::kFrechet), "Frechet");
  EXPECT_STREQ(MeasureName(Measure::kHausdorff), "Hausdorff");
  EXPECT_STREQ(MeasureName(Measure::kDtw), "DTW");
}

// Lemma 5: if some point of T1 is farther than eps from all of T2, the
// Fréchet distance exceeds eps.
TEST(LemmaTest, Lemma5PointwiseLowerBound) {
  Random rnd(77);
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 10).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 14).points;
    const double frechet = DiscreteFrechet(a, b);
    double worst = 0.0;
    for (const Point& t : a) {
      double nearest = 1e18;
      for (const Point& q : b) {
        nearest = std::min(nearest, geo::Distance(t, q));
      }
      worst = std::max(worst, nearest);
    }
    ASSERT_GE(frechet + 1e-12, worst);
  }
}

// Lemma 12: the endpoint distances lower-bound Fréchet and DTW.
TEST(LemmaTest, Lemma12Endpoints) {
  Random rnd(79);
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 10).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 10).points;
    const double start = geo::Distance(a.front(), b.front());
    const double end = geo::Distance(a.back(), b.back());
    ASSERT_GE(DiscreteFrechet(a, b) + 1e-12, std::max(start, end));
    ASSERT_GE(Dtw(a, b) + 1e-12, std::max(start, end));
  }
}

}  // namespace
}  // namespace core
}  // namespace trass
