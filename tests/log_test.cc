#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/env.h"
#include "kv/log_reader.h"
#include "kv/log_writer.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace kv {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : dir_("log"), path_(dir_.path() + "/wal.log") {}

  void WriteRecords(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path_, &file).ok());
    log::Writer writer(file.get());
    for (const auto& record : records) {
      ASSERT_TRUE(writer.AddRecord(record).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadRecords(bool* corruption = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(Env::Default()->NewSequentialFile(path_, &file).ok());
    log::Reader reader(file.get());
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    if (corruption != nullptr) *corruption = reader.corruption_detected();
    return records;
  }

  trass::testing::ScratchDir dir_;
  std::string path_;
};

TEST_F(LogTest, EmptyLog) {
  WriteRecords({});
  EXPECT_TRUE(ReadRecords().empty());
}

TEST_F(LogTest, SmallRecordsRoundTrip) {
  const std::vector<std::string> records = {"foo", "bar", "", "baz"};
  WriteRecords(records);
  EXPECT_EQ(ReadRecords(), records);
}

TEST_F(LogTest, RecordSpanningMultipleBlocks) {
  // > 3 blocks worth of payload forces FIRST/MIDDLE/LAST fragmentation.
  const std::string big(3 * log::kBlockSize + 1234, 'q');
  WriteRecords({"head", big, "tail"});
  const auto records = ReadRecords();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "head");
  EXPECT_EQ(records[1], big);
  EXPECT_EQ(records[2], "tail");
}

TEST_F(LogTest, RecordsExactlyAtBlockBoundary) {
  // Leave exactly < kHeaderSize bytes at the end of a block so the writer
  // must pad; the reader must skip the padding.
  const std::string a(log::kBlockSize - log::kHeaderSize - 3, 'a');
  WriteRecords({a, "next"});
  const auto records = ReadRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "next");
}

TEST_F(LogTest, ManyRandomRecords) {
  Random rnd(17);
  std::vector<std::string> records;
  for (int i = 0; i < 300; ++i) {
    records.push_back(std::string(rnd.Uniform(5000), 'a' + i % 26));
  }
  WriteRecords(records);
  bool corruption = false;
  EXPECT_EQ(ReadRecords(&corruption), records);
  EXPECT_FALSE(corruption);
}

TEST_F(LogTest, TruncatedTailIsToleratedAsTornWrite) {
  WriteRecords({"first", std::string(1000, 'x')});
  // Truncate mid-record.
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path_, &contents).ok());
  contents.resize(contents.size() - 500);
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(contents, path_, false)
                  .ok());
  const auto records = ReadRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first");
}

TEST_F(LogTest, CorruptedCrcDropsRecord) {
  WriteRecords({"aaaa", "bbbb"});
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path_, &contents).ok());
  contents[log::kHeaderSize + 1] ^= 0x40;  // flip a payload bit of record 1
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(contents, path_, false)
                  .ok());
  bool corruption = false;
  const auto records = ReadRecords(&corruption);
  EXPECT_TRUE(corruption);
  // The corrupted record is dropped; with block-granularity skipping the
  // second record (same block) is dropped too. No bad data surfaces.
  for (const auto& r : records) {
    EXPECT_TRUE(r == "aaaa" || r == "bbbb");
  }
}

}  // namespace
}  // namespace kv
}  // namespace trass
