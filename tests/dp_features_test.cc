#include "core/dp_features.h"

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

TEST(DpFeaturesTest, StructureInvariant) {
  Random rnd(81);
  for (int iter = 0; iter < 100; ++iter) {
    const auto t = trass::testing::RandomTrajectory(&rnd, 1, 50).points;
    const DpFeatures f = DpFeatures::Compute(t, 0.01);
    ASSERT_GE(f.rep_indices.size(), 2u);
    EXPECT_EQ(f.rep_indices.front(), 0u);
    EXPECT_EQ(f.rep_indices.back(), t.size() - 1);
    EXPECT_EQ(f.rep_points.size(), f.rep_indices.size());
    EXPECT_EQ(f.boxes.size(), f.rep_indices.size() - 1);
  }
}

TEST(DpFeaturesTest, BoxesCoverAllRawPoints) {
  Random rnd(83);
  for (int iter = 0; iter < 200; ++iter) {
    const auto t = trass::testing::RandomTrajectory(&rnd, 1, 80).points;
    const DpFeatures f = DpFeatures::Compute(t, 0.005);
    for (const geo::Point& p : t) {
      ASSERT_LT(f.DistancePointToBoxes(p), 1e-9);
    }
  }
}

TEST(DpFeaturesTest, FewRepresentativesForSmoothTrajectories) {
  std::vector<geo::Point> line;
  for (int i = 0; i <= 200; ++i) line.push_back({i / 200.0, 0.0});
  const DpFeatures f = DpFeatures::Compute(line, 0.01);
  EXPECT_EQ(f.rep_indices.size(), 2u);
  EXPECT_EQ(f.boxes.size(), 1u);
}

TEST(DpFeaturesTest, SinglePointTrajectory) {
  const DpFeatures f = DpFeatures::Compute({{0.5, 0.5}}, 0.01);
  EXPECT_EQ(f.rep_indices.size(), 1u);
  EXPECT_TRUE(f.boxes.empty());
  EXPECT_NEAR(f.DistancePointToBoxes({0.5, 0.6}), 0.1, 1e-12);
}

TEST(DpFeaturesTest, PointToBoxesIsLowerBoundOnPointToTrajectory) {
  // Lemma 13's soundness: d(p, T.B) <= d(p, T) for any p.
  Random rnd(85);
  for (int iter = 0; iter < 200; ++iter) {
    const auto t = trass::testing::RandomTrajectory(&rnd, 1, 40).points;
    const DpFeatures f = DpFeatures::Compute(t, 0.01);
    const geo::Point p{rnd.NextDouble(), rnd.NextDouble()};
    double exact = 1e18;
    for (const geo::Point& tp : t) {
      exact = std::min(exact, geo::Distance(p, tp));
    }
    ASSERT_LE(f.DistancePointToBoxes(p), exact + 1e-9);
  }
}

TEST(DpFeaturesTest, BoxToFeatureDistanceIsLowerBoundOnFrechet) {
  // Lemma 14's soundness: for boxes of T1, the edge bound never exceeds
  // the true Fréchet distance between the trajectories.
  Random rnd(87);
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = trass::testing::RandomTrajectory(&rnd, 1, 30).points;
    const auto b = trass::testing::RandomTrajectory(&rnd, 2, 30).points;
    const DpFeatures fa = DpFeatures::Compute(a, 0.01);
    const DpFeatures fb = DpFeatures::Compute(b, 0.01);
    const double frechet = DiscreteFrechet(a, b);
    for (const geo::OrientedBox& box : fa.boxes) {
      ASSERT_LE(BoxToFeatureDistance(box, fb), frechet + 1e-9);
    }
    for (const geo::OrientedBox& box : fb.boxes) {
      ASSERT_LE(BoxToFeatureDistance(box, fa), frechet + 1e-9);
    }
  }
}

TEST(DpFeaturesTest, TighterToleranceKeepsMorePoints) {
  Random rnd(89);
  const auto t = trass::testing::RandomTrajectory(&rnd, 1, 150).points;
  const DpFeatures coarse = DpFeatures::Compute(t, 0.02);
  const DpFeatures fine = DpFeatures::Compute(t, 0.0005);
  EXPECT_LE(coarse.rep_indices.size(), fine.rep_indices.size());
}

}  // namespace
}  // namespace core
}  // namespace trass
