#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace trass {
namespace crc32c {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // Known CRC32C test vectors (RFC 3720 / LevelDB's crc32c_test).
  char buf[32];

  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, Value(buf, sizeof(buf)));

  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46dd794eu, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(0x113fdb5cu, Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, Values) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
}

TEST(Crc32cTest, Extend) {
  EXPECT_EQ(Value("hello world", 11), Extend(Value("hello ", 6), "world", 5));
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

}  // namespace
}  // namespace crc32c
}  // namespace trass
