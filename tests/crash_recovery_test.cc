// Failure injection: simulate crashes by truncating the write-ahead log
// at arbitrary byte offsets and verify the engine reopens cleanly and
// recovers a consistent prefix of the acknowledged writes — never
// corrupted data, never a write that was not issued.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "kv/db.h"
#include "kv/filename.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace kv {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() : dir_("crash") {}

  std::string DbPath() const { return dir_.path() + "/db"; }

  // Finds the live WAL (largest .log number) in the db directory.
  std::string LiveWalPath() {
    std::vector<std::string> children;
    EXPECT_TRUE(Env::Default()->GetChildren(DbPath(), &children).ok());
    uint64_t best = 0;
    std::string path;
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kLogFile && number >= best) {
        best = number;
        path = DbPath() + "/" + child;
      }
    }
    return path;
  }

  trass::testing::ScratchDir dir_;
};

TEST_F(CrashRecoveryTest, TruncatedWalRecoversPrefix) {
  Random rnd(401);
  for (int trial = 0; trial < 6; ++trial) {
    Env::Default()->RemoveDirRecursively(DbPath());
    std::map<std::string, std::string> model;
    {
      Options options;
      options.write_buffer_size = 1 << 20;  // keep everything in the WAL
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
      for (int i = 0; i < 300; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const std::string value(20 + rnd.Uniform(100), 'a' + i % 26);
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
        model[key] = value;
      }
      // Simulate a crash: leak the memtable state by truncating the WAL
      // behind the DB's back, then drop the DB without flushing.
      const std::string wal = LiveWalPath();
      ASSERT_FALSE(wal.empty());
      std::string contents;
      ASSERT_TRUE(Env::Default()->ReadFileToString(wal, &contents).ok());
      const size_t cut =
          contents.size() / 4 + rnd.Uniform(contents.size() / 2);
      contents.resize(cut);
      // Suppress the destructor's flush by releasing after truncation:
      // the flush rewrites an SSTable from the memtable, which would mask
      // the injected WAL damage, so wipe its output afterwards instead.
      db.reset();
      // Remove any SSTs the destructor flushed — the crash scenario is
      // "process died before any flush".
      std::vector<std::string> children;
      ASSERT_TRUE(Env::Default()->GetChildren(DbPath(), &children).ok());
      for (const auto& child : children) {
        uint64_t number;
        FileType type;
        if (ParseFileName(child, &number, &type) &&
            (type == FileType::kTableFile ||
             type == FileType::kManifestFile ||
             type == FileType::kCurrentFile)) {
          ASSERT_TRUE(
              Env::Default()->RemoveFile(DbPath() + "/" + child).ok());
        }
      }
      ASSERT_TRUE(
          Env::Default()->WriteStringToFile(contents, wal, false).ok());
    }
    // Reopen: must succeed and contain a consistent prefix.
    Options options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
    int recovered = 0;
    bool gap_seen = false;
    for (int i = 0; i < 300; ++i) {
      const std::string key = "key-" + std::to_string(i);
      std::string value;
      const Status s = db->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        // Anything recovered must match exactly what was written.
        ASSERT_EQ(value, model[key]) << key;
        // Writes are sequential, so recovery must be a prefix.
        ASSERT_FALSE(gap_seen) << "non-prefix recovery at " << key;
        ++recovered;
      } else {
        gap_seen = true;
      }
    }
    // Cutting the WAL at 25-75% must lose the tail but keep a prefix.
    EXPECT_GT(recovered, 0) << "trial " << trial;
    EXPECT_LT(recovered, 300) << "trial " << trial;
  }
}

TEST_F(CrashRecoveryTest, GarbageAppendedToWalIsIgnored) {
  std::unique_ptr<DB> db;
  {
    Options options;
    ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "stable", "value").ok());
    db.reset();  // destructor flushes and switches to a fresh WAL
    const std::string wal = LiveWalPath();
    std::string contents;
    ASSERT_TRUE(Env::Default()->ReadFileToString(wal, &contents).ok());
    contents += std::string(100, '\x5a');  // torn garbage tail
    ASSERT_TRUE(
        Env::Default()->WriteStringToFile(contents, wal, false).ok());
  }
  Options options;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
  std::string value;
  // The destructor flushed before our append, so the row is in an SST;
  // the garbage WAL tail must not break recovery.
  EXPECT_TRUE(db->Get(ReadOptions(), "stable", &value).ok());
  EXPECT_EQ(value, "value");
}

TEST_F(CrashRecoveryTest, MissingCurrentFileStartsFresh) {
  {
    Options options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(
      Env::Default()->RemoveFile(CurrentFileName(DbPath())).ok());
  // Without CURRENT the manifest is unreachable; the store must still
  // open (as empty) rather than crash.
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, DbPath(), &db).ok());
}

}  // namespace
}  // namespace kv
}  // namespace trass
