#include "core/pruning.h"

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

TEST(MinDistToRegionTest, QueryInsideRegionIsZero) {
  const geo::Mbr query(0.4, 0.4, 0.6, 0.6);
  const geo::Mbr region(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(MinDistToRegion(query, region), 0.0);
}

TEST(MinDistToRegionTest, DisjointRegion) {
  const geo::Mbr query(0.0, 0.0, 0.1, 0.1);
  const geo::Mbr region(0.5, 0.0, 0.6, 0.1);
  // The query's left edge is 0.5 away, the right edge 0.4 -> max is 0.5.
  EXPECT_NEAR(MinDistToRegion(query, region), 0.5, 1e-12);
}

TEST(MinDistToRegionTest, SmallRegionInsideQueryMbr) {
  // A tiny region centered in a large query MBR: far edges dominate.
  const geo::Mbr query(0.0, 0.0, 1.0, 1.0);
  const geo::Mbr region(0.45, 0.45, 0.55, 0.55);
  EXPECT_NEAR(MinDistToRegion(query, region), 0.45, 1e-12);
}

TEST(MinDistToRegionTest, UnionOfRectsUsesNearest) {
  const geo::Mbr query(0.0, 0.0, 0.1, 0.1);
  const std::vector<geo::Mbr> region = {geo::Mbr(0.5, 0.0, 0.6, 0.1),
                                        geo::Mbr(0.15, 0.0, 0.2, 0.1)};
  EXPECT_NEAR(MinDistToRegion(query, region), 0.15, 1e-12);
}

TEST(MinDistLowerBoundsSimilarity, ElementBound) {
  // Lemma 9 soundness: for any trajectory fully inside a region, the
  // region bound never exceeds the true Fréchet distance to the query.
  Random rnd(101);
  for (int iter = 0; iter < 300; ++iter) {
    const auto q = trass::testing::RandomTrajectory(&rnd, 1, 15).points;
    const auto t = trass::testing::RandomTrajectory(&rnd, 2, 15).points;
    const geo::Mbr region = geo::Mbr::Of(t);
    const double bound = MinDistToRegion(geo::Mbr::Of(q), region);
    const double frechet = DiscreteFrechet(q, t);
    ASSERT_LE(bound, frechet + 1e-9);
  }
}

TEST(RectToPointsDistanceTest, Basics) {
  const std::vector<geo::Point> points = {{0.0, 0.0}, {0.5, 0.5}};
  EXPECT_DOUBLE_EQ(
      RectToPointsDistance(geo::Mbr(0.4, 0.4, 0.6, 0.6), points), 0.0);
  EXPECT_NEAR(RectToPointsDistance(geo::Mbr(0.7, 0.5, 0.9, 0.6), points),
              0.2, 1e-12);
}

TEST(ComputeMaxRTest, SmallQueryUnconstrained) {
  // A query smaller than 2*eps accepts every resolution.
  EXPECT_EQ(ComputeMaxR(0.001, 0.001, 0.01, 16), 16);
}

TEST(ComputeMaxRTest, LargeQueryForcesCoarseElements) {
  // Query spanning 0.5 with eps 0.01: elements must be >= 0.48 wide,
  // so resolution <= 2 (element at rho has side 2*0.5^rho).
  const int max_r = ComputeMaxR(0.5, 0.5, 0.01, 16);
  EXPECT_LE(max_r, 3);
  // An element at max_r satisfies the gap condition...
  EXPECT_GE(2.0 * std::pow(0.5, max_r), 0.5 - 2 * 0.01);
  // ...and one level deeper does not.
  EXPECT_LT(2.0 * std::pow(0.5, max_r + 1), 0.5 - 2 * 0.01);
}

TEST(ComputeMinRTest, GrowsAsEpsShrinks) {
  const geo::Mbr query(0.5, 0.5, 0.51, 0.51);
  const int coarse = ComputeMinR(query, 0.05, 16);
  const int fine = ComputeMinR(query, 0.001, 16);
  EXPECT_LE(coarse, fine);
}

class GlobalPrunerTest : public ::testing::Test {
 protected:
  GlobalPrunerTest() : xz_(12) {}

  index::XzStar xz_;
};

TEST_F(GlobalPrunerTest, CandidatesCoverAllSimilarTrajectories) {
  // The central soundness property: every trajectory within eps of the
  // query has its index value inside some candidate range.
  Random rnd(103);
  for (int iter = 0; iter < 40; ++iter) {
    const auto query = trass::testing::RandomTrajectory(&rnd, 1, 20).points;
    const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
    GlobalPruner pruner(&xz_, &ctx);
    for (double eps : {0.001, 0.01, 0.05}) {
      const auto ranges = pruner.CandidateRanges(eps);
      for (int j = 0; j < 40; ++j) {
        auto t = trass::testing::RandomTrajectory(&rnd, 2, 20).points;
        const double d = DiscreteFrechet(query, t);
        if (d > eps) continue;
        const int64_t value = xz_.Encode(xz_.Index(t));
        bool covered = false;
        for (const auto& [lo, hi] : ranges) {
          if (value >= lo && value <= hi) {
            covered = true;
            break;
          }
        }
        ASSERT_TRUE(covered) << "similar trajectory pruned, d=" << d
                             << " eps=" << eps;
      }
    }
  }
}

TEST_F(GlobalPrunerTest, SimilarCopiesAlwaysCovered) {
  // Perturbed copies of the query itself (guaranteed-similar inputs).
  Random rnd(105);
  for (int iter = 0; iter < 60; ++iter) {
    const auto query = trass::testing::RandomTrajectory(&rnd, 1, 25).points;
    const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
    GlobalPruner pruner(&xz_, &ctx);
    const double eps = 0.005;
    const auto ranges = pruner.CandidateRanges(eps);
    for (int j = 0; j < 20; ++j) {
      std::vector<geo::Point> copy = query;
      const double dx = rnd.UniformDouble(-eps, eps) * 0.7;
      const double dy = rnd.UniformDouble(-eps, eps) * 0.7;
      for (auto& p : copy) {
        p.x = std::clamp(p.x + dx, 0.0, 1.0);
        p.y = std::clamp(p.y + dy, 0.0, 1.0);
      }
      if (DiscreteFrechet(query, copy) > eps) continue;
      const int64_t value = xz_.Encode(xz_.Index(copy));
      bool covered = false;
      for (const auto& [lo, hi] : ranges) {
        if (value >= lo && value <= hi) {
          covered = true;
          break;
        }
      }
      ASSERT_TRUE(covered);
    }
  }
}

TEST_F(GlobalPrunerTest, PrunesFarAwayRegions) {
  // Effectiveness: a compact query must not select index spaces of far
  // corners of the space.
  Random rnd(107);
  std::vector<geo::Point> query;
  for (int i = 0; i < 20; ++i) {
    query.push_back({0.1 + i * 0.001, 0.1 + i * 0.001});
  }
  const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
  GlobalPruner pruner(&xz_, &ctx);
  const auto ranges = pruner.CandidateRanges(0.005);
  ASSERT_FALSE(ranges.empty());
  // A trajectory near (0.9, 0.9) must not be covered.
  std::vector<geo::Point> far;
  for (int i = 0; i < 20; ++i) {
    far.push_back({0.9 + i * 0.001, 0.9 + i * 0.001});
  }
  const int64_t far_value = xz_.Encode(xz_.Index(far));
  for (const auto& [lo, hi] : ranges) {
    EXPECT_FALSE(far_value >= lo && far_value <= hi);
  }
}

TEST_F(GlobalPrunerTest, CandidateCountShrinksWithEps) {
  Random rnd(109);
  const auto query = trass::testing::RandomTrajectory(&rnd, 1, 30).points;
  const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
  GlobalPruner pruner(&xz_, &ctx);
  const auto small = pruner.CandidateRanges(0.001);
  const auto large = pruner.CandidateRanges(0.05);
  EXPECT_LE(GlobalPruner::CountValues(small),
            GlobalPruner::CountValues(large));
}

TEST_F(GlobalPrunerTest, IndexSpaceLowerBoundIsAdmissible) {
  // The top-k priority must never exceed the true distance of any
  // trajectory stored in that index space.
  Random rnd(111);
  for (int iter = 0; iter < 200; ++iter) {
    const auto query = trass::testing::RandomTrajectory(&rnd, 1, 15).points;
    const auto t = trass::testing::RandomTrajectory(&rnd, 2, 15).points;
    const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
    GlobalPruner pruner(&xz_, &ctx);
    const auto space = xz_.Index(t);
    const double bound = pruner.IndexSpaceLowerBound(space.seq, space.pos);
    const double frechet = DiscreteFrechet(query, t);
    ASSERT_LE(bound, frechet + 1e-9)
        << "bound=" << bound << " frechet=" << frechet;
    const double element_bound = pruner.ElementLowerBound(space.seq);
    ASSERT_LE(element_bound, bound + 1e-12);
  }
}

TEST_F(GlobalPrunerTest, RangesAreSortedDisjoint) {
  Random rnd(113);
  const auto query = trass::testing::RandomTrajectory(&rnd, 1, 20).points;
  const QueryGeometry ctx = QueryGeometry::Make(query, 0.01);
  GlobalPruner pruner(&xz_, &ctx);
  const auto ranges = pruner.CandidateRanges(0.01);
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i].first, ranges[i].second);
    if (i > 0) EXPECT_GT(ranges[i].first, ranges[i - 1].second + 1);
  }
}

}  // namespace
}  // namespace core
}  // namespace trass
