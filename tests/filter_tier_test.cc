// Filter-tier suite: Elias-Fano and fingerprint units, snapshot probe
// semantics, the filter-on/off equivalence matrix (measures × query
// paths × refine_threads — results must be byte-identical), ingest
// visibility (the tier never claims emptiness for a watermark-visible
// row), scrub-after-corruption rebuild, and the seeded crash-mid-ingest
// chaos stage (FilterChaos.*, rerun one schedule with
// TRASS_CHAOS_SEED=<seed>).

#include "filter/filter_tier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "filter/elias_fano.h"
#include "filter/fingerprint.h"
#include "kv/fault_injection_env.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace {

using core::Measure;
using core::QueryMetrics;
using core::SearchResult;
using core::Trajectory;
using core::TrassOptions;
using core::TrassStore;

// ---------------------------------------------------------------- units

TEST(EliasFanoTest, MatchesReferenceAcrossShapes) {
  Random rnd(20260809);
  const struct {
    size_t count;
    int64_t universe;
  } shapes[] = {{0, 100}, {1, 1}, {1, int64_t{1} << 40},  {50, 60},
                {1000, 1000},  // fully dense
                {500, int64_t{1} << 35}, {3000, 1 << 20}};
  for (const auto& shape : shapes) {
    std::set<int64_t> unique;
    while (unique.size() < shape.count) {
      unique.insert(static_cast<int64_t>(
          rnd.Uniform(static_cast<uint64_t>(shape.universe))));
    }
    std::vector<int64_t> values(unique.begin(), unique.end());
    filter::EliasFano ef;
    ef.Build(values);
    ASSERT_EQ(ef.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(ef.Get(i), values[i]) << "i=" << i;
    }
    // LowerBound against the std reference on hits, misses, and ends.
    for (int probe = 0; probe < 200; ++probe) {
      const int64_t x = static_cast<int64_t>(
          rnd.Uniform(static_cast<uint64_t>(shape.universe + 2)));
      const size_t expected = static_cast<size_t>(
          std::lower_bound(values.begin(), values.end(), x) - values.begin());
      ASSERT_EQ(ef.LowerBound(x), expected) << "x=" << x;
    }
    if (!values.empty()) {
      EXPECT_EQ(ef.LowerBound(values.back() + 1), values.size());
      EXPECT_EQ(ef.CountInRange(values.front(), values.back()),
                values.size());
    }
    EXPECT_EQ(ef.CountInRange(5, 4), 0u);  // inverted range
  }
}

TEST(FingerprintTest, QuantizeOutwardContains) {
  Random rnd(7);
  for (int i = 0; i < 1000; ++i) {
    geo::Mbr m(rnd.UniformDouble(0, 0.5), rnd.UniformDouble(0, 0.5),
               rnd.UniformDouble(0.5, 1.0), rnd.UniformDouble(0.5, 1.0));
    const filter::QuantizedMbr q = filter::QuantizeOutward(m);
    EXPECT_LE(static_cast<double>(q.min_x), m.min_x());
    EXPECT_LE(static_cast<double>(q.min_y), m.min_y());
    EXPECT_GE(static_cast<double>(q.max_x), m.max_x());
    EXPECT_GE(static_cast<double>(q.max_y), m.max_y());
  }
}

TEST(FingerprintTest, SignatureSimilarityOrdersByOverlap) {
  filter::FingerprintParams params;
  auto walk = [](double x0, double y0, int n) {
    std::vector<geo::Point> points;
    for (int i = 0; i < n; ++i) {
      points.push_back(geo::Point{x0 + 0.001 * i, y0 + 0.0005 * i});
    }
    return points;
  };
  const auto base = walk(0.30, 0.30, 60);
  const auto same = walk(0.30, 0.30, 60);
  const auto near = walk(0.3005, 0.3002, 60);
  const auto far = walk(0.80, 0.75, 60);
  const auto sig_base = filter::MinhashSignature(base, params);
  ASSERT_EQ(sig_base.size(), static_cast<size_t>(params.hashes));
  EXPECT_EQ(filter::EstimateSimilarity(
                sig_base, filter::MinhashSignature(same, params)),
            1.0);  // deterministic
  const double near_sim = filter::EstimateSimilarity(
      sig_base, filter::MinhashSignature(near, params));
  const double far_sim = filter::EstimateSimilarity(
      sig_base, filter::MinhashSignature(far, params));
  EXPECT_GE(near_sim, far_sim);
  EXPECT_LT(far_sim, 0.5);
}

TEST(FilterTierTest, SnapshotProbesAndIdempotentAdds) {
  filter::FilterTierOptions options;
  options.enable = true;
  filter::FilterTier tier(options);

  auto row = [](int64_t value, int64_t tid, double x, double y) {
    filter::FilterRowData r;
    r.index_value = value;
    r.tid = tid;
    r.mbr = geo::Mbr(x, y, x + 0.01, y + 0.01);
    return r;
  };
  tier.AddRows({row(10, 1, 0.1, 0.1), row(10, 2, 0.12, 0.12),
                row(40, 3, 0.9, 0.9)});
  tier.AddRows({row(10, 1, 0.1, 0.1)});  // re-delivery must not double count

  auto snap = tier.snapshot();
  EXPECT_EQ(snap->element_count(), 2u);
  EXPECT_EQ(snap->CountForValue(10), 2u);
  EXPECT_EQ(snap->CountForValue(40), 1u);
  EXPECT_EQ(snap->CountForValue(11), 0u);
  EXPECT_GT(snap->memory_bytes(), 0u);

  const geo::Mbr query(0.1, 0.1, 0.15, 0.15);
  filter::ProbeStats stats;
  // Absent value.
  EXPECT_EQ(snap->ProbeValue(11, query, 1.0, true, &stats),
            filter::ProbeResult::kAbsent);
  // Present and near.
  EXPECT_EQ(snap->ProbeValue(10, query, 0.05, true, &stats),
            filter::ProbeResult::kKeep);
  // Present but provably far at small eps.
  EXPECT_EQ(snap->ProbeValue(40, query, 0.05, true, &stats),
            filter::ProbeResult::kMbrPruned);
  EXPECT_EQ(stats.elements_pruned, 1u);
  EXPECT_EQ(stats.mbr_pruned, 1u);

  // Range probe: the far value splits out of the candidate range, the
  // absent values only shrink it.
  std::vector<std::pair<int64_t, int64_t>> surviving;
  filter::ProbeStats range_stats;
  ASSERT_TRUE(snap->ProbeRanges({{0, 100}}, query, 0.05, true, nullptr,
                                &surviving, &range_stats)
                  .ok());
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0], (std::pair<int64_t, int64_t>{10, 10}));
  EXPECT_EQ(range_stats.elements_pruned, 99u);  // 101 candidates, 2 present
  EXPECT_EQ(range_stats.mbr_pruned, 1u);

  // Subtree probe spanning only the far value.
  filter::ProbeStats subtree_stats;
  EXPECT_EQ(snap->ProbeSubtree(20, 60, query, 0.05, &subtree_stats),
            filter::ProbeResult::kMbrPruned);
  EXPECT_EQ(snap->ProbeSubtree(50, 60, query, 0.05, &subtree_stats),
            filter::ProbeResult::kAbsent);

  // Validation: a fresh image missing value 40 and adding 50 counts both.
  std::vector<filter::FilterRowData> fresh = {
      row(10, 1, 0.1, 0.1), row(10, 2, 0.12, 0.12), row(50, 4, 0.5, 0.5)};
  EXPECT_EQ(tier.ValidateAndRebuild(std::move(fresh)), 2u);
  EXPECT_EQ(tier.snapshot()->CountForValue(50), 1u);
  EXPECT_EQ(tier.snapshot()->CountForValue(40), 0u);
}

TEST(FilterTierTest, ProbeRangesHonorsCancel) {
  filter::FilterTierOptions options;
  options.enable = true;
  filter::FilterTier tier(options);
  std::vector<filter::FilterRowData> rows;
  for (int64_t v = 0; v < 4096; ++v) {
    filter::FilterRowData r;
    r.index_value = v;
    r.tid = v;
    r.mbr = geo::Mbr(0.4, 0.4, 0.41, 0.41);
    rows.push_back(std::move(r));
  }
  tier.RebuildFrom(std::move(rows));
  auto snap = tier.snapshot();

  std::atomic<bool> cancel{true};
  QueryContext control;
  control.SetCancelFlag(&cancel);
  std::vector<std::pair<int64_t, int64_t>> surviving;
  filter::ProbeStats stats;
  Status s = snap->ProbeRanges({{0, 4095}}, geo::Mbr(0.4, 0.4, 0.5, 0.5),
                               1.0, false, &control, &surviving, &stats);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
}

// ------------------------------------------------------- store fixtures

TrassOptions BaseOptions(bool filter_on, size_t refine_threads) {
  TrassOptions options;
  options.shards = 4;
  options.max_resolution = 12;
  options.scan_threads = 2;
  options.refine_threads = refine_threads;
  options.db_options.write_buffer_size = 256 * 1024;
  options.filter_tier.enable = filter_on;
  return options;
}

void LoadAll(TrassStore* store, const std::vector<Trajectory>& data) {
  ASSERT_TRUE(store->PutBatch(data).ok());
  ASSERT_TRUE(store->Flush().ok());
}

// Clustered dataset: most trajectories in one dense corner, a few
// outliers elsewhere — the sparse-region shape the tier exists for.
std::vector<Trajectory> ClusteredDataset(uint64_t seed, size_t count) {
  Random rnd(static_cast<uint32_t>(seed));
  std::vector<Trajectory> data;
  data.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const bool outlier = i % 17 == 0;
    const double lo = outlier ? 0.70 : 0.15;
    const double hi = outlier ? 0.95 : 0.40;
    data.push_back(trass::testing::RandomTrajectory(
        &rnd, i + 1, 4 + static_cast<int>(rnd.Uniform(40)), lo, hi));
  }
  return data;
}

// ------------------------------------------------------- equivalence

TEST(FilterEquivalence, AllPathsByteIdentical) {
  const auto data = ClusteredDataset(20260809, 400);
  trass::testing::ScratchDir dir("filter_equiv");

  // Query probes: some inside the dense cluster, some in sparse/empty
  // space, some spanning both.
  Random rnd(99);
  std::vector<std::vector<geo::Point>> queries;
  for (int i = 0; i < 6; ++i) {
    const double lo = (i % 3 == 0) ? 0.2 : (i % 3 == 1 ? 0.55 : 0.85);
    queries.push_back(
        trass::testing::RandomTrajectory(&rnd, 1000 + i, 12, lo, lo + 0.1)
            .points);
  }
  const geo::Mbr windows[] = {geo::Mbr(0.2, 0.2, 0.3, 0.3),
                              geo::Mbr(0.55, 0.55, 0.65, 0.65),
                              geo::Mbr(0.05, 0.05, 0.95, 0.95)};

  for (const size_t refine_threads : {size_t{1}, size_t{8}}) {
    // Reference store: filter off.
    std::unique_ptr<TrassStore> off;
    kv::Env::Default()->RemoveDirRecursively(dir.path() + "/off");
    ASSERT_TRUE(TrassStore::Open(BaseOptions(false, refine_threads),
                                 dir.path() + "/off", &off)
                    .ok());
    LoadAll(off.get(), data);
    std::unique_ptr<TrassStore> on;
    kv::Env::Default()->RemoveDirRecursively(dir.path() + "/on");
    ASSERT_TRUE(TrassStore::Open(BaseOptions(true, refine_threads),
                                 dir.path() + "/on", &on)
                    .ok());
    LoadAll(on.get(), data);

    for (const Measure measure :
         {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
      for (const auto& q : queries) {
        for (const double eps : {0.01, 0.05, 0.2}) {
          std::vector<SearchResult> r_off, r_on;
          QueryMetrics m_off, m_on;
          ASSERT_TRUE(
              off->ThresholdSearch(q, eps, measure, &r_off, &m_off).ok());
          ASSERT_TRUE(
              on->ThresholdSearch(q, eps, measure, &r_on, &m_on).ok());
          ASSERT_EQ(r_off.size(), r_on.size());
          for (size_t i = 0; i < r_off.size(); ++i) {
            EXPECT_EQ(r_off[i].id, r_on[i].id);
            EXPECT_EQ(r_off[i].distance, r_on[i].distance);  // byte-identical
          }
          // The filter may only shrink what the store is asked to read.
          EXPECT_LE(m_on.index_values, m_off.index_values);
          EXPECT_GT(m_on.filter_memory_bytes, 0u);
          EXPECT_EQ(m_off.filter_memory_bytes, 0u);
        }
        for (const int k : {1, 5, 25}) {
          std::vector<SearchResult> r_off, r_on;
          QueryMetrics m_off, m_on;
          ASSERT_TRUE(off->TopKSearch(q, k, measure, &r_off, &m_off).ok());
          ASSERT_TRUE(on->TopKSearch(q, k, measure, &r_on, &m_on).ok());
          ASSERT_EQ(r_off.size(), r_on.size());
          for (size_t i = 0; i < r_off.size(); ++i) {
            EXPECT_EQ(r_off[i].id, r_on[i].id);
            EXPECT_EQ(r_off[i].distance, r_on[i].distance);
          }
          EXPECT_LE(m_on.index_values, m_off.index_values);
        }
      }
    }
    for (const geo::Mbr& window : windows) {
      std::vector<uint64_t> ids_off, ids_on;
      QueryMetrics m_off, m_on;
      ASSERT_TRUE(off->RangeQuery(window, &ids_off, &m_off).ok());
      ASSERT_TRUE(on->RangeQuery(window, &ids_on, &m_on).ok());
      EXPECT_EQ(ids_off, ids_on);
      EXPECT_LE(m_on.index_values, m_off.index_values);
    }
    {
      std::vector<std::pair<uint64_t, uint64_t>> pairs_off, pairs_on;
      ASSERT_TRUE(
          off->SimilarityJoin(0.02, Measure::kFrechet, &pairs_off).ok());
      ASSERT_TRUE(
          on->SimilarityJoin(0.02, Measure::kFrechet, &pairs_on).ok());
      EXPECT_EQ(pairs_off, pairs_on);
    }
  }
}

TEST(FilterEquivalence, SparseRegionActuallyPrunes) {
  // A query far from the dense cluster must see real pruning work: the
  // tier's whole reason to exist (bench_fig11's sparse-region pass
  // enforces the ≥5x ratio; here we assert the mechanism fires at all).
  const auto data = ClusteredDataset(20260810, 600);
  trass::testing::ScratchDir dir("filter_sparse");
  std::unique_ptr<TrassStore> on;
  ASSERT_TRUE(
      TrassStore::Open(BaseOptions(true, 2), dir.path() + "/on", &on).ok());
  LoadAll(on.get(), data);

  // Sweep probes across the space (dense cluster, outlier band, and the
  // gap between) at small eps: somewhere a candidate range must contain
  // a present element whose aggregate MBR is provably far.
  Random rnd(5);
  uint64_t total_pruned = 0;
  for (double base = 0.15; base < 0.9; base += 0.08) {
    const auto q = trass::testing::RandomTrajectory(&rnd, 7777, 10, base,
                                                    base + 0.06)
                       .points;
    for (const double eps : {0.005, 0.02, 0.06}) {
      std::vector<SearchResult> results;
      QueryMetrics m;
      ASSERT_TRUE(
          on->ThresholdSearch(q, eps, Measure::kFrechet, &results, &m).ok());
      total_pruned += m.filter_elements_pruned + m.filter_mbr_pruned +
                      m.fingerprint_skips;
    }
    std::vector<SearchResult> topk;
    QueryMetrics mk;
    ASSERT_TRUE(on->TopKSearch(q, 3, Measure::kFrechet, &topk, &mk).ok());
    total_pruned += mk.filter_elements_pruned + mk.filter_mbr_pruned +
                    mk.fingerprint_skips;
  }
  EXPECT_GT(total_pruned, 0u);
}

TEST(FilterEquivalence, ReopenRebuildsTier) {
  const auto data = ClusteredDataset(20260811, 200);
  trass::testing::ScratchDir dir("filter_reopen");
  const std::string path = dir.path() + "/store";
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(BaseOptions(true, 2), path, &store).ok());
    LoadAll(store.get(), data);
  }
  std::unique_ptr<TrassStore> reopened;
  ASSERT_TRUE(TrassStore::Open(BaseOptions(true, 2), path, &reopened).ok());
  Random rnd(11);
  const auto q =
      trass::testing::RandomTrajectory(&rnd, 5000, 10, 0.2, 0.35).points;
  std::vector<SearchResult> results;
  QueryMetrics m;
  ASSERT_TRUE(
      reopened->ThresholdSearch(q, 0.1, Measure::kFrechet, &results, &m)
          .ok());
  EXPECT_GT(m.filter_memory_bytes, 0u);
  EXPECT_FALSE(results.empty());
}

// ------------------------------------------- ingest-time consistency

TEST(FilterIngestConsistency, WatermarkVisibleRowsNeverClaimedEmpty) {
  trass::testing::ScratchDir dir("filter_ingest");
  TrassOptions options = BaseOptions(true, 2);
  options.ingest_batch_linger_ms = 0.5;
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(
      TrassStore::Open(options, dir.path() + "/store", &store).ok());

  const auto data = ClusteredDataset(20260812, 120);
  for (const Trajectory& t : data) {
    uint64_t ticket = 0;
    ASSERT_TRUE(store->SubmitAsync(t, 1000, &ticket).ok());
    ASSERT_TRUE(store->WaitForWatermark(ticket, 10000).ok());
    // The freshly visible trajectory must be findable by a self-query:
    // a tier claiming its element empty would prune it here.
    std::vector<SearchResult> results;
    ASSERT_TRUE(store
                    ->ThresholdSearch(t.points, 1e-9, Measure::kFrechet,
                                      &results)
                    .ok());
    const bool found = std::any_of(
        results.begin(), results.end(),
        [&](const SearchResult& r) { return r.id == t.id; });
    ASSERT_TRUE(found) << "tier hid watermark-visible trajectory " << t.id;
  }
}

TEST(FilterIngestConsistency, ConcurrentQueriesDuringIngest) {
  trass::testing::ScratchDir dir("filter_concurrent");
  TrassOptions options = BaseOptions(true, 2);
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(
      TrassStore::Open(options, dir.path() + "/store", &store).ok());
  const auto data = ClusteredDataset(20260813, 300);

  std::atomic<bool> done{false};
  std::thread querier([&] {
    Random rnd(3);
    while (!done.load(std::memory_order_relaxed)) {
      const auto q =
          trass::testing::RandomTrajectory(&rnd, 9000, 8, 0.2, 0.4).points;
      std::vector<SearchResult> results;
      Status s = store->ThresholdSearch(q, 0.05, Measure::kFrechet,
                                        &results);
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });
  for (const Trajectory& t : data) {
    ASSERT_TRUE(store->Put(t).ok());
  }
  done.store(true, std::memory_order_relaxed);
  querier.join();

  // After the dust settles: filter-on answers match a filter-off open.
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  std::unique_ptr<TrassStore> off;
  ASSERT_TRUE(TrassStore::Open(BaseOptions(false, 2), dir.path() + "/store",
                               &off)
                  .ok());
  std::vector<uint64_t> ids;
  ASSERT_TRUE(off->RangeQuery(geo::Mbr(0, 0, 1, 1), &ids).ok());
  EXPECT_EQ(ids.size(), data.size());
}

// ------------------------------------------------- scrub + corruption

TEST(FilterScrub, RebuildHealsACorruptTier) {
  const auto data = ClusteredDataset(20260814, 150);
  trass::testing::ScratchDir dir("filter_scrub");
  std::unique_ptr<TrassStore> store;
  ASSERT_TRUE(
      TrassStore::Open(BaseOptions(true, 2), dir.path() + "/store", &store)
          .ok());
  LoadAll(store.get(), data);

  Random rnd(21);
  const auto q =
      trass::testing::RandomTrajectory(&rnd, 6000, 10, 0.2, 0.35).points;
  std::vector<SearchResult> before;
  ASSERT_TRUE(
      store->ThresholdSearch(q, 0.1, Measure::kFrechet, &before).ok());
  ASSERT_FALSE(before.empty());

  // Simulate tier corruption/drift: wipe it. Every element is now
  // claimed empty — the worst possible stale-emptiness state.
  store->filter_tier()->Clear();
  std::vector<SearchResult> corrupted;
  ASSERT_TRUE(
      store->ThresholdSearch(q, 0.1, Measure::kFrechet, &corrupted).ok());
  EXPECT_TRUE(corrupted.empty());  // demonstrates the drift is observable

  // Scrub validates against a fresh store scan, reports the drift, and
  // rebuilds; queries heal.
  ASSERT_TRUE(store->ScrubReplicas().ok());
  EXPECT_GT(store->filter_scrub_mismatches(), 0u);
  std::vector<SearchResult> after;
  ASSERT_TRUE(
      store->ThresholdSearch(q, 0.1, Measure::kFrechet, &after).ok());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].id, after[i].id);
    EXPECT_EQ(before[i].distance, after[i].distance);
  }

  // A clean follow-up scrub reports agreement.
  ASSERT_TRUE(store->ScrubReplicas().ok());
  EXPECT_EQ(store->filter_scrub_mismatches(), 0u);
}

// ------------------------------------------------------- seeded chaos

// Crash mid-ingest, reopen, and require the rebuilt tier to agree with
// the recovered store: filter-on answers must be byte-identical to
// filter-off answers over the same recovered data — no stale emptiness
// claims for rows the WAL replay kept. Reproducible via
// TRASS_CHAOS_SEED (one trial with that exact seed).
TEST(FilterChaos, CrashMidIngestRebuildAgrees) {
  uint64_t base_seed = 20240808;
  if (const char* s = std::getenv("TRASS_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  const int trials = std::getenv("TRASS_CHAOS_SEED") != nullptr ? 1 : 3;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (rerun: TRASS_CHAOS_SEED=" + std::to_string(seed) + ")");
    Random rnd(static_cast<uint32_t>(seed));
    trass::testing::ScratchDir dir("filter_chaos_" + std::to_string(seed));
    const std::string path = dir.path() + "/store";

    kv::FaultInjectionEnv env(kv::Env::Default());
    {
      TrassOptions options = BaseOptions(true, 2);
      options.shards = 2;
      options.db_options.env = &env;
      options.db_options.write_buffer_size = 8 << 10;
      std::unique_ptr<TrassStore> store;
      ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());

      // Random write-path fault mid-ingest; some commits fail, some
      // succeed. The destructor then plays the crash.
      kv::FaultPoint fault;
      fault.op = kv::FaultOp::kAppend;
      fault.kind = rnd.Bernoulli(0.5) ? kv::FaultKind::kIoError
                                      : kv::FaultKind::kShortWrite;
      fault.path_substring = rnd.Bernoulli(0.5) ? ".log" : "";
      fault.countdown = static_cast<int>(rnd.Uniform(60));
      fault.permanent = rnd.Bernoulli(0.3);
      env.InjectFault(fault);

      const auto data = ClusteredDataset(seed, 120);
      for (const auto& t : data) {
        Status s = store->SubmitAsync(t, 50);
        if (!s.ok()) {
          ASSERT_TRUE(s.IsBusy()) << s.ToString();
        }
      }
      (void)store->DrainIngest(5000);
      // "Crash": drop the store without flushing; recovery is the WAL's
      // job and the reopened tier must match whatever replays.
    }
    env.ClearFaults();

    // Reopen with the tier ON, answer probes, then reopen with the tier
    // OFF and require byte-identical answers over the recovered rows.
    auto probe = [&](bool filter_on,
                     std::vector<std::vector<SearchResult>>* out) {
      TrassOptions options = BaseOptions(filter_on, 2);
      options.shards = 2;
      std::unique_ptr<TrassStore> store;
      ASSERT_TRUE(TrassStore::Open(options, path, &store).ok());
      Random qrnd(static_cast<uint32_t>(seed) ^ 0x5a5a5a5a);
      for (int i = 0; i < 8; ++i) {
        const auto q = trass::testing::RandomTrajectory(&qrnd, 8000 + i, 8,
                                                        0.1, 0.9)
                           .points;
        std::vector<SearchResult> results;
        ASSERT_TRUE(store
                        ->ThresholdSearch(q, 0.08, Measure::kFrechet,
                                          &results)
                        .ok());
        out->push_back(std::move(results));
      }
    };
    std::vector<std::vector<SearchResult>> with_tier, without_tier;
    probe(true, &with_tier);
    if (::testing::Test::HasFatalFailure()) return;
    probe(false, &without_tier);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(with_tier.size(), without_tier.size());
    for (size_t i = 0; i < with_tier.size(); ++i) {
      ASSERT_EQ(with_tier[i].size(), without_tier[i].size()) << "probe " << i;
      for (size_t j = 0; j < with_tier[i].size(); ++j) {
        EXPECT_EQ(with_tier[i][j].id, without_tier[i][j].id);
        EXPECT_EQ(with_tier[i][j].distance, without_tier[i][j].distance);
      }
    }
  }
}

}  // namespace
}  // namespace trass
