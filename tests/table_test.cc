#include "kv/table.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kv/dbformat.h"
#include "kv/table_builder.h"
#include "test_util.h"

namespace trass {
namespace kv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, kTypeValue);
  return k;
}

std::string UserKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : dir_("table"), cache_(1 << 20) {}

  void BuildTable(int n, const Options& options) {
    path_ = dir_.path() + "/test.sst";
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(path_, &file).ok());
    TableBuilder builder(options, file.get());
    for (int i = 0; i < n; ++i) {
      builder.Add(IKey(UserKey(i)), "value-" + std::to_string(i));
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());
  }

  std::unique_ptr<Table> OpenTable(const Options& options) {
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(Env::Default()->NewRandomAccessFile(path_, &file).ok());
    std::unique_ptr<Table> table;
    EXPECT_TRUE(
        Table::Open(options, 1, std::move(file), &cache_, &stats_, &table)
            .ok());
    return table;
  }

  trass::testing::ScratchDir dir_;
  std::string path_;
  BlockCache cache_;
  IoStats stats_;
};

TEST_F(TableTest, RoundTripSmall) {
  Options options;
  BuildTable(10, options);
  auto table = OpenTable(options);
  std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
    EXPECT_EQ(iter->value().ToString(), "value-" + std::to_string(i));
  }
  EXPECT_EQ(i, 10);
}

TEST_F(TableTest, RoundTripManyBlocks) {
  Options options;
  options.block_size = 256;  // force many data blocks
  BuildTable(5000, options);
  auto table = OpenTable(options);
  std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
    ASSERT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
  }
  EXPECT_EQ(i, 5000);
}

TEST_F(TableTest, SeekAcrossBlocks) {
  Options options;
  options.block_size = 128;
  BuildTable(1000, options);
  auto table = OpenTable(options);
  std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
  for (int i : {0, 1, 499, 500, 998, 999}) {
    iter->Seek(IKey(UserKey(i), kMaxSequenceNumber));
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
  }
  iter->Seek(IKey("zzzz", kMaxSequenceNumber));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, InternalGetFindsKeys) {
  Options options;
  options.block_size = 128;
  BuildTable(500, options);
  auto table = OpenTable(options);
  for (int i : {0, 123, 499}) {
    bool found = false;
    std::string key, value;
    ASSERT_TRUE(table
                    ->InternalGet(ReadOptions(),
                                  IKey(UserKey(i), kMaxSequenceNumber),
                                  &found, &key, &value)
                    .ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(ExtractUserKey(Slice(key)).ToString(), UserKey(i));
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
}

TEST_F(TableTest, BloomFilterSkipsAbsentKeys) {
  Options options;
  options.bloom_bits_per_key = 10;
  BuildTable(1000, options);
  auto table = OpenTable(options);
  const uint64_t skips_before = stats_.bloom_skips.load();
  int found_count = 0;
  for (int i = 0; i < 200; ++i) {
    bool found = false;
    std::string key, value;
    ASSERT_TRUE(table
                    ->InternalGet(ReadOptions(),
                                  IKey("absent-" + std::to_string(i),
                                       kMaxSequenceNumber),
                                  &found, &key, &value)
                    .ok());
    if (found) ++found_count;
  }
  // Bloom must skip the large majority of absent probes without touching
  // data blocks.
  EXPECT_GT(stats_.bloom_skips.load() - skips_before, 150u);
  (void)found_count;
}

TEST_F(TableTest, BlockCacheServesRepeatReads) {
  Options options;
  options.block_size = 128;
  BuildTable(1000, options);
  auto table = OpenTable(options);
  auto scan = [&] {
    std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
    int count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
    EXPECT_EQ(count, 1000);
  };
  scan();
  const uint64_t blocks_after_first = stats_.blocks_read.load();
  scan();
  // Second scan should be (nearly) all cache hits.
  EXPECT_EQ(stats_.blocks_read.load(), blocks_after_first);
  EXPECT_GT(stats_.cache_hits.load(), 0u);
}

TEST_F(TableTest, OpenRejectsGarbage) {
  path_ = dir_.path() + "/garbage.sst";
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(std::string(100, 'g'), path_, false)
                  .ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(Env::Default()->NewRandomAccessFile(path_, &file).ok());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(
      Table::Open(Options(), 2, std::move(file), nullptr, nullptr, &table)
          .ok());
}

TEST_F(TableTest, OpenRejectsTruncatedFile) {
  path_ = dir_.path() + "/tiny.sst";
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(std::string("ab"), path_, false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(Env::Default()->NewRandomAccessFile(path_, &file).ok());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(
      Table::Open(Options(), 3, std::move(file), nullptr, nullptr, &table)
          .ok());
}

}  // namespace
}  // namespace kv
}  // namespace trass
