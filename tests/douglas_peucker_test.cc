#include "geo/douglas_peucker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace trass {
namespace geo {
namespace {

TEST(DouglasPeuckerTest, EmptyAndSinglePoint) {
  EXPECT_TRUE(DouglasPeucker({}, 0.1).empty());
  const auto one = DouglasPeucker({{0.5, 0.5}}, 0.1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(DouglasPeuckerTest, StraightLineCollapsesToEndpoints) {
  std::vector<Point> line;
  for (int i = 0; i <= 100; ++i) line.push_back({i / 100.0, i / 100.0});
  const auto keep = DouglasPeucker(line, 1e-6);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep.front(), 0u);
  EXPECT_EQ(keep.back(), 100u);
}

TEST(DouglasPeuckerTest, SharpCornerIsKept) {
  std::vector<Point> v = {{0, 0}, {0.25, 0}, {0.5, 0}, {0.5, 0.25},
                          {0.5, 0.5}};
  const auto keep = DouglasPeucker(v, 0.01);
  // The corner at index 2 must be retained.
  EXPECT_NE(std::find(keep.begin(), keep.end(), 2u), keep.end());
}

TEST(DouglasPeuckerTest, ZigZagBelowToleranceCollapses) {
  std::vector<Point> v;
  for (int i = 0; i <= 50; ++i) {
    v.push_back({i / 50.0, (i % 2) * 0.001});  // 1e-3 amplitude zig-zag
  }
  EXPECT_EQ(DouglasPeucker(v, 0.01).size(), 2u);
  EXPECT_GT(DouglasPeucker(v, 1e-5).size(), 2u);
}

TEST(DouglasPeuckerTest, ErrorBoundInvariantHolds) {
  // Property: every dropped point lies within tolerance of the chord
  // between its surrounding kept points.
  Random rnd(21);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Point> points;
    double x = 0.0, y = 0.5;
    const int n = 10 + static_cast<int>(rnd.Uniform(200));
    for (int i = 0; i < n; ++i) {
      points.push_back({x, y});
      x += rnd.NextDouble() * 0.02;
      y += (rnd.NextDouble() - 0.5) * 0.05;
    }
    const double tol = 0.005 + rnd.NextDouble() * 0.02;
    const auto keep = DouglasPeucker(points, tol);
    ASSERT_GE(keep.size(), 2u);
    ASSERT_EQ(keep.front(), 0u);
    ASSERT_EQ(keep.back(), points.size() - 1);
    for (size_t seg = 0; seg + 1 < keep.size(); ++seg) {
      const Point& a = points[keep[seg]];
      const Point& b = points[keep[seg + 1]];
      for (uint32_t i = keep[seg] + 1; i < keep[seg + 1]; ++i) {
        ASSERT_LE(PointSegmentDistance(points[i], a, b), tol + 1e-12);
      }
    }
  }
}

TEST(DouglasPeuckerTest, IndicesAreStrictlyIncreasing) {
  Random rnd(22);
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rnd.NextDouble(), rnd.NextDouble()});
  }
  const auto keep = DouglasPeucker(points, 0.05);
  for (size_t i = 1; i < keep.size(); ++i) {
    ASSERT_LT(keep[i - 1], keep[i]);
  }
}

TEST(DouglasPeuckerTest, ZeroToleranceKeepsAllNonCollinear) {
  std::vector<Point> v = {{0, 0}, {0.1, 0.3}, {0.2, 0.1}, {0.3, 0.4}};
  EXPECT_EQ(DouglasPeucker(v, 0.0).size(), 4u);
}

}  // namespace
}  // namespace geo
}  // namespace trass
