// Durability integration tests: a TrassStore reopened from disk must
// answer queries exactly as before (value directory and ingest statistics
// are rebuilt from the stored rows).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/brute_force.h"
#include "core/trass_store.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() : dir_("persistence") {}

  TrassOptions Options() const {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    return options;
  }

  std::string StorePath() const { return dir_.path() + "/store"; }

  trass::testing::ScratchDir dir_;
};

TEST_F(PersistenceTest, ReopenedStoreAnswersQueries) {
  const auto data = trass::testing::RandomDataset(301, 200);
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &store).ok());
    for (const auto& t : data) ASSERT_TRUE(store->Put(t).ok());
    ASSERT_TRUE(store->Flush().ok());
  }  // closed

  std::unique_ptr<TrassStore> reopened;
  ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &reopened).ok());
  EXPECT_EQ(reopened->num_trajectories(), data.size());
  EXPECT_GT(reopened->distinct_index_values(), 0u);

  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(302);
  for (int iter = 0; iter < 8; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    std::vector<SearchResult> got, expected;
    ASSERT_TRUE(reopened
                    ->ThresholdSearch(query, 0.01, Measure::kFrechet, &got)
                    .ok());
    ASSERT_TRUE(
        brute.Threshold(query, 0.01, Measure::kFrechet, &expected, nullptr)
            .ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
    }
    ASSERT_TRUE(
        reopened->TopKSearch(query, 10, Measure::kFrechet, &got).ok());
    ASSERT_TRUE(
        brute.TopK(query, 10, Measure::kFrechet, &expected, nullptr).ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST_F(PersistenceTest, ReopenWithoutFlushRecoversFromWal) {
  const auto data = trass::testing::RandomDataset(303, 50);
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &store).ok());
    for (const auto& t : data) ASSERT_TRUE(store->Put(t).ok());
    // No Flush(): rows live in WAL + memtable; the DB destructor flushes
    // best-effort, and WAL replay covers a hard crash.
  }
  std::unique_ptr<TrassStore> reopened;
  ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &reopened).ok());
  EXPECT_EQ(reopened->num_trajectories(), data.size());
  std::vector<SearchResult> got;
  ASSERT_TRUE(reopened
                  ->ThresholdSearch(data[7].points, 1e-9, Measure::kFrechet,
                                    &got)
                  .ok());
  bool found = false;
  for (const auto& r : got) found = found || r.id == data[7].id;
  EXPECT_TRUE(found);
}

TEST_F(PersistenceTest, StatisticsSurviveReopen) {
  std::vector<uint64_t> resolution_before, position_before;
  const auto data = trass::testing::RandomDataset(305, 120);
  {
    std::unique_ptr<TrassStore> store;
    ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &store).ok());
    for (const auto& t : data) ASSERT_TRUE(store->Put(t).ok());
    ASSERT_TRUE(store->Flush().ok());
    resolution_before = store->resolution_histogram();
    position_before = store->position_code_histogram();
  }
  std::unique_ptr<TrassStore> reopened;
  ASSERT_TRUE(TrassStore::Open(Options(), StorePath(), &reopened).ok());
  EXPECT_EQ(reopened->resolution_histogram(), resolution_before);
  EXPECT_EQ(reopened->position_code_histogram(), position_before);
}

}  // namespace
}  // namespace core
}  // namespace trass
