#include "util/query_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace trass {
namespace {

TEST(QueryContextTest, DefaultNeverStops) {
  QueryContext control;
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.ShouldStop());
  EXPECT_TRUE(control.Check().ok());
  EXPECT_TRUE(std::isinf(control.RemainingMillis()));
  EXPECT_TRUE(control.ChargeCandidates(1 << 20));  // unlimited budget
  EXPECT_FALSE(control.ShouldStop());
}

TEST(QueryContextTest, NonPositiveDeadlineLeavesQueryUndeadlined) {
  QueryContext control;
  control.SetDeadlineAfterMillis(0.0);
  EXPECT_FALSE(control.has_deadline());
  control.SetDeadlineAfterMillis(-5.0);
  EXPECT_FALSE(control.has_deadline());
}

TEST(QueryContextTest, DeadlineExpires) {
  QueryContext control;
  control.SetDeadlineAfterMillis(1.0);
  EXPECT_TRUE(control.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(control.deadline_expired());
  EXPECT_TRUE(control.ShouldStop());
  const Status s = control.Check();
  EXPECT_TRUE(s.IsTimedOut());
  EXPECT_EQ(control.RemainingMillis(), 0.0);
}

TEST(QueryContextTest, GenerousDeadlineDoesNotStop) {
  QueryContext control;
  control.SetDeadlineAfterMillis(60000.0);
  EXPECT_FALSE(control.ShouldStop());
  EXPECT_TRUE(control.Check().ok());
  EXPECT_GT(control.RemainingMillis(), 1000.0);
}

TEST(QueryContextTest, CancelFlagStopsTheQuery) {
  std::atomic<bool> cancel{false};
  QueryContext control;
  control.SetCancelFlag(&cancel);
  EXPECT_FALSE(control.ShouldStop());
  cancel.store(true);
  EXPECT_TRUE(control.cancelled());
  EXPECT_TRUE(control.Check().IsCancelled());
}

TEST(QueryContextTest, CancelWinsOverExpiredDeadline) {
  std::atomic<bool> cancel{true};
  QueryContext control;
  control.SetCancelFlag(&cancel);
  control.SetDeadlineAfterMillis(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Both conditions hold; the explicit cancel is reported.
  EXPECT_TRUE(control.Check().IsCancelled());
}

TEST(QueryContextTest, CandidateBudgetExhausts) {
  QueryContext control;
  control.SetCandidateBudget(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(control.ChargeCandidates(1)) << "row " << i;
  }
  EXPECT_FALSE(control.ChargeCandidates(1));  // row 11 exceeds the cap
  EXPECT_TRUE(control.budget_exhausted());
  const Status s = control.Check();
  EXPECT_TRUE(s.IsBusy());
  EXPECT_TRUE(s.IsQueryStop());
}

TEST(QueryContextTest, ConcurrentChargesRespectBudget) {
  QueryContext control;
  constexpr uint64_t kBudget = 10000;
  control.SetCandidateBudget(kBudget);
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        if (control.ChargeCandidates(1)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // fetch_add hands out distinct pre-increment values, so exactly
  // kBudget charges see a total within budget.
  EXPECT_EQ(accepted.load(), kBudget);
  EXPECT_TRUE(control.budget_exhausted());
}

}  // namespace
}  // namespace trass
