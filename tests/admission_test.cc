#include "core/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace trass {
namespace core {
namespace {

AdmissionController::Options MakeOptions(int max_concurrent, int max_queue,
                                         double queue_timeout_ms) {
  AdmissionController::Options options;
  options.max_concurrent = max_concurrent;
  options.max_queue = max_queue;
  options.queue_timeout_ms = queue_timeout_ms;
  return options;
}

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionController controller(MakeOptions(0, 0, 10.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(controller.Admit().ok());
  }
  EXPECT_EQ(controller.in_flight(), 100);
  EXPECT_EQ(controller.counters().admitted, 100u);
  EXPECT_EQ(controller.counters().sheds(), 0u);
}

TEST(AdmissionTest, EnforcesMaxConcurrentWithEmptyQueue) {
  AdmissionController controller(MakeOptions(2, 0, 50.0));
  ASSERT_TRUE(controller.Admit().ok());
  ASSERT_TRUE(controller.Admit().ok());
  const Status third = controller.Admit();
  EXPECT_TRUE(third.IsBusy());
  EXPECT_TRUE(third.IsQueryStop());
  EXPECT_EQ(controller.counters().shed_queue_full, 1u);
  EXPECT_EQ(controller.in_flight(), 2);

  controller.Release();
  EXPECT_TRUE(controller.Admit().ok());  // a freed slot admits again
  controller.Release();
  controller.Release();
  EXPECT_EQ(controller.in_flight(), 0);
}

TEST(AdmissionTest, QueuedCallerGetsSlotAfterRelease) {
  AdmissionController controller(MakeOptions(1, 1, 5000.0));
  ASSERT_TRUE(controller.Admit().ok());

  Status queued_status;
  double waited_ms = -1.0;
  std::thread waiter([&] { queued_status = controller.Admit(&waited_ms); });
  // Wait until the thread is actually queued, then free the slot.
  while (controller.counters().queued == 0) {
    std::this_thread::yield();
  }
  controller.Release();
  waiter.join();

  EXPECT_TRUE(queued_status.ok());
  EXPECT_GE(waited_ms, 0.0);
  EXPECT_EQ(controller.counters().queued, 1u);
  EXPECT_EQ(controller.counters().sheds(), 0u);
  controller.Release();
}

TEST(AdmissionTest, QueueTimeoutSheds) {
  AdmissionController controller(MakeOptions(1, 1, 5.0));
  ASSERT_TRUE(controller.Admit().ok());
  double waited_ms = 0.0;
  const Status s = controller.Admit(&waited_ms);
  EXPECT_TRUE(s.IsBusy());
  EXPECT_GE(waited_ms, 5.0);
  EXPECT_EQ(controller.counters().shed_timeout, 1u);
  controller.Release();
}

TEST(AdmissionTest, FullQueueShedsImmediately) {
  AdmissionController controller(MakeOptions(1, 1, 5000.0));
  ASSERT_TRUE(controller.Admit().ok());

  std::thread waiter([&] { (void)controller.Admit(); });
  while (controller.counters().queued == 0) {
    std::this_thread::yield();
  }
  // Slot busy and the one queue position taken: shed without waiting.
  const Status s = controller.Admit();
  EXPECT_TRUE(s.IsBusy());
  EXPECT_EQ(controller.counters().shed_queue_full, 1u);

  controller.Release();
  waiter.join();
  controller.Release();
}

TEST(AdmissionTest, ConfigureRaisingLimitUnblocksQueuedCaller) {
  AdmissionController controller(MakeOptions(1, 1, 5000.0));
  ASSERT_TRUE(controller.Admit().ok());
  Status queued_status;
  std::thread waiter([&] { queued_status = controller.Admit(); });
  while (controller.counters().queued == 0) {
    std::this_thread::yield();
  }
  controller.Configure(MakeOptions(2, 1, 5000.0));
  waiter.join();
  EXPECT_TRUE(queued_status.ok());
  EXPECT_EQ(controller.in_flight(), 2);
  controller.Release();
  controller.Release();
}

TEST(AdmissionTest, SlotReleasesOnlyOnSuccess) {
  AdmissionController controller(MakeOptions(1, 0, 5.0));
  {
    AdmissionSlot slot(&controller);
    ASSERT_TRUE(slot.status().ok());
    EXPECT_EQ(controller.in_flight(), 1);
    AdmissionSlot rejected(&controller);
    EXPECT_TRUE(rejected.status().IsBusy());
  }  // both slots destroyed; only the successful one released
  EXPECT_EQ(controller.in_flight(), 0);
  EXPECT_TRUE(controller.Admit().ok());
  controller.Release();
}

TEST(AdmissionTest, ConcurrentAdmitNeverExceedsLimit) {
  AdmissionController controller(MakeOptions(3, 2, 20.0));
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        AdmissionSlot slot(&controller);
        if (!slot.status().ok()) continue;
        const int now = active.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        admitted.fetch_add(1);
        std::this_thread::yield();
        active.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 3);
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(controller.in_flight(), 0);
  const auto counters = controller.counters();
  EXPECT_EQ(counters.admitted, static_cast<uint64_t>(admitted.load()));
}

}  // namespace
}  // namespace core
}  // namespace trass
