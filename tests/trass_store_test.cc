#include "core/trass_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "baselines/brute_force.h"
#include "core/similarity.h"
#include "kv/fault_injection_env.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

class TrassStoreTest : public ::testing::Test {
 protected:
  TrassStoreTest() : dir_("trass_store") {}

  void OpenStore(TrassOptions options = DefaultOptions()) {
    store_.reset();
    kv::Env::Default()->RemoveDirRecursively(dir_.path() + "/store");
    ASSERT_TRUE(
        TrassStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  static TrassOptions DefaultOptions() {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 256 * 1024;
    return options;
  }

  void Load(const std::vector<Trajectory>& data) {
    for (const Trajectory& t : data) {
      ASSERT_TRUE(store_->Put(t).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<TrassStore> store_;
};

TEST_F(TrassStoreTest, RejectsBadOptions) {
  TrassOptions options;
  options.shards = 0;
  std::unique_ptr<TrassStore> store;
  EXPECT_FALSE(TrassStore::Open(options, dir_.path() + "/x", &store).ok());
  options = TrassOptions();
  options.max_resolution = 99;
  EXPECT_FALSE(TrassStore::Open(options, dir_.path() + "/y", &store).ok());
}

TEST_F(TrassStoreTest, EmptyStoreReturnsNothing) {
  OpenStore();
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch({{0.5, 0.5}, {0.51, 0.51}}, 0.01,
                                    Measure::kFrechet, &results)
                  .ok());
  EXPECT_TRUE(results.empty());
  ASSERT_TRUE(store_
                  ->TopKSearch({{0.5, 0.5}, {0.51, 0.51}}, 5,
                               Measure::kFrechet, &results)
                  .ok());
  EXPECT_TRUE(results.empty());
}

TEST_F(TrassStoreTest, FindsExactCopy) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(1, 50);
  Load(data);
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(data[7].points, 1e-9, Measure::kFrechet,
                                    &results)
                  .ok());
  ASSERT_GE(results.size(), 1u);
  bool found = false;
  for (const auto& r : results) {
    if (r.id == data[7].id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TrassStoreTest, ThresholdMatchesBruteForce) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(2, 300);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(3);
  for (int iter = 0; iter < 15; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (double eps : {0.001, 0.01, 0.05}) {
      std::vector<SearchResult> got, expected;
      QueryMetrics metrics;
      ASSERT_TRUE(store_
                      ->ThresholdSearch(query, eps, Measure::kFrechet, &got,
                                        &metrics)
                      .ok());
      ASSERT_TRUE(
          brute.Threshold(query, eps, Measure::kFrechet, &expected, nullptr)
              .ok());
      ASSERT_EQ(got.size(), expected.size()) << "eps=" << eps;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
      }
      // Pruning must actually prune relative to a full scan.
      EXPECT_LE(metrics.retrieved, data.size());
    }
  }
}

TEST_F(TrassStoreTest, ThresholdMatchesBruteForceAllMeasures) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(4, 200);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(5);
  for (Measure measure :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    // DTW sums distances, so use a larger threshold scale for it.
    const double eps = measure == Measure::kDtw ? 0.2 : 0.01;
    for (int iter = 0; iter < 8; ++iter) {
      const auto& query = data[rnd.Uniform(data.size())].points;
      std::vector<SearchResult> got, expected;
      ASSERT_TRUE(
          store_->ThresholdSearch(query, eps, measure, &got, nullptr).ok());
      ASSERT_TRUE(
          brute.Threshold(query, eps, measure, &expected, nullptr).ok());
      ASSERT_EQ(got.size(), expected.size()) << MeasureName(measure);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST_F(TrassStoreTest, TopKMatchesBruteForce) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(6, 250);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(7);
  for (int iter = 0; iter < 10; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (int k : {1, 5, 20}) {
      std::vector<SearchResult> got, expected;
      ASSERT_TRUE(
          store_->TopKSearch(query, k, Measure::kFrechet, &got, nullptr)
              .ok());
      ASSERT_TRUE(
          brute.TopK(query, k, Measure::kFrechet, &expected, nullptr).ok());
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      // Distances must agree; ids may differ only on exact ties.
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_F(TrassStoreTest, TopKMatchesBruteForceOtherMeasures) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(8, 150);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  const auto& query = data[33].points;
  for (Measure measure : {Measure::kHausdorff, Measure::kDtw}) {
    std::vector<SearchResult> got, expected;
    ASSERT_TRUE(store_->TopKSearch(query, 10, measure, &got, nullptr).ok());
    ASSERT_TRUE(brute.TopK(query, 10, measure, &expected, nullptr).ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9)
          << MeasureName(measure);
    }
  }
}

TEST_F(TrassStoreTest, TopKWithKLargerThanDataset) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(9, 20);
  Load(data);
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->TopKSearch(data[0].points, 100, Measure::kFrechet,
                               &results, nullptr)
                  .ok());
  EXPECT_EQ(results.size(), data.size());
}

TEST_F(TrassStoreTest, RangeQueryMatchesDirectCheck) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(10, 300);
  Load(data);
  Random rnd(11);
  for (int iter = 0; iter < 10; ++iter) {
    const double x = rnd.UniformDouble(0.2, 0.7);
    const double y = rnd.UniformDouble(0.2, 0.7);
    const geo::Mbr window(x, y, x + 0.1, y + 0.1);
    std::vector<uint64_t> got;
    ASSERT_TRUE(store_->RangeQuery(window, &got).ok());
    std::vector<uint64_t> expected;
    for (const auto& t : data) {
      for (const auto& p : t.points) {
        if (window.Contains(p)) {
          expected.push_back(t.id);
          break;
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected);
  }
}

TEST_F(TrassStoreTest, IngestStatisticsAreMaintained) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(12, 100);
  Load(data);
  EXPECT_EQ(store_->num_trajectories(), 100u);
  uint64_t histogram_total = 0;
  for (uint64_t c : store_->resolution_histogram()) histogram_total += c;
  EXPECT_EQ(histogram_total, 100u);
  uint64_t position_total = 0;
  for (uint64_t c : store_->position_code_histogram()) position_total += c;
  EXPECT_EQ(position_total, 100u);
  EXPECT_GT(store_->distinct_index_values(), 0u);
  EXPECT_LE(store_->distinct_index_values(), 100u);
  EXPECT_DOUBLE_EQ(store_->average_rowkey_bytes(), 17.0);
}

TEST_F(TrassStoreTest, StringKeyModeStoresButRejectsQueries) {
  TrassOptions options = DefaultOptions();
  options.max_resolution = 16;
  options.string_keys = true;
  OpenStore(options);
  // Compact trajectories index at deep resolutions, where string keys
  // (1 + |seq| + 1 + 8 bytes) exceed the fixed 17-byte integer keys —
  // the Figure 13(c) situation.
  Random rnd(13);
  std::vector<Trajectory> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(trass::testing::RandomTrajectory(&rnd, i + 1, 20, 0.3,
                                                    0.7, 0.00001));
  }
  Load(data);
  EXPECT_GT(store_->average_rowkey_bytes(), 17.0);
  std::vector<SearchResult> results;
  EXPECT_TRUE(store_
                  ->ThresholdSearch(data[0].points, 0.01, Measure::kFrechet,
                                    &results)
                  .IsNotSupported());
}

TEST_F(TrassStoreTest, MetricsArePopulated) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(14, 200);
  Load(data);
  QueryMetrics metrics;
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(data[0].points, 0.01, Measure::kFrechet,
                                    &results, &metrics)
                  .ok());
  EXPECT_GT(metrics.index_values, 0u);
  EXPECT_GE(metrics.retrieved, metrics.candidates);
  EXPECT_GE(metrics.candidates, results.size());
  EXPECT_EQ(metrics.results, results.size());
  EXPECT_GT(metrics.total_ms, 0.0);
}

TEST_F(TrassStoreTest, SimilarityJoinMatchesBruteForce) {
  OpenStore();
  auto data = trass::testing::RandomDataset(15, 100);
  // Plant guaranteed-similar pairs: shifted copies of some trajectories.
  const size_t original = data.size();
  for (size_t i = 0; i < 10; ++i) {
    Trajectory copy = data[i * 7];
    copy.id = 1000 + i;
    for (auto& p : copy.points) {
      p.x = std::min(p.x + 0.002, 1.0);
    }
    data.push_back(std::move(copy));
  }
  (void)original;
  Load(data);
  const double eps = 0.008;
  std::vector<std::pair<uint64_t, uint64_t>> got;
  ASSERT_TRUE(store_->SimilarityJoin(eps, Measure::kFrechet, &got).ok());
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      if (SimilarityWithin(Measure::kFrechet, data[i].points,
                           data[j].points, eps)) {
        expected.emplace_back(std::min(data[i].id, data[j].id),
                              std::max(data[i].id, data[j].id));
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(got, expected);
  EXPECT_GT(got.size(), 0u);  // the dataset must exercise the join
}

TEST_F(TrassStoreTest, RejectsEmptyTrajectory) {
  OpenStore();
  Trajectory empty;
  empty.id = 1;
  EXPECT_FALSE(store_->Put(empty).ok());
}

// ---- query deadlines, cancellation, budgets, admission ----

// No duplicated ids: a cooperative stop must never corrupt the answer.
void ExpectUniqueIds(const std::vector<SearchResult>& results) {
  std::set<uint64_t> ids;
  for (const SearchResult& r : results) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
  }
}

// Dense 50k-trajectory store shared by the deadline tests (built once —
// ingest dominates the suite otherwise). Queries with a generous eps over
// this store take tens of milliseconds undeadlined, so a 1ms deadline has
// something to cut short.
class TrassStoreDeadlineTest : public ::testing::Test {
 protected:
  static constexpr size_t kTrajectories = 50000;
  static constexpr double kEps = 0.05;

  static void SetUpTestSuite() {
    dir_ = new trass::testing::ScratchDir("trass_store_deadline");
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 1024 * 1024;
    ASSERT_TRUE(
        TrassStore::Open(options, dir_->path() + "/store", &store_).ok());
    Random rnd(71);
    for (uint64_t id = 1; id <= kTrajectories; ++id) {
      ASSERT_TRUE(store_
                      ->Put(trass::testing::RandomTrajectory(
                          &rnd, id, /*points=*/8, 0.3, 0.7, 0.003))
                      .ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
    query_ = trass::testing::RandomTrajectory(&rnd, 0, /*points=*/10, 0.45,
                                              0.55, 0.003)
                 .points;
  }

  static void TearDownTestSuite() {
    store_.reset();
    delete dir_;
    dir_ = nullptr;
  }

  template <typename Fn>
  static double TimedMs(const Fn& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  static trass::testing::ScratchDir* dir_;
  static std::unique_ptr<TrassStore> store_;
  static std::vector<geo::Point> query_;
};

trass::testing::ScratchDir* TrassStoreDeadlineTest::dir_ = nullptr;
std::unique_ptr<TrassStore> TrassStoreDeadlineTest::store_;
std::vector<geo::Point> TrassStoreDeadlineTest::query_;

TEST_F(TrassStoreDeadlineTest, ThresholdDeadlineCutsLatency) {
  std::vector<SearchResult> full;
  const double undeadlined_ms = TimedMs([&] {
    ASSERT_TRUE(
        store_->ThresholdSearch(query_, kEps, Measure::kFrechet, &full).ok());
  });
  ASSERT_GT(full.size(), 0u) << "dataset must make the query expensive";

  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 1.0;
  Status s;
  const double deadlined_ms = TimedMs([&] {
    s = store_->ThresholdSearch(query_, kEps, Measure::kFrechet, &results,
                                &metrics, query_options);
  });
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_LT(deadlined_ms, undeadlined_ms / 4.0)
      << "deadlined " << deadlined_ms << "ms vs undeadlined "
      << undeadlined_ms << "ms";
}

TEST_F(TrassStoreDeadlineTest, TopKDeadlineCutsLatency) {
  std::vector<SearchResult> full;
  const double undeadlined_ms = TimedMs([&] {
    ASSERT_TRUE(
        store_->TopKSearch(query_, 500, Measure::kFrechet, &full).ok());
  });
  ASSERT_EQ(full.size(), 500u);

  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 1.0;
  Status s;
  const double deadlined_ms = TimedMs([&] {
    s = store_->TopKSearch(query_, 500, Measure::kFrechet, &results,
                           &metrics, query_options);
  });
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_LT(deadlined_ms, undeadlined_ms / 4.0)
      << "deadlined " << deadlined_ms << "ms vs undeadlined "
      << undeadlined_ms << "ms";
}

TEST_F(TrassStoreDeadlineTest, AllowPartialReturnsSoundSubset) {
  std::vector<SearchResult> full;
  ASSERT_TRUE(
      store_->ThresholdSearch(query_, kEps, Measure::kFrechet, &full).ok());
  std::map<uint64_t, double> full_by_id;
  for (const SearchResult& r : full) full_by_id[r.id] = r.distance;

  std::vector<SearchResult> partial;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 3.0;
  query_options.allow_partial = true;
  const Status s = store_->ThresholdSearch(query_, kEps, Measure::kFrechet,
                                           &partial, &metrics, query_options);
  ASSERT_TRUE(s.ok()) << s.ToString();  // partial mode reports OK
  EXPECT_TRUE(metrics.partial);
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_LT(partial.size(), full.size());
  ExpectUniqueIds(partial);
  // Everything returned was verified: it must appear in the full answer
  // with the same distance.
  for (const SearchResult& r : partial) {
    const auto it = full_by_id.find(r.id);
    ASSERT_NE(it, full_by_id.end()) << "unsound partial result " << r.id;
    EXPECT_NEAR(it->second, r.distance, 1e-12);
  }
}

TEST_F(TrassStoreDeadlineTest, TopKAllowPartialKeepsVerifiedHeap) {
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 3.0;
  query_options.allow_partial = true;
  const Status s = store_->TopKSearch(query_, 500, Measure::kFrechet,
                                      &results, &metrics, query_options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(metrics.partial);
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_LE(results.size(), 500u);
  ExpectUniqueIds(results);
  // The heap's contents are exact distances, sorted ascending.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].distance, results[i].distance);
  }
}

TEST_F(TrassStoreDeadlineTest, CancelFlagStopsQuery) {
  std::atomic<bool> cancel{true};  // cancelled before it starts
  QueryOptions query_options;
  query_options.cancel = &cancel;
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  const Status s = store_->ThresholdSearch(query_, kEps, Measure::kFrechet,
                                           &results, &metrics, query_options);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(metrics.cancelled);

  query_options.allow_partial = true;
  const Status partial_status = store_->ThresholdSearch(
      query_, kEps, Measure::kFrechet, &results, &metrics, query_options);
  EXPECT_TRUE(partial_status.ok());
  EXPECT_TRUE(metrics.partial);
  EXPECT_TRUE(metrics.cancelled);
}

TEST_F(TrassStoreDeadlineTest, CandidateBudgetBoundsKeptRows) {
  QueryOptions query_options;
  query_options.max_candidates = 100;
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  const Status s = store_->ThresholdSearch(query_, kEps, Measure::kFrechet,
                                           &results, &metrics, query_options);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(metrics.budget_exhausted);
  EXPECT_FALSE(metrics.deadline_expired);
}

TEST_F(TrassStoreDeadlineTest, AdmissionShedsBeyondConcurrencyLimit) {
  AdmissionController* admission = store_->admission_controller();
  AdmissionController::Options limits;
  limits.max_concurrent = 2;
  limits.max_queue = 0;
  admission->Configure(limits);
  const uint64_t sheds_before = admission->counters().sheds();

  // Occupy both slots, exactly as two in-flight queries would.
  ASSERT_TRUE(admission->Admit().ok());
  ASSERT_TRUE(admission->Admit().ok());
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  const Status s = store_->ThresholdSearch(query_, 0.001, Measure::kFrechet,
                                           &results, &metrics);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_EQ(admission->counters().shed_queue_full, sheds_before + 1);

  admission->Release();
  // One slot free again: the same query is admitted and completes.
  EXPECT_TRUE(store_->ThresholdSearch(query_, 0.001, Measure::kFrechet,
                                      &results, &metrics)
                  .ok());
  admission->Release();
  admission->Configure(AdmissionController::Options{});  // restore: disabled
}

TEST_F(TrassStoreDeadlineTest, ConcurrentQueriesUnderAdmissionSucceed) {
  AdmissionController* admission = store_->admission_controller();
  AdmissionController::Options limits;
  limits.max_concurrent = 2;
  limits.max_queue = 4;
  limits.queue_timeout_ms = 10000.0;
  admission->Configure(limits);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::vector<SearchResult> results;
      const Status s =
          store_->ThresholdSearch(query_, 0.01, Measure::kFrechet, &results);
      if (!s.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // Queue of 4 with a generous timeout: nobody is shed, everyone runs.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(admission->in_flight(), 0);
  admission->Configure(AdmissionController::Options{});
}

// ---- deadline x degraded-scan composition (fault injection) ----

class TrassStoreFaultTest : public ::testing::Test {
 protected:
  TrassStoreFaultTest()
      : dir_("trass_store_fault"), env_(kv::Env::Default()) {}

  void OpenDegradedStore() {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 4;
    options.degraded_scans = true;
    options.max_scan_retries = 3;
    options.scan_retry_backoff_ms = 32;
    options.db_options.env = &env_;
    ASSERT_TRUE(
        TrassStore::Open(options, dir_.path() + "/store", &store_).ok());
    // Long trajectories make refinement slow enough (quadratic DP per
    // candidate) that a deadline expiring at the tail of the scan is
    // always caught by the refine-phase checks — the scan itself ends
    // within a millisecond of the deadline because retry backoff is
    // clamped to the remaining budget.
    const auto data = trass::testing::RandomDataset(23, 100, 180, 220);
    for (const Trajectory& t : data) {
      ASSERT_TRUE(store_->Put(t).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
    query_ = data[0].points;
  }

  // Makes every table read in region `shard` fail until faults clear.
  void BreakRegion(int shard) {
    for (kv::FaultOp op : {kv::FaultOp::kOpenRead, kv::FaultOp::kRead}) {
      kv::FaultPoint fault;
      fault.op = op;
      fault.permanent = true;
      fault.path_substring = "region-" + std::to_string(shard);
      env_.InjectFault(fault);
    }
  }

  trass::testing::ScratchDir dir_;
  kv::FaultInjectionEnv env_;
  std::unique_ptr<TrassStore> store_;
  std::vector<geo::Point> query_;
};

TEST_F(TrassStoreFaultTest, DeadlineAndDegradedSkipAreBothReported) {
  OpenDegradedStore();
  BreakRegion(2);

  // The deadline expires while the broken region sleeps between retries
  // (32ms first backoff vs a 40ms budget): the region is still skipped as
  // a *fault* (degraded mode), and the deadline is separately reported as
  // the reason the query stopped early. Both must surface in the metrics.
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 40.0;
  query_options.allow_partial = true;
  const Status s = store_->ThresholdSearch(query_, 0.05, Measure::kFrechet,
                                           &results, &metrics, query_options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(metrics.partial);
  EXPECT_EQ(metrics.skipped_regions, 1u);
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_GE(metrics.scan_retries, 1u);
  ExpectUniqueIds(results);
}

TEST_F(TrassStoreFaultTest, DeadlineOverFaultyRegionWithoutPartialOptIn) {
  OpenDegradedStore();
  BreakRegion(2);
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 40.0;  // no allow_partial
  const Status s = store_->ThresholdSearch(query_, 0.05, Measure::kFrechet,
                                           &results, &metrics, query_options);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_EQ(metrics.skipped_regions, 1u);  // the fault is still recorded
}

TEST_F(TrassStoreFaultTest, DegradedSkipAloneStaysOkWithoutDeadline) {
  OpenDegradedStore();
  BreakRegion(2);
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  const Status s = store_->ThresholdSearch(query_, 0.05, Measure::kFrechet,
                                           &results, &metrics);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(metrics.partial);
  EXPECT_EQ(metrics.skipped_regions, 1u);
  EXPECT_FALSE(metrics.deadline_expired);  // fault, not a deadline
  ExpectUniqueIds(results);
}

// ---- replication ----

class TrassStoreReplicaTest : public ::testing::Test {
 protected:
  TrassStoreReplicaTest()
      : dir_("trass_store_replica"), env_(kv::Env::Default()) {}

  TrassOptions ReplicatedOptions(int factor) {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 4;
    options.degraded_scans = true;
    options.max_scan_retries = 3;
    options.scan_retry_backoff_ms = 32;
    options.replication_factor = factor;
    options.db_options.env = &env_;
    return options;
  }

  void OpenReplicatedStore(int factor = 2) {
    ASSERT_TRUE(TrassStore::Open(ReplicatedOptions(factor),
                                 dir_.path() + "/store", &store_)
                    .ok());
    data_ = trass::testing::RandomDataset(23, 100, 180, 220);
    for (const Trajectory& t : data_) {
      ASSERT_TRUE(store_->Put(t).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
    query_ = data_[0].points;
  }

  // An identical unreplicated, un-faulted store over the same dataset:
  // the ground truth the replicated store must keep matching.
  void OpenBaselineStore() {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 4;
    ASSERT_TRUE(TrassStore::Open(options, dir_.path() + "/baseline",
                                 &baseline_)
                    .ok());
    for (const Trajectory& t : data_) {
      ASSERT_TRUE(baseline_->Put(t).ok());
    }
    ASSERT_TRUE(baseline_->Flush().ok());
  }

  // Breaks replica 0 of every shard; replica 1 keeps serving. The
  // trailing separator keeps "region-N/" from matching the
  // region-N-replica-* directories.
  void BreakPrimaryReplicas() {
    for (int shard = 0; shard < 4; ++shard) {
      for (kv::FaultOp op : {kv::FaultOp::kOpenRead, kv::FaultOp::kRead}) {
        kv::FaultPoint fault;
        fault.op = op;
        fault.permanent = true;
        fault.path_substring = "region-" + std::to_string(shard) + "/";
        env_.InjectFault(fault);
      }
    }
  }

  static std::vector<uint64_t> SortedIds(
      const std::vector<SearchResult>& results) {
    std::vector<uint64_t> ids;
    for (const SearchResult& r : results) ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  trass::testing::ScratchDir dir_;
  kv::FaultInjectionEnv env_;
  std::unique_ptr<TrassStore> store_;
  std::unique_ptr<TrassStore> baseline_;
  std::vector<Trajectory> data_;
  std::vector<geo::Point> query_;
};

TEST_F(TrassStoreReplicaTest, QueriesStayCompleteWithPrimaryReplicasDown) {
  OpenReplicatedStore();
  OpenBaselineStore();
  BreakPrimaryReplicas();

  // Threshold: identical answer to the un-faulted baseline, not flagged
  // partial, no skipped regions — the faults only show as failovers.
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(query_, 0.05, Measure::kFrechet, &results,
                                    &metrics)
                  .ok());
  EXPECT_FALSE(metrics.partial);
  EXPECT_EQ(metrics.skipped_regions, 0u);
  EXPECT_GE(metrics.replica_failovers, 1u);
  std::vector<SearchResult> expected;
  ASSERT_TRUE(
      baseline_->ThresholdSearch(query_, 0.05, Measure::kFrechet, &expected)
          .ok());
  EXPECT_EQ(SortedIds(results), SortedIds(expected));

  // Top-k: same contract.
  std::vector<SearchResult> topk;
  QueryMetrics topk_metrics;
  ASSERT_TRUE(store_
                  ->TopKSearch(query_, 5, Measure::kFrechet, &topk,
                               &topk_metrics)
                  .ok());
  EXPECT_FALSE(topk_metrics.partial);
  EXPECT_EQ(topk_metrics.skipped_regions, 0u);
  EXPECT_GE(topk_metrics.replica_failovers, 1u);
  std::vector<SearchResult> topk_expected;
  ASSERT_TRUE(
      baseline_->TopKSearch(query_, 5, Measure::kFrechet, &topk_expected)
          .ok());
  EXPECT_EQ(SortedIds(topk), SortedIds(topk_expected));
}

TEST_F(TrassStoreReplicaTest, FailoverCompletesWithinGenerousDeadline) {
  OpenReplicatedStore();
  BreakPrimaryReplicas();
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 5000.0;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(query_, 0.05, Measure::kFrechet, &results,
                                    &metrics, query_options)
                  .ok());
  EXPECT_FALSE(metrics.partial);
  EXPECT_FALSE(metrics.deadline_expired);
  EXPECT_EQ(metrics.skipped_regions, 0u);
  EXPECT_GE(metrics.replica_failovers, 1u);
}

TEST_F(TrassStoreReplicaTest, ExpiredDeadlineWithReplicasIsTimedOutNotSkip) {
  // With replicas available, no region is ever proven down by a query
  // stop: an expired deadline yields TimedOut with zero skipped
  // regions, never a degraded skip masquerading as partial data.
  OpenReplicatedStore();
  BreakPrimaryReplicas();
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  QueryOptions query_options;
  query_options.deadline_ms = 0.001;
  const Status s = store_->ThresholdSearch(query_, 0.05, Measure::kFrechet,
                                           &results, &metrics, query_options);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_TRUE(metrics.deadline_expired);
  EXPECT_EQ(metrics.skipped_regions, 0u);
}

TEST_F(TrassStoreReplicaTest, ScrubBackfillsRaisedReplicationFactor) {
  // Grow an existing single-copy store to factor 2: the new replicas
  // open empty, and one scrub pass populates them from the originals.
  OpenReplicatedStore(/*factor=*/1);
  store_.reset();
  ASSERT_TRUE(TrassStore::Open(ReplicatedOptions(/*factor=*/2),
                               dir_.path() + "/store", &store_)
                  .ok());
  kv::ScrubReport report;
  ASSERT_TRUE(store_->ScrubReplicas(&report).ok());
  EXPECT_EQ(report.replicas_rebuilt, 4u);  // one new replica per shard
  EXPECT_EQ(report.rows_copied, data_.size());  // one row per trajectory
  BreakPrimaryReplicas();
  std::vector<SearchResult> results;
  QueryMetrics metrics;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(query_, 0.05, Measure::kFrechet, &results,
                                    &metrics)
                  .ok());
  EXPECT_FALSE(metrics.partial);
  EXPECT_EQ(metrics.skipped_regions, 0u);
}

// ------------------------------------ storage-engine knob equivalence

// Background compaction and readahead scans are performance knobs, not
// semantics: every query path must return byte-identical answers with
// them on (the defaults) and off (the seed's synchronous, cache-driven
// engine). Same matrix shape as FilterEquivalence.AllPathsByteIdentical
// in filter_tier_test.cc: 4 paths x 3 measures, with a write buffer
// small enough that the load really churns flushes and compactions.
TEST(EngineEquivalence, CompactionAndReadaheadByteIdentical) {
  Random rnd(20260809);
  std::vector<Trajectory> data;
  for (size_t i = 0; i < 300; ++i) {
    const bool outlier = i % 13 == 0;
    const double lo = outlier ? 0.70 : 0.20;
    data.push_back(trass::testing::RandomTrajectory(
        &rnd, i + 1, 4 + static_cast<int>(rnd.Uniform(40)), lo, lo + 0.2));
  }
  std::vector<std::vector<geo::Point>> queries;
  for (int i = 0; i < 4; ++i) {
    const double lo = (i % 2 == 0) ? 0.25 : 0.72;
    queries.push_back(
        trass::testing::RandomTrajectory(&rnd, 1000 + i, 12, lo, lo + 0.1)
            .points);
  }
  const geo::Mbr windows[] = {geo::Mbr(0.2, 0.2, 0.35, 0.35),
                              geo::Mbr(0.7, 0.7, 0.8, 0.8),
                              geo::Mbr(0.05, 0.05, 0.95, 0.95)};

  auto make_options = [](bool tuned) {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.refine_threads = 2;
    // Flush often so the load drives real compaction traffic.
    options.db_options.write_buffer_size = 64 * 1024;
    options.db_options.background_compaction = tuned;
    options.db_options.scan_readahead_bytes = tuned ? 128 * 1024 : 0;
    return options;
  };
  trass::testing::ScratchDir dir("engine_equiv");
  std::unique_ptr<TrassStore> legacy, tuned;
  ASSERT_TRUE(TrassStore::Open(make_options(false), dir.path() + "/legacy",
                               &legacy)
                  .ok());
  ASSERT_TRUE(
      TrassStore::Open(make_options(true), dir.path() + "/tuned", &tuned)
          .ok());
  ASSERT_TRUE(legacy->PutBatch(data).ok());
  ASSERT_TRUE(legacy->Flush().ok());
  ASSERT_TRUE(tuned->PutBatch(data).ok());
  ASSERT_TRUE(tuned->Flush().ok());

  uint64_t tuned_readahead_bytes = 0;
  for (const Measure measure :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    for (const auto& q : queries) {
      for (const double eps : {0.01, 0.05, 0.2}) {
        std::vector<SearchResult> r_legacy, r_tuned;
        QueryMetrics m_legacy, m_tuned;
        ASSERT_TRUE(
            legacy->ThresholdSearch(q, eps, measure, &r_legacy, &m_legacy)
                .ok());
        ASSERT_TRUE(
            tuned->ThresholdSearch(q, eps, measure, &r_tuned, &m_tuned).ok());
        ASSERT_EQ(r_legacy.size(), r_tuned.size());
        for (size_t i = 0; i < r_legacy.size(); ++i) {
          EXPECT_EQ(r_legacy[i].id, r_tuned[i].id);
          EXPECT_EQ(r_legacy[i].distance, r_tuned[i].distance);
        }
        // Readahead scans bypass the cache; the legacy engine must not
        // report streaming traffic, the tuned one accumulates it below.
        EXPECT_EQ(m_legacy.readahead_reads, 0u);
        tuned_readahead_bytes += m_tuned.readahead_bytes_read;
      }
      for (const int k : {1, 5, 25}) {
        std::vector<SearchResult> r_legacy, r_tuned;
        ASSERT_TRUE(legacy->TopKSearch(q, k, measure, &r_legacy).ok());
        ASSERT_TRUE(tuned->TopKSearch(q, k, measure, &r_tuned).ok());
        ASSERT_EQ(r_legacy.size(), r_tuned.size());
        for (size_t i = 0; i < r_legacy.size(); ++i) {
          EXPECT_EQ(r_legacy[i].id, r_tuned[i].id);
          EXPECT_EQ(r_legacy[i].distance, r_tuned[i].distance);
        }
      }
    }
  }
  for (const geo::Mbr& window : windows) {
    std::vector<uint64_t> ids_legacy, ids_tuned;
    QueryMetrics m_legacy, m_tuned;
    ASSERT_TRUE(legacy->RangeQuery(window, &ids_legacy, &m_legacy).ok());
    ASSERT_TRUE(tuned->RangeQuery(window, &ids_tuned, &m_tuned).ok());
    EXPECT_EQ(ids_legacy, ids_tuned);
    tuned_readahead_bytes += m_tuned.readahead_bytes_read;
  }
  {
    std::vector<std::pair<uint64_t, uint64_t>> pairs_legacy, pairs_tuned;
    ASSERT_TRUE(
        legacy->SimilarityJoin(0.02, Measure::kFrechet, &pairs_legacy).ok());
    ASSERT_TRUE(
        tuned->SimilarityJoin(0.02, Measure::kFrechet, &pairs_tuned).ok());
    EXPECT_EQ(pairs_legacy, pairs_tuned);
  }
  // The tuned store's scans must actually have used the streaming path
  // somewhere in the matrix — equal results from an inert knob would
  // prove nothing.
  EXPECT_GT(tuned_readahead_bytes, 0u);
}

}  // namespace
}  // namespace core
}  // namespace trass
