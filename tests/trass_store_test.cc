#include "core/trass_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/brute_force.h"
#include "core/similarity.h"
#include "test_util.h"
#include "util/random.h"

namespace trass {
namespace core {
namespace {

class TrassStoreTest : public ::testing::Test {
 protected:
  TrassStoreTest() : dir_("trass_store") {}

  void OpenStore(TrassOptions options = DefaultOptions()) {
    store_.reset();
    kv::Env::Default()->RemoveDirRecursively(dir_.path() + "/store");
    ASSERT_TRUE(
        TrassStore::Open(options, dir_.path() + "/store", &store_).ok());
  }

  static TrassOptions DefaultOptions() {
    TrassOptions options;
    options.shards = 4;
    options.max_resolution = 12;
    options.scan_threads = 2;
    options.db_options.write_buffer_size = 256 * 1024;
    return options;
  }

  void Load(const std::vector<Trajectory>& data) {
    for (const Trajectory& t : data) {
      ASSERT_TRUE(store_->Put(t).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  trass::testing::ScratchDir dir_;
  std::unique_ptr<TrassStore> store_;
};

TEST_F(TrassStoreTest, RejectsBadOptions) {
  TrassOptions options;
  options.shards = 0;
  std::unique_ptr<TrassStore> store;
  EXPECT_FALSE(TrassStore::Open(options, dir_.path() + "/x", &store).ok());
  options = TrassOptions();
  options.max_resolution = 99;
  EXPECT_FALSE(TrassStore::Open(options, dir_.path() + "/y", &store).ok());
}

TEST_F(TrassStoreTest, EmptyStoreReturnsNothing) {
  OpenStore();
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch({{0.5, 0.5}, {0.51, 0.51}}, 0.01,
                                    Measure::kFrechet, &results)
                  .ok());
  EXPECT_TRUE(results.empty());
  ASSERT_TRUE(store_
                  ->TopKSearch({{0.5, 0.5}, {0.51, 0.51}}, 5,
                               Measure::kFrechet, &results)
                  .ok());
  EXPECT_TRUE(results.empty());
}

TEST_F(TrassStoreTest, FindsExactCopy) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(1, 50);
  Load(data);
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(data[7].points, 1e-9, Measure::kFrechet,
                                    &results)
                  .ok());
  ASSERT_GE(results.size(), 1u);
  bool found = false;
  for (const auto& r : results) {
    if (r.id == data[7].id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TrassStoreTest, ThresholdMatchesBruteForce) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(2, 300);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(3);
  for (int iter = 0; iter < 15; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (double eps : {0.001, 0.01, 0.05}) {
      std::vector<SearchResult> got, expected;
      QueryMetrics metrics;
      ASSERT_TRUE(store_
                      ->ThresholdSearch(query, eps, Measure::kFrechet, &got,
                                        &metrics)
                      .ok());
      ASSERT_TRUE(
          brute.Threshold(query, eps, Measure::kFrechet, &expected, nullptr)
              .ok());
      ASSERT_EQ(got.size(), expected.size()) << "eps=" << eps;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
      }
      // Pruning must actually prune relative to a full scan.
      EXPECT_LE(metrics.retrieved, data.size());
    }
  }
}

TEST_F(TrassStoreTest, ThresholdMatchesBruteForceAllMeasures) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(4, 200);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(5);
  for (Measure measure :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    // DTW sums distances, so use a larger threshold scale for it.
    const double eps = measure == Measure::kDtw ? 0.2 : 0.01;
    for (int iter = 0; iter < 8; ++iter) {
      const auto& query = data[rnd.Uniform(data.size())].points;
      std::vector<SearchResult> got, expected;
      ASSERT_TRUE(
          store_->ThresholdSearch(query, eps, measure, &got, nullptr).ok());
      ASSERT_TRUE(
          brute.Threshold(query, eps, measure, &expected, nullptr).ok());
      ASSERT_EQ(got.size(), expected.size()) << MeasureName(measure);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST_F(TrassStoreTest, TopKMatchesBruteForce) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(6, 250);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  Random rnd(7);
  for (int iter = 0; iter < 10; ++iter) {
    const auto& query = data[rnd.Uniform(data.size())].points;
    for (int k : {1, 5, 20}) {
      std::vector<SearchResult> got, expected;
      ASSERT_TRUE(
          store_->TopKSearch(query, k, Measure::kFrechet, &got, nullptr)
              .ok());
      ASSERT_TRUE(
          brute.TopK(query, k, Measure::kFrechet, &expected, nullptr).ok());
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      // Distances must agree; ids may differ only on exact ties.
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_F(TrassStoreTest, TopKMatchesBruteForceOtherMeasures) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(8, 150);
  Load(data);
  baselines::BruteForce brute;
  ASSERT_TRUE(brute.Build(data).ok());
  const auto& query = data[33].points;
  for (Measure measure : {Measure::kHausdorff, Measure::kDtw}) {
    std::vector<SearchResult> got, expected;
    ASSERT_TRUE(store_->TopKSearch(query, 10, measure, &got, nullptr).ok());
    ASSERT_TRUE(brute.TopK(query, 10, measure, &expected, nullptr).ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9)
          << MeasureName(measure);
    }
  }
}

TEST_F(TrassStoreTest, TopKWithKLargerThanDataset) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(9, 20);
  Load(data);
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->TopKSearch(data[0].points, 100, Measure::kFrechet,
                               &results, nullptr)
                  .ok());
  EXPECT_EQ(results.size(), data.size());
}

TEST_F(TrassStoreTest, RangeQueryMatchesDirectCheck) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(10, 300);
  Load(data);
  Random rnd(11);
  for (int iter = 0; iter < 10; ++iter) {
    const double x = rnd.UniformDouble(0.2, 0.7);
    const double y = rnd.UniformDouble(0.2, 0.7);
    const geo::Mbr window(x, y, x + 0.1, y + 0.1);
    std::vector<uint64_t> got;
    ASSERT_TRUE(store_->RangeQuery(window, &got).ok());
    std::vector<uint64_t> expected;
    for (const auto& t : data) {
      for (const auto& p : t.points) {
        if (window.Contains(p)) {
          expected.push_back(t.id);
          break;
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected);
  }
}

TEST_F(TrassStoreTest, IngestStatisticsAreMaintained) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(12, 100);
  Load(data);
  EXPECT_EQ(store_->num_trajectories(), 100u);
  uint64_t histogram_total = 0;
  for (uint64_t c : store_->resolution_histogram()) histogram_total += c;
  EXPECT_EQ(histogram_total, 100u);
  uint64_t position_total = 0;
  for (uint64_t c : store_->position_code_histogram()) position_total += c;
  EXPECT_EQ(position_total, 100u);
  EXPECT_GT(store_->distinct_index_values(), 0u);
  EXPECT_LE(store_->distinct_index_values(), 100u);
  EXPECT_DOUBLE_EQ(store_->average_rowkey_bytes(), 17.0);
}

TEST_F(TrassStoreTest, StringKeyModeStoresButRejectsQueries) {
  TrassOptions options = DefaultOptions();
  options.max_resolution = 16;
  options.string_keys = true;
  OpenStore(options);
  // Compact trajectories index at deep resolutions, where string keys
  // (1 + |seq| + 1 + 8 bytes) exceed the fixed 17-byte integer keys —
  // the Figure 13(c) situation.
  Random rnd(13);
  std::vector<Trajectory> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(trass::testing::RandomTrajectory(&rnd, i + 1, 20, 0.3,
                                                    0.7, 0.00001));
  }
  Load(data);
  EXPECT_GT(store_->average_rowkey_bytes(), 17.0);
  std::vector<SearchResult> results;
  EXPECT_TRUE(store_
                  ->ThresholdSearch(data[0].points, 0.01, Measure::kFrechet,
                                    &results)
                  .IsNotSupported());
}

TEST_F(TrassStoreTest, MetricsArePopulated) {
  OpenStore();
  const auto data = trass::testing::RandomDataset(14, 200);
  Load(data);
  QueryMetrics metrics;
  std::vector<SearchResult> results;
  ASSERT_TRUE(store_
                  ->ThresholdSearch(data[0].points, 0.01, Measure::kFrechet,
                                    &results, &metrics)
                  .ok());
  EXPECT_GT(metrics.index_values, 0u);
  EXPECT_GE(metrics.retrieved, metrics.candidates);
  EXPECT_GE(metrics.candidates, results.size());
  EXPECT_EQ(metrics.results, results.size());
  EXPECT_GT(metrics.total_ms, 0.0);
}

TEST_F(TrassStoreTest, SimilarityJoinMatchesBruteForce) {
  OpenStore();
  auto data = trass::testing::RandomDataset(15, 100);
  // Plant guaranteed-similar pairs: shifted copies of some trajectories.
  const size_t original = data.size();
  for (size_t i = 0; i < 10; ++i) {
    Trajectory copy = data[i * 7];
    copy.id = 1000 + i;
    for (auto& p : copy.points) {
      p.x = std::min(p.x + 0.002, 1.0);
    }
    data.push_back(std::move(copy));
  }
  (void)original;
  Load(data);
  const double eps = 0.008;
  std::vector<std::pair<uint64_t, uint64_t>> got;
  ASSERT_TRUE(store_->SimilarityJoin(eps, Measure::kFrechet, &got).ok());
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      if (SimilarityWithin(Measure::kFrechet, data[i].points,
                           data[j].points, eps)) {
        expected.emplace_back(std::min(data[i].id, data[j].id),
                              std::max(data[i].id, data[j].id));
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(got, expected);
  EXPECT_GT(got.size(), 0u);  // the dataset must exercise the join
}

TEST_F(TrassStoreTest, RejectsEmptyTrajectory) {
  OpenStore();
  Trajectory empty;
  empty.id = 1;
  EXPECT_FALSE(store_->Put(empty).ok());
}

}  // namespace
}  // namespace core
}  // namespace trass
