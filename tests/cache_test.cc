#include "kv/cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "kv/block_builder.h"

namespace trass {
namespace kv {
namespace {

std::shared_ptr<const Block> MakeBlock() {
  BlockBuilder builder(16);
  std::string key;
  AppendInternalKey(&key, "k", 1, kTypeValue);
  builder.Add(key, "v");
  return std::make_shared<Block>(builder.Finish().ToString());
}

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, MakeBlock(), 100);
  EXPECT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, EvictsUnderPressure) {
  BlockCache cache(8 * 1000);  // ~1000 bytes per shard
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 100);
  }
  EXPECT_LE(cache.TotalCharge(), 8u * 1000u + 8u * 100u);
}

TEST(BlockCacheTest, LruKeepsRecentlyUsed) {
  BlockCache cache(8 * 350);  // a few entries per shard
  // Insert entries that all land in distinct shards is not guaranteed;
  // instead verify that a repeatedly-touched key survives heavy inserts.
  BlockCache::Key hot{42, 4242};
  cache.Insert(hot, MakeBlock(), 50);
  for (uint64_t i = 0; i < 500; ++i) {
    cache.Lookup(hot);  // keep hot at the LRU front
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 50);
  }
  EXPECT_NE(cache.Lookup(hot), nullptr);
}

TEST(BlockCacheTest, InsertReplacesExisting) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 7};
  cache.Insert(key, MakeBlock(), 100);
  cache.Insert(key, MakeBlock(), 200);
  EXPECT_EQ(cache.TotalCharge(), 200u);
}

TEST(BlockCacheTest, EvictFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20);
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(BlockCache::Key{5, i}, MakeBlock(), 10);
    cache.Insert(BlockCache::Key{6, i}, MakeBlock(), 10);
  }
  cache.EvictFile(5);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.Lookup(BlockCache::Key{5, i}), nullptr);
    EXPECT_NE(cache.Lookup(BlockCache::Key{6, i}), nullptr);
  }
}

TEST(BlockCacheTest, SharedPtrKeepsEvictedBlockAlive) {
  BlockCache cache(8 * 100);
  BlockCache::Key key{1, 1};
  cache.Insert(key, MakeBlock(), 50);
  auto held = cache.Lookup(key);
  ASSERT_NE(held, nullptr);
  // Force eviction.
  for (uint64_t i = 2; i < 200; ++i) {
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 50);
  }
  // The held block is still usable even if evicted from the cache.
  std::unique_ptr<Iterator> iter(held->NewIterator());
  iter->SeekToFirst();
  EXPECT_TRUE(iter->Valid());
}

}  // namespace
}  // namespace kv
}  // namespace trass
