#include "kv/cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "kv/block_builder.h"

namespace trass {
namespace kv {
namespace {

std::shared_ptr<const Block> MakeBlock() {
  BlockBuilder builder(16);
  std::string key;
  AppendInternalKey(&key, "k", 1, kTypeValue);
  builder.Add(key, "v");
  return std::make_shared<Block>(builder.Finish().ToString());
}

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, MakeBlock(), 100);
  EXPECT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, EvictsUnderPressure) {
  BlockCache cache(8 * 1000);  // ~1000 bytes per shard
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 100);
  }
  EXPECT_LE(cache.TotalCharge(), 8u * 1000u + 8u * 100u);
}

TEST(BlockCacheTest, LruKeepsRecentlyUsed) {
  BlockCache cache(8 * 350);  // a few entries per shard
  // Insert entries that all land in distinct shards is not guaranteed;
  // instead verify that a repeatedly-touched key survives heavy inserts.
  BlockCache::Key hot{42, 4242};
  cache.Insert(hot, MakeBlock(), 50);
  for (uint64_t i = 0; i < 500; ++i) {
    cache.Lookup(hot);  // keep hot at the LRU front
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 50);
  }
  EXPECT_NE(cache.Lookup(hot), nullptr);
}

TEST(BlockCacheTest, InsertReplacesExisting) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 7};
  cache.Insert(key, MakeBlock(), 100);
  cache.Insert(key, MakeBlock(), 200);
  EXPECT_EQ(cache.TotalCharge(), 200u);
}

TEST(BlockCacheTest, EvictFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20);
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(BlockCache::Key{5, i}, MakeBlock(), 10);
    cache.Insert(BlockCache::Key{6, i}, MakeBlock(), 10);
  }
  cache.EvictFile(5);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.Lookup(BlockCache::Key{5, i}), nullptr);
    EXPECT_NE(cache.Lookup(BlockCache::Key{6, i}), nullptr);
  }
}

TEST(BlockCacheTest, SharedPtrKeepsEvictedBlockAlive) {
  BlockCache cache(8 * 100);
  BlockCache::Key key{1, 1};
  cache.Insert(key, MakeBlock(), 50);
  auto held = cache.Lookup(key);
  ASSERT_NE(held, nullptr);
  // Force eviction.
  for (uint64_t i = 2; i < 200; ++i) {
    cache.Insert(BlockCache::Key{1, i}, MakeBlock(), 50);
  }
  // The held block is still usable even if evicted from the cache.
  std::unique_ptr<Iterator> iter(held->NewIterator());
  iter->SeekToFirst();
  EXPECT_TRUE(iter->Valid());
}

TEST(BlockCacheTest, OversizedInsertNotCached) {
  BlockCache cache(8 * 100);  // ~100 bytes per shard
  BlockCache::Key small{1, 1};
  cache.Insert(small, MakeBlock(), 50);
  // A block bigger than a whole shard must be rejected outright, not
  // admitted (where it would immediately evict everything, including
  // itself, while briefly blowing the memory budget).
  BlockCache::Key huge{1, 2};
  cache.Insert(huge, MakeBlock(), 10'000);
  EXPECT_EQ(cache.Lookup(huge), nullptr);
  EXPECT_LE(cache.TotalCharge(), 8u * 100u);
  // Pre-existing entries in other slots survive the rejected insert.
  EXPECT_NE(cache.Lookup(small), nullptr);
}

TEST(BlockCacheTest, OversizedReplaceDropsExistingEntry) {
  BlockCache cache(8 * 100);
  BlockCache::Key key{3, 9};
  cache.Insert(key, MakeBlock(), 50);
  ASSERT_NE(cache.Lookup(key), nullptr);
  // Re-inserting the same key with an oversized block models the file's
  // block being reread larger than the shard: the stale cached copy must
  // go even though the replacement is not admitted.
  cache.Insert(key, MakeBlock(), 10'000);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.TotalCharge(), 0u);
}

TEST(BlockCacheTest, FillCounterTracksAdmittedInsertsOnly) {
  BlockCache cache(8 * 100);
  cache.Insert(BlockCache::Key{1, 1}, MakeBlock(), 50);
  cache.Insert(BlockCache::Key{1, 2}, MakeBlock(), 10'000);  // rejected
  EXPECT_EQ(cache.fills(), 1u);
}

// TSan coverage: Lookup and Insert racing EvictFile across shards. The
// assertions are the invariants that survive any interleaving — evicted
// file's blocks are gone afterwards, other files' lookups never crash,
// and blocks held across the eviction stay readable.
TEST(BlockCacheTest, ConcurrentLookupInsertEvictFile) {
  BlockCache cache(8 * 2000);
  constexpr uint64_t kEvictedFile = 7;
  constexpr uint64_t kStableFile = 8;
  constexpr int kOps = 2000;
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(BlockCache::Key{kEvictedFile, i}, MakeBlock(), 10);
    cache.Insert(BlockCache::Key{kStableFile, i}, MakeBlock(), 10);
  }
  std::vector<std::thread> threads;
  threads.emplace_back([&cache] {
    for (int i = 0; i < kOps / 10; ++i) cache.EvictFile(kEvictedFile);
  });
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const uint64_t off = static_cast<uint64_t>((i + t * 31) % 64);
        auto held = cache.Lookup(BlockCache::Key{kEvictedFile, off});
        if (held != nullptr) {
          // A block handed out before/while EvictFile runs stays valid.
          std::unique_ptr<Iterator> iter(held->NewIterator());
          iter->SeekToFirst();
          EXPECT_TRUE(iter->Valid());
        }
        cache.Insert(BlockCache::Key{kEvictedFile, off}, MakeBlock(), 10);
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < kOps; ++i) {
      const uint64_t off = static_cast<uint64_t>(i % 64);
      cache.Insert(BlockCache::Key{kStableFile, off}, MakeBlock(), 10);
      EXPECT_NE(cache.Lookup(BlockCache::Key{kStableFile, off}), nullptr);
    }
  });
  for (std::thread& t : threads) t.join();
  // Quiesced: a final eviction empties the contested file for good.
  cache.EvictFile(kEvictedFile);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(cache.Lookup(BlockCache::Key{kEvictedFile, i}), nullptr);
    EXPECT_NE(cache.Lookup(BlockCache::Key{kStableFile, i}), nullptr);
  }
}

}  // namespace
}  // namespace kv
}  // namespace trass
