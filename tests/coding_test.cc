#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace trass {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, 0xffffffffu}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  const std::vector<uint64_t> values = {
      0, 1, 0xff, 0x123456789abcdef0ull,
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; ++i) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
  }
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual = 0;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  Random rnd(7);
  std::string s;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rnd.Next() >> (rnd.Next() % 64);
    values.push_back(v);
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual = 0;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v :
       {0ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 63)}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, GetVarintRejectsTruncatedInput) {
  std::string s;
  PutVarint64(&s, std::numeric_limits<uint64_t>::max());
  s.pop_back();
  Slice input(s);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice(std::string(300, 'x')));
  Slice input(s);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &a));
}

TEST(CodingTest, BigEndian64PreservesOrder) {
  Random rnd(11);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rnd.Next();
    const uint64_t b = rnd.Next();
    std::string ea, eb;
    PutBigEndian64(&ea, a);
    PutBigEndian64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).compare(Slice(eb)) < 0);
    EXPECT_EQ(DecodeBigEndian64(ea.data()), a);
  }
}

TEST(CodingTest, BigEndian32RoundTrip) {
  std::string s;
  PutBigEndian32(&s, 0x01020304u);
  EXPECT_EQ(s[0], 0x01);
  EXPECT_EQ(s[3], 0x04);
  EXPECT_EQ(DecodeBigEndian32(s.data()), 0x01020304u);
}

TEST(CodingTest, OrderedDoublePreservesOrder) {
  Random rnd(13);
  std::vector<double> values = {-1e300, -1.0, -1e-300, 0.0, 1e-300, 1.0,
                                1e300};
  for (int i = 0; i < 500; ++i) {
    values.push_back((rnd.NextDouble() - 0.5) * 1e6);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      std::string ea, eb;
      PutOrderedDouble(&ea, values[i]);
      PutOrderedDouble(&eb, values[j]);
      ASSERT_EQ(values[i] < values[j], Slice(ea).compare(Slice(eb)) < 0)
          << values[i] << " vs " << values[j];
    }
  }
  for (double v : values) {
    std::string e;
    PutOrderedDouble(&e, v);
    EXPECT_EQ(DecodeOrderedDouble(e.data()), v);
  }
}

TEST(CodingTest, RawDoubleRoundTrip) {
  std::string s;
  PutDouble(&s, 3.14159);
  PutDouble(&s, -0.0);
  Slice input(s);
  double a, b;
  ASSERT_TRUE(GetDouble(&input, &a));
  ASSERT_TRUE(GetDouble(&input, &b));
  EXPECT_EQ(a, 3.14159);
  EXPECT_EQ(b, 0.0);
  EXPECT_FALSE(GetDouble(&input, &a));
}

}  // namespace
}  // namespace trass
