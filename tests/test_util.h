// Shared test helpers: scratch directories and random trajectories.

#ifndef TRASS_TESTS_TEST_UTIL_H_
#define TRASS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/trajectory.h"
#include "geo/point.h"
#include "kv/env.h"
#include "util/random.h"

namespace trass {
namespace testing {

/// Creates (wiping any leftover) a scratch directory under /tmp and
/// removes it on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("/tmp/trass_test_" + name) {
    kv::Env::Default()->RemoveDirRecursively(path_);
    kv::Env::Default()->CreateDir(path_);
  }
  ~ScratchDir() { kv::Env::Default()->RemoveDirRecursively(path_); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Random-walk trajectory inside [lo, hi]^2.
inline core::Trajectory RandomTrajectory(Random* rnd, uint64_t id, int points,
                                         double lo = 0.2, double hi = 0.8,
                                         double step = 0.005) {
  core::Trajectory t;
  t.id = id;
  double x = rnd->UniformDouble(lo, hi);
  double y = rnd->UniformDouble(lo, hi);
  for (int i = 0; i < points; ++i) {
    t.points.push_back(geo::Point{x, y});
    x += rnd->UniformDouble(-step, step);
    y += rnd->UniformDouble(-step, step);
    if (x < 0.0) x = 0.0;
    if (x > 1.0) x = 1.0;
    if (y < 0.0) y = 0.0;
    if (y > 1.0) y = 1.0;
  }
  return t;
}

inline std::vector<core::Trajectory> RandomDataset(uint64_t seed, size_t count,
                                                   int min_points = 5,
                                                   int max_points = 60) {
  Random rnd(seed);
  std::vector<core::Trajectory> data;
  data.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int n = min_points + static_cast<int>(rnd.Uniform(
                                   max_points - min_points + 1));
    data.push_back(RandomTrajectory(&rnd, i + 1, n));
  }
  return data;
}

}  // namespace testing
}  // namespace trass

#endif  // TRASS_TESTS_TEST_UTIL_H_
