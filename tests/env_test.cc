#include "kv/env.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace trass {
namespace kv {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  EnvTest() : dir_("env"), env_(Env::Default()) {}

  trass::testing::ScratchDir dir_;
  Env* env_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  const std::string path = dir_.path() + "/file.txt";
  ASSERT_TRUE(env_->WriteStringToFile("hello world", path, false).ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(EnvTest, FileExistsAndRemove) {
  const std::string path = dir_.path() + "/exists.txt";
  EXPECT_FALSE(env_->FileExists(path));
  ASSERT_TRUE(env_->WriteStringToFile("x", path, false).ok());
  EXPECT_TRUE(env_->FileExists(path));
  ASSERT_TRUE(env_->RemoveFile(path).ok());
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_FALSE(env_->RemoveFile(path).ok());  // already gone
}

TEST_F(EnvTest, GetFileSize) {
  const std::string path = dir_.path() + "/sized.txt";
  ASSERT_TRUE(env_->WriteStringToFile(std::string(1234, 'x'), path, false)
                  .ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(path, &size).ok());
  EXPECT_EQ(size, 1234u);
}

TEST_F(EnvTest, GetChildrenListsEntries) {
  ASSERT_TRUE(env_->WriteStringToFile("1", dir_.path() + "/a", false).ok());
  ASSERT_TRUE(env_->WriteStringToFile("2", dir_.path() + "/b", false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_.path(), &children).ok());
  std::sort(children.begin(), children.end());
  EXPECT_EQ(children, (std::vector<std::string>{"a", "b"}));
}

TEST_F(EnvTest, RenameReplacesTarget) {
  const std::string src = dir_.path() + "/src";
  const std::string dst = dir_.path() + "/dst";
  ASSERT_TRUE(env_->WriteStringToFile("new", src, false).ok());
  ASSERT_TRUE(env_->WriteStringToFile("old", dst, false).ok());
  ASSERT_TRUE(env_->RenameFile(src, dst).ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString(dst, &contents).ok());
  EXPECT_EQ(contents, "new");
  EXPECT_FALSE(env_->FileExists(src));
}

TEST_F(EnvTest, RandomAccessReadsAtOffset) {
  const std::string path = dir_.path() + "/random.bin";
  ASSERT_TRUE(
      env_->WriteStringToFile("0123456789abcdef", path, false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(path, &file).ok());
  EXPECT_EQ(file->Size(), 16u);
  char scratch[8];
  Slice result;
  ASSERT_TRUE(file->Read(10, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "abcd");
  // Read past EOF returns a short (possibly empty) result, not an error.
  ASSERT_TRUE(file->Read(14, 8, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "ef");
}

TEST_F(EnvTest, SequentialReadAndSkip) {
  const std::string path = dir_.path() + "/seq.bin";
  ASSERT_TRUE(env_->WriteStringToFile("abcdefgh", path, false).ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(path, &file).ok());
  char scratch[4];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "abc");
  ASSERT_TRUE(file->Skip(2).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "fgh");
}

TEST_F(EnvTest, RemoveDirRecursively) {
  const std::string nested = dir_.path() + "/x/y";
  ASSERT_TRUE(env_->CreateDir(dir_.path() + "/x").ok());
  ASSERT_TRUE(env_->CreateDir(nested).ok());
  ASSERT_TRUE(env_->WriteStringToFile("f", nested + "/file", false).ok());
  ASSERT_TRUE(env_->RemoveDirRecursively(dir_.path() + "/x").ok());
  EXPECT_FALSE(env_->FileExists(dir_.path() + "/x"));
  // Removing a non-existent tree is a no-op.
  EXPECT_TRUE(env_->RemoveDirRecursively(dir_.path() + "/x").ok());
}

TEST_F(EnvTest, OpenMissingFileFails) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(
      env_->NewRandomAccessFile(dir_.path() + "/nope", &file).IsIoError());
  std::unique_ptr<SequentialFile> seq;
  EXPECT_TRUE(
      env_->NewSequentialFile(dir_.path() + "/nope", &seq).IsIoError());
}

}  // namespace
}  // namespace kv
}  // namespace trass
