#include "kv/skiplist.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "util/random.h"

namespace trass {
namespace kv {
namespace {

struct CStrCompare {
  int operator()(const char* a, const char* b) const {
    return std::strcmp(a, b);
  }
};

class SkipListTest : public ::testing::Test {
 protected:
  const char* Intern(const std::string& s) {
    char* mem = arena_.Allocate(s.size() + 1);
    std::memcpy(mem, s.c_str(), s.size() + 1);
    return mem;
  }

  Arena arena_;
  SkipList<CStrCompare> list_{CStrCompare{}, &arena_};
};

TEST_F(SkipListTest, EmptyList) {
  EXPECT_FALSE(list_.Contains("a"));
  SkipList<CStrCompare>::Iterator iter(&list_);
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
}

TEST_F(SkipListTest, InsertAndContains) {
  list_.Insert(Intern("b"));
  list_.Insert(Intern("a"));
  list_.Insert(Intern("c"));
  EXPECT_TRUE(list_.Contains("a"));
  EXPECT_TRUE(list_.Contains("b"));
  EXPECT_TRUE(list_.Contains("c"));
  EXPECT_FALSE(list_.Contains("d"));
}

TEST_F(SkipListTest, IterationIsSorted) {
  Random rnd(3);
  std::set<std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    std::string key = std::to_string(rnd.Uniform(100000));
    if (expected.insert(key).second) {
      list_.Insert(Intern(key));
    }
  }
  SkipList<CStrCompare>::Iterator iter(&list_);
  iter.SeekToFirst();
  for (const std::string& key : expected) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(key, iter.entry());
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST_F(SkipListTest, SeekFindsFirstGreaterOrEqual) {
  for (const char* key : {"apple", "banana", "cherry", "damson"}) {
    list_.Insert(Intern(key));
  }
  SkipList<CStrCompare>::Iterator iter(&list_);
  iter.Seek("banana");
  ASSERT_TRUE(iter.Valid());
  EXPECT_STREQ(iter.entry(), "banana");
  iter.Seek("bb");
  ASSERT_TRUE(iter.Valid());
  EXPECT_STREQ(iter.entry(), "cherry");
  iter.Seek("zzz");
  EXPECT_FALSE(iter.Valid());
}

}  // namespace
}  // namespace kv
}  // namespace trass
