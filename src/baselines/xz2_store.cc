#include "baselines/xz2_store.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "core/row_codec.h"
#include "core/similarity.h"
#include "util/stopwatch.h"

namespace trass {
namespace baselines {

namespace {

// Fibonacci hashing; same sharding as TraSS for a fair comparison.
uint64_t HashId(uint64_t id) { return id * 0x9e3779b97f4a7c15ull; }

// MBR containment + start/end filter — the local filtering available to
// MBR-indexed stores. Sound: a similar trajectory lies entirely within
// Ext(Q.MBR, eps) and pairs endpoints within eps (Fréchet/DTW).
class MbrScanFilter final : public kv::ScanFilter {
 public:
  MbrScanFilter(const std::vector<geo::Point>* query, const geo::Mbr& ext,
                double eps, core::Measure measure)
      : query_(query), ext_(ext), eps_(eps), measure_(measure) {}

  bool Keep(const Slice& key, const Slice& value) const override {
    scanned_.fetch_add(1, std::memory_order_relaxed);
    core::StoredTrajectory t;
    if (!core::DecodeRow(key, value, &t).ok()) return false;
    if (t.points.empty()) return false;
    const geo::Mbr mbr = geo::Mbr::Of(t.points);
    if (!ext_.Contains(mbr)) return false;
    if (measure_ != core::Measure::kHausdorff) {
      if (geo::Distance(query_->front(), t.points.front()) > eps_ ||
          geo::Distance(query_->back(), t.points.back()) > eps_) {
        return false;
      }
    }
    kept_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t scanned() const { return scanned_.load(); }
  uint64_t kept() const { return kept_.load(); }

 private:
  const std::vector<geo::Point>* query_;
  const geo::Mbr ext_;
  const double eps_;
  const core::Measure measure_;
  mutable std::atomic<uint64_t> scanned_{0};
  mutable std::atomic<uint64_t> kept_{0};
};

}  // namespace

Status Xz2Store::Build(const std::vector<core::Trajectory>& data) {
  store_.reset();
  count_ = 0;
  key_bytes_ = 0;
  kv::Env* env = options_.db_options.env != nullptr ? options_.db_options.env
                                                    : kv::Env::Default();
  Status s = env->RemoveDirRecursively(path_);
  if (!s.ok()) return s;
  kv::RegionStore::RegionOptions region_options;
  region_options.db_options = options_.db_options;
  region_options.num_regions = options_.shards;
  region_options.scan_threads = options_.scan_threads;
  s = kv::RegionStore::Open(region_options, path_, &store_);
  if (!s.ok()) return s;
  for (const core::Trajectory& t : data) {
    if (t.points.empty()) continue;
    const int64_t value = xz2_.Encode(xz2_.Index(geo::Mbr::Of(t.points)));
    const uint8_t shard = static_cast<uint8_t>(
        HashId(t.id) % static_cast<uint64_t>(options_.shards));
    const std::string key = core::EncodeRowKey(shard, value, t.id);
    // Same row payload as TraSS, but the XZ2 systems do not use the DP
    // features; store points with empty features.
    const std::string row_value =
        core::EncodeRowValue(t.points, core::DpFeatures{});
    s = store_->Put(kv::WriteOptions(), Slice(key), Slice(row_value));
    if (!s.ok()) return s;
    ++count_;
    key_bytes_ += key.size();
    value_directory_.push_back(value);
  }
  std::sort(value_directory_.begin(), value_directory_.end());
  value_directory_.erase(
      std::unique(value_directory_.begin(), value_directory_.end()),
      value_directory_.end());
  return store_->Flush();
}

Status Xz2Store::Threshold(const std::vector<geo::Point>& query, double eps,
                           core::Measure measure,
                           std::vector<core::SearchResult>* results,
                           core::QueryMetrics* metrics) {
  results->clear();
  if (query.empty()) return Status::InvalidArgument("empty query");
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  Stopwatch phase;

  const geo::Mbr mbr = geo::Mbr::Of(query);
  const geo::Mbr ext = mbr.Expanded(eps);
  const auto value_ranges = xz2_.Ranges(ext, &value_directory_);
  m->pruning_ms = phase.ElapsedMillis();
  m->scan_ranges = value_ranges.size();
  for (const auto& [lo, hi] : value_ranges) m->index_values += hi - lo + 1;

  phase.Reset();
  std::vector<kv::ScanRange> ranges;
  ranges.reserve(value_ranges.size());
  for (const auto& [lo, hi] : value_ranges) {
    kv::ScanRange range;
    core::IndexValueRange(lo, hi, &range.start, &range.end);
    ranges.push_back(std::move(range));
  }
  MbrScanFilter filter(&query, ext, eps, measure);
  std::vector<kv::Row> rows;
  Status s = store_->Scan(ranges, &filter, &rows);
  if (!s.ok()) return s;
  m->scan_ms = phase.ElapsedMillis();
  m->retrieved = filter.scanned();
  m->candidates = filter.kept();

  phase.Reset();
  for (const kv::Row& row : rows) {
    core::StoredTrajectory t;
    s = core::DecodeRow(Slice(row.key), Slice(row.value), &t);
    if (!s.ok()) return s;
    ++m->refined;
    if (core::SimilarityWithin(measure, query, t.points, eps)) {
      results->push_back(core::SearchResult{
          t.id, core::Similarity(measure, query, t.points)});
    }
  }
  m->refine_ms = phase.ElapsedMillis();
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

Status Xz2Store::TopK(const std::vector<geo::Point>& query, int k,
                      core::Measure measure,
                      std::vector<core::SearchResult>* results,
                      core::QueryMetrics* metrics) {
  results->clear();
  if (k <= 0) return Status::OK();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;

  // Iteratively widen the threshold until k answers appear. Each round
  // re-scans, which is exactly the weakness the paper attributes to
  // XZ2-based stores for top-k.
  double eps = 2e-6;  // ~80 m; doubles until k answers appear
  for (int round = 0; round < 24; ++round) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics round_metrics;
    Status s = Threshold(query, eps, measure, &found, &round_metrics);
    if (!s.ok()) return s;
    m->pruning_ms += round_metrics.pruning_ms;
    m->scan_ms += round_metrics.scan_ms;
    m->refine_ms += round_metrics.refine_ms;
    m->retrieved += round_metrics.retrieved;
    m->candidates += round_metrics.candidates;
    m->refined += round_metrics.refined;
    m->index_values += round_metrics.index_values;
    if (found.size() >= static_cast<size_t>(k) || eps > 0.5) {
      if (found.size() > static_cast<size_t>(k)) {
        found.resize(static_cast<size_t>(k));
      }
      *results = std::move(found);
      m->results = results->size();
      m->total_ms = total.ElapsedMillis();
      return Status::OK();
    }
    eps *= 2.0;
  }
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace baselines
}  // namespace trass
