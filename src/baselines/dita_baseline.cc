#include "baselines/dita_baseline.h"

#include <algorithm>
#include <cmath>

#include "core/similarity.h"
#include "geo/douglas_peucker.h"
#include "util/stopwatch.h"

namespace trass {
namespace baselines {

uint64_t DitaBaseline::CellOf(const geo::Point& p) const {
  const double scale = static_cast<double>(1u << grid_bits_);
  const uint64_t max_cell = (1ull << grid_bits_) - 1;
  uint64_t ix = static_cast<uint64_t>(std::clamp(p.x, 0.0, 1.0) * scale);
  uint64_t iy = static_cast<uint64_t>(std::clamp(p.y, 0.0, 1.0) * scale);
  ix = std::min(ix, max_cell);
  iy = std::min(iy, max_cell);
  return (ix << 32) | iy;
}

geo::Mbr DitaBaseline::CellBox(uint64_t cell) const {
  const double width = 1.0 / static_cast<double>(1u << grid_bits_);
  const double x = static_cast<double>(cell >> 32) * width;
  const double y = static_cast<double>(cell & 0xffffffffu) * width;
  return geo::Mbr(x, y, x + width, y + width);
}

std::vector<uint64_t> DitaBaseline::PivotCells(
    const std::vector<geo::Point>& points) const {
  std::vector<uint64_t> cells;
  cells.push_back(CellOf(points.front()));
  cells.push_back(CellOf(points.back()));
  // Interior pivots: DP representative points, most significant first
  // (coarse tolerance keeps only the sharpest turns).
  const auto rep = geo::DouglasPeucker(points, 1e-4);
  int added = 0;
  for (size_t i = 1; i + 1 < rep.size() && added < num_pivots_; ++i) {
    cells.push_back(CellOf(points[rep[i]]));
    ++added;
  }
  return cells;
}

Status DitaBaseline::Build(const std::vector<core::Trajectory>& data) {
  data_ = data;
  root_ = TrieNode();
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i].points.empty()) continue;
    const std::vector<uint64_t> cells = PivotCells(data_[i].points);
    TrieNode* node = &root_;
    for (uint64_t cell : cells) {
      auto& child = node->children[cell];
      if (!child) child = std::make_unique<TrieNode>();
      node = child.get();
    }
    node->items.push_back(i);
  }
  return Status::OK();
}

Status DitaBaseline::Threshold(const std::vector<geo::Point>& query,
                               double eps, core::Measure measure,
                               std::vector<core::SearchResult>* results,
                               core::QueryMetrics* metrics) {
  results->clear();
  if (!Supports(measure)) {
    return Status::NotSupported("DITA does not support this measure");
  }
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  Stopwatch phase;

  // Level-wise trie pruning: level 0 pivots must be near the query's
  // first point, level 1 near its last point (Lemma 12); deeper pivots
  // are trajectory points, so they must be near *some* query point
  // (Lemma 5).
  std::vector<size_t> candidates;
  struct Frame {
    const TrieNode* node;
    int depth;
  };
  std::vector<Frame> stack = {{&root_, 0}};
  size_t nodes_visited = 0;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    ++nodes_visited;
    for (size_t idx : frame.node->items) {
      candidates.push_back(idx);
    }
    for (const auto& [cell, child] : frame.node->children) {
      const geo::Mbr box = CellBox(cell);
      bool keep = false;
      if (frame.depth == 0) {
        keep = box.Distance(query.front()) <= eps;
      } else if (frame.depth == 1) {
        keep = box.Distance(query.back()) <= eps;
      } else {
        for (const geo::Point& q : query) {
          if (box.Distance(q) <= eps) {
            keep = true;
            break;
          }
        }
      }
      if (keep) stack.push_back({child.get(), frame.depth + 1});
    }
  }
  m->pruning_ms = phase.ElapsedMillis();
  m->retrieved = candidates.size();

  // MBR coverage filtering (what the paper credits DITA with).
  phase.Reset();
  const geo::Mbr ext = geo::Mbr::Of(query).Expanded(eps);
  std::vector<size_t> filtered;
  for (size_t idx : candidates) {
    if (ext.Contains(geo::Mbr::Of(data_[idx].points))) {
      filtered.push_back(idx);
    }
  }
  m->scan_ms = phase.ElapsedMillis();
  m->candidates = filtered.size();

  phase.Reset();
  for (size_t idx : filtered) {
    ++m->refined;
    const auto& t = data_[idx];
    if (core::SimilarityWithin(measure, query, t.points, eps)) {
      results->push_back(core::SearchResult{
          t.id, core::Similarity(measure, query, t.points)});
    }
  }
  m->refine_ms = phase.ElapsedMillis();
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  (void)nodes_visited;
  return Status::OK();
}

Status DitaBaseline::TopK(const std::vector<geo::Point>& query, int k,
                          core::Measure measure,
                          std::vector<core::SearchResult>* results,
                          core::QueryMetrics* metrics) {
  results->clear();
  if (!Supports(measure)) {
    return Status::NotSupported("DITA does not support this measure");
  }
  if (k <= 0) return Status::OK();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  double eps = 2e-6;  // ~80 m; doubles until k answers appear
  for (int round = 0; round < 24; ++round) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics round_metrics;
    Status s = Threshold(query, eps, measure, &found, &round_metrics);
    if (!s.ok()) return s;
    m->retrieved += round_metrics.retrieved;
    m->candidates += round_metrics.candidates;
    m->refined += round_metrics.refined;
    m->pruning_ms += round_metrics.pruning_ms;
    m->scan_ms += round_metrics.scan_ms;
    m->refine_ms += round_metrics.refine_ms;
    if (found.size() >= static_cast<size_t>(k) || eps > 0.5) {
      if (found.size() > static_cast<size_t>(k)) {
        found.resize(static_cast<size_t>(k));
      }
      *results = std::move(found);
      m->results = results->size();
      m->total_ms = total.ElapsedMillis();
      return Status::OK();
    }
    eps *= 2.0;
  }
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace baselines
}  // namespace trass
