#include "baselines/dft_baseline.h"

#include <algorithm>
#include <queue>

#include "core/similarity.h"
#include "util/stopwatch.h"

namespace trass {
namespace baselines {

Status DftBaseline::Build(const std::vector<core::Trajectory>& data) {
  data_ = data;
  uint64_t max_id = 0;
  for (const auto& t : data_) max_id = std::max(max_id, t.id);
  id_to_index_.assign(max_id + 1, SIZE_MAX);
  std::vector<StrRTree::Entry> entries;
  entries.reserve(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i].points.empty()) continue;
    id_to_index_[data_[i].id] = i;
    entries.push_back(StrRTree::Entry{geo::Mbr::Of(data_[i].points),
                                      data_[i].id});
  }
  rtree_.Build(std::move(entries));
  return Status::OK();
}

Status DftBaseline::Threshold(const std::vector<geo::Point>& query,
                              double eps, core::Measure measure,
                              std::vector<core::SearchResult>* results,
                              core::QueryMetrics* metrics) {
  results->clear();
  if (!Supports(measure)) {
    return Status::NotSupported("DFT does not support this measure");
  }
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  Stopwatch phase;

  const geo::Mbr ext = geo::Mbr::Of(query).Expanded(eps);
  std::vector<uint64_t> candidate_ids;
  rtree_.Search(ext, &candidate_ids);
  m->pruning_ms = phase.ElapsedMillis();
  m->retrieved = candidate_ids.size();

  phase.Reset();
  std::vector<const core::Trajectory*> candidates;
  for (uint64_t id : candidate_ids) {
    const core::Trajectory& t = data_[id_to_index_[id]];
    // A similar trajectory lies entirely inside ext; endpoints pair up
    // for the ordered measures.
    if (!ext.Contains(geo::Mbr::Of(t.points))) continue;
    if (measure == core::Measure::kFrechet) {
      if (geo::Distance(query.front(), t.points.front()) > eps ||
          geo::Distance(query.back(), t.points.back()) > eps) {
        continue;
      }
    }
    candidates.push_back(&t);
  }
  m->scan_ms = phase.ElapsedMillis();
  m->candidates = candidates.size();

  phase.Reset();
  for (const core::Trajectory* t : candidates) {
    ++m->refined;
    if (core::SimilarityWithin(measure, query, t->points, eps)) {
      results->push_back(core::SearchResult{
          t->id, core::Similarity(measure, query, t->points)});
    }
  }
  m->refine_ms = phase.ElapsedMillis();
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

Status DftBaseline::TopK(const std::vector<geo::Point>& query, int k,
                         core::Measure measure,
                         std::vector<core::SearchResult>* results,
                         core::QueryMetrics* metrics) {
  results->clear();
  if (!Supports(measure)) {
    return Status::NotSupported("DFT does not support this measure");
  }
  if (k <= 0) return Status::OK();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;

  // DFT's sampling: take c*k trajectories near the query (here: the MBRs
  // intersecting the query's MBR, widening until enough) and use the k-th
  // sampled distance as the pruning threshold.
  const size_t want = static_cast<size_t>(sample_factor_) *
                      static_cast<size_t>(k);
  std::vector<uint64_t> sample_ids;
  double widen = 0.0;
  const geo::Mbr qmbr = geo::Mbr::Of(query);
  while (sample_ids.size() < want && widen < 0.5) {
    sample_ids.clear();
    rtree_.Search(qmbr.Expanded(widen), &sample_ids);
    widen = widen == 0.0 ? 0.0002 : widen * 2.0;
  }
  if (sample_ids.size() > want) sample_ids.resize(want);

  std::vector<double> sample_distances;
  sample_distances.reserve(sample_ids.size());
  for (uint64_t id : sample_ids) {
    ++m->refined;
    sample_distances.push_back(core::Similarity(
        measure, query, data_[id_to_index_[id]].points));
  }
  std::sort(sample_distances.begin(), sample_distances.end());
  double threshold =
      sample_distances.size() >= static_cast<size_t>(k)
          ? sample_distances[static_cast<size_t>(k) - 1]
          : (sample_distances.empty() ? 1e-4 : sample_distances.back());
  if (threshold <= 0.0) threshold = 1e-6;

  for (int attempt = 0; attempt < 16; ++attempt) {
    std::vector<core::SearchResult> found;
    core::QueryMetrics round;
    Status s = Threshold(query, threshold, measure, &found, &round);
    if (!s.ok()) return s;
    m->retrieved += round.retrieved;
    m->candidates += round.candidates;
    m->refined += round.refined;
    m->pruning_ms += round.pruning_ms;
    m->scan_ms += round.scan_ms;
    m->refine_ms += round.refine_ms;
    if (found.size() >= static_cast<size_t>(k) || threshold > 0.5) {
      if (found.size() > static_cast<size_t>(k)) {
        found.resize(static_cast<size_t>(k));
      }
      *results = std::move(found);
      m->results = results->size();
      m->total_ms = total.ElapsedMillis();
      return Status::OK();
    }
    threshold *= 2.0;
  }
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace baselines
}  // namespace trass
