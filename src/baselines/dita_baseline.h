// DITA baseline (Shang et al., SIGMOD 2018), reduced to its pruning
// structure (DESIGN.md): a trie over grid-quantized pivot points — first
// point, last point, then the most significant interior points chosen by
// Douglas-Peucker — pruned level by level with cell-distance bounds, then
// MBR-coverage filtering, then exact refinement. Spark distribution is
// replaced by an in-memory trie.
//
// DITA does not support the Hausdorff distance (paper Section VII-C).

#ifndef TRASS_BASELINES_DITA_BASELINE_H_
#define TRASS_BASELINES_DITA_BASELINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "baselines/searcher.h"
#include "geo/mbr.h"

namespace trass {
namespace baselines {

class DitaBaseline final : public SimilaritySearcher {
 public:
  /// `grid_bits`: pivot cells are 2^-grid_bits wide. `num_pivots`: max
  /// interior pivots per trajectory (DITA's default is small).
  explicit DitaBaseline(int grid_bits = 9, int num_pivots = 3)
      : grid_bits_(grid_bits), num_pivots_(num_pivots) {}

  std::string name() const override { return "DITA"; }

  Status Build(const std::vector<core::Trajectory>& data) override;

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override;

  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override;

  bool Supports(core::Measure measure) const override {
    return measure != core::Measure::kHausdorff;
  }

 private:
  struct TrieNode {
    // Trajectories whose pivot list ends at this node.
    std::vector<size_t> items;
    std::unordered_map<uint64_t, std::unique_ptr<TrieNode>> children;
  };

  uint64_t CellOf(const geo::Point& p) const;
  geo::Mbr CellBox(uint64_t cell) const;

  /// Pivot cell sequence of a trajectory: first, last, then up to
  /// `num_pivots_` interior DP points.
  std::vector<uint64_t> PivotCells(const std::vector<geo::Point>& points)
      const;

  const int grid_bits_;
  const int num_pivots_;
  std::vector<core::Trajectory> data_;
  TrieNode root_;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_DITA_BASELINE_H_
