#include "baselines/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace trass {
namespace baselines {

void StrRTree::Build(std::vector<Entry> entries) {
  entries_ = std::move(entries);
  nodes_.clear();
  num_entries_ = entries_.size();
  if (entries_.empty()) {
    Node root;
    root.leaf = true;
    nodes_.push_back(root);
    root_ = 0;
    return;
  }
  std::vector<uint32_t> level(entries_.size());
  for (uint32_t i = 0; i < entries_.size(); ++i) level[i] = i;
  std::vector<uint32_t> packed = PackLevel(level, /*leaves=*/true);
  while (packed.size() > 1) {
    packed = PackLevel(packed, /*leaves=*/false);
  }
  root_ = packed[0];
}

std::vector<uint32_t> StrRTree::PackLevel(const std::vector<uint32_t>& items,
                                          bool leaves) {
  auto box_of = [&](uint32_t idx) -> const geo::Mbr& {
    return leaves ? entries_[idx].box : nodes_[idx].box;
  };

  // STR: sort by x-center, cut into vertical slices of ~sqrt(P) runs,
  // sort each slice by y-center, emit nodes of `fanout_` children.
  std::vector<uint32_t> sorted = items;
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    return box_of(a).center().x < box_of(b).center().x;
  });
  const size_t n = sorted.size();
  const size_t num_nodes =
      (n + static_cast<size_t>(fanout_) - 1) / static_cast<size_t>(fanout_);
  const size_t num_slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const size_t slice_size =
      (n + num_slices - 1) / num_slices;

  std::vector<uint32_t> parents;
  parents.reserve(num_nodes);
  for (size_t slice_start = 0; slice_start < n; slice_start += slice_size) {
    const size_t slice_end = std::min(slice_start + slice_size, n);
    std::sort(sorted.begin() + static_cast<ptrdiff_t>(slice_start),
              sorted.begin() + static_cast<ptrdiff_t>(slice_end),
              [&](uint32_t a, uint32_t b) {
                return box_of(a).center().y < box_of(b).center().y;
              });
    for (size_t i = slice_start; i < slice_end;
         i += static_cast<size_t>(fanout_)) {
      Node node;
      node.leaf = leaves;
      const size_t end =
          std::min(i + static_cast<size_t>(fanout_), slice_end);
      for (size_t j = i; j < end; ++j) {
        node.children.push_back(sorted[j]);
        node.box.Extend(box_of(sorted[j]));
      }
      nodes_.push_back(std::move(node));
      parents.push_back(static_cast<uint32_t>(nodes_.size() - 1));
    }
  }
  return parents;
}

size_t StrRTree::Search(const geo::Mbr& query,
                        std::vector<uint64_t>* out) const {
  if (num_entries_ == 0) return 0;
  size_t visited = 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (uint32_t idx : node.children) {
        if (entries_[idx].box.Intersects(query)) {
          out->push_back(entries_[idx].id);
        }
      }
    } else {
      for (uint32_t idx : node.children) {
        if (nodes_[idx].box.Intersects(query)) {
          stack.push_back(idx);
        }
      }
    }
  }
  return visited;
}

}  // namespace baselines
}  // namespace trass
