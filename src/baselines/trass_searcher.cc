#include "baselines/trass_searcher.h"

#include "kv/env.h"

namespace trass {
namespace baselines {

Status TrassSearcher::Build(const std::vector<core::Trajectory>& data) {
  store_.reset();
  kv::Env* env = options_.db_options.env != nullptr ? options_.db_options.env
                                                    : kv::Env::Default();
  Status s = env->RemoveDirRecursively(path_);
  if (!s.ok()) return s;
  s = core::TrassStore::Open(options_, path_, &store_);
  if (!s.ok()) return s;
  for (const core::Trajectory& t : data) {
    s = store_->Put(t);
    if (!s.ok()) return s;
  }
  return store_->Flush();
}

}  // namespace baselines
}  // namespace trass
