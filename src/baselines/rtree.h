// Static R-tree bulk-loaded with Sort-Tile-Recursive packing; the spatial
// index underlying the DFT baseline.

#ifndef TRASS_BASELINES_RTREE_H_
#define TRASS_BASELINES_RTREE_H_

#include <cstdint>
#include <vector>

#include "geo/mbr.h"

namespace trass {
namespace baselines {

class StrRTree {
 public:
  struct Entry {
    geo::Mbr box;
    uint64_t id = 0;
  };

  explicit StrRTree(int fanout = 16) : fanout_(fanout < 2 ? 2 : fanout) {}

  /// Bulk-loads the tree; replaces previous contents.
  void Build(std::vector<Entry> entries);

  /// Appends the ids of all entries whose box intersects `query`.
  /// Returns the number of tree nodes visited (I/O proxy).
  size_t Search(const geo::Mbr& query, std::vector<uint64_t>* out) const;

  size_t size() const { return num_entries_; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    geo::Mbr box;
    // Children are either node indices (inner) or entry indices (leaf).
    std::vector<uint32_t> children;
    bool leaf = true;
  };

  /// Packs `items` (ids into nodes_ or entries_) into parent nodes.
  std::vector<uint32_t> PackLevel(const std::vector<uint32_t>& items,
                                  bool leaves);

  int fanout_;
  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_RTREE_H_
