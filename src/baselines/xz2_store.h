// XZ-Ordering baseline (the TrajMesa/JUST approach): the *same* key-value
// store and row layout as TraSS, but indexed with plain XZ2 — a trajectory
// is keyed by the enlarged element covering its MBR, with no position
// codes. Global "pruning" is what those systems do: scan every element
// whose enlarged element intersects Ext(Q.MBR, eps). Local filtering uses
// the MBR and the start/end points only (paper Section I: "existing works
// use the MBR or pivot points of a trajectory to filter").
//
// This isolates the XZ* contribution: every difference in retrieved rows
// between this baseline and TraSS is attributable to the index.

#ifndef TRASS_BASELINES_XZ2_STORE_H_
#define TRASS_BASELINES_XZ2_STORE_H_

#include <memory>
#include <string>

#include "baselines/searcher.h"
#include "index/xz2.h"
#include "kv/region_store.h"

namespace trass {
namespace baselines {

class Xz2Store final : public SimilaritySearcher {
 public:
  struct Options {
    int shards = 8;
    int max_resolution = 16;
    size_t scan_threads = 4;
    kv::Options db_options;
  };

  Xz2Store(Options options, std::string path)
      : options_(std::move(options)),
        path_(std::move(path)),
        xz2_(options_.max_resolution) {}

  std::string name() const override { return "XZ2 (JUST/TrajMesa)"; }

  Status Build(const std::vector<core::Trajectory>& data) override;

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override;

  /// Top-k by iterative threshold expansion (the strategy available to
  /// XZ2-based stores, which have no distance-ordered traversal).
  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override;

  kv::RegionStore* region_store() { return store_.get(); }
  double average_rowkey_bytes() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(key_bytes_) /
                             static_cast<double>(count_);
  }

 private:
  Options options_;
  std::string path_;
  index::Xz2 xz2_;
  std::unique_ptr<kv::RegionStore> store_;
  uint64_t count_ = 0;
  uint64_t key_bytes_ = 0;
  std::vector<int64_t> value_directory_;  // sorted distinct element values
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_XZ2_STORE_H_
