// Exhaustive scan ground truth: every pruning-correctness property test
// compares TraSS (and every baseline) against this.

#ifndef TRASS_BASELINES_BRUTE_FORCE_H_
#define TRASS_BASELINES_BRUTE_FORCE_H_

#include "baselines/searcher.h"

namespace trass {
namespace baselines {

class BruteForce final : public SimilaritySearcher {
 public:
  std::string name() const override { return "BruteForce"; }

  Status Build(const std::vector<core::Trajectory>& data) override {
    data_ = data;
    return Status::OK();
  }

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override;

  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override;

 private:
  std::vector<core::Trajectory> data_;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_BRUTE_FORCE_H_
