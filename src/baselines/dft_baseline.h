// DFT baseline (Xie et al., VLDB 2017), reduced to its pruning structure
// on a single machine (DESIGN.md documents the substitution):
//
//  * an STR-packed R-tree over trajectory MBRs replaces DFT's distributed
//    segment R-trees + bitmap collection;
//  * threshold search: R-tree intersection with Ext(Q.MBR, eps), then
//    MBR-containment + endpoint filtering, then exact refinement;
//  * top-k: DFT's sampling strategy — draw c*k candidates from partitions
//    intersecting the query, use the k-th sampled distance as a
//    threshold, run a threshold search, keep the top k (doubling the
//    threshold when the sample under-estimates). The paper attributes
//    DFT's large candidate sets to exactly this sampling behaviour.
//
// DFT does not support DTW (paper Section VII-C).

#ifndef TRASS_BASELINES_DFT_BASELINE_H_
#define TRASS_BASELINES_DFT_BASELINE_H_

#include "baselines/rtree.h"
#include "baselines/searcher.h"

namespace trass {
namespace baselines {

class DftBaseline final : public SimilaritySearcher {
 public:
  /// `sample_factor` is DFT's c (default 5 in the original).
  explicit DftBaseline(int sample_factor = 5)
      : sample_factor_(sample_factor) {}

  std::string name() const override { return "DFT"; }

  Status Build(const std::vector<core::Trajectory>& data) override;

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override;

  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override;

  bool Supports(core::Measure measure) const override {
    return measure != core::Measure::kDtw;
  }

 private:
  const int sample_factor_;
  std::vector<core::Trajectory> data_;
  std::vector<size_t> id_to_index_;  // id -> position in data_
  StrRTree rtree_;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_DFT_BASELINE_H_
