// Adapter exposing TrassStore through the common SimilaritySearcher
// interface so the benchmark harnesses can drive every solution the same
// way.

#ifndef TRASS_BASELINES_TRASS_SEARCHER_H_
#define TRASS_BASELINES_TRASS_SEARCHER_H_

#include <memory>
#include <string>

#include "baselines/searcher.h"
#include "core/trass_store.h"

namespace trass {
namespace baselines {

class TrassSearcher final : public SimilaritySearcher {
 public:
  /// `path` is the store directory (recreated by Build()).
  TrassSearcher(core::TrassOptions options, std::string path)
      : options_(std::move(options)), path_(std::move(path)) {}

  std::string name() const override { return "TraSS"; }

  Status Build(const std::vector<core::Trajectory>& data) override;

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override {
    return store_->ThresholdSearch(query, eps, measure, results, metrics);
  }

  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override {
    return store_->TopKSearch(query, k, measure, results, metrics);
  }

  core::TrassStore* store() { return store_.get(); }

 private:
  core::TrassOptions options_;
  std::string path_;
  std::unique_ptr<core::TrassStore> store_;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_TRASS_SEARCHER_H_
