#include "baselines/brute_force.h"

#include <algorithm>
#include <queue>

#include "core/similarity.h"
#include "util/stopwatch.h"

namespace trass {
namespace baselines {

Status BruteForce::Threshold(const std::vector<geo::Point>& query, double eps,
                             core::Measure measure,
                             std::vector<core::SearchResult>* results,
                             core::QueryMetrics* metrics) {
  results->clear();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  for (const core::Trajectory& t : data_) {
    ++m->retrieved;
    ++m->candidates;
    ++m->refined;
    if (core::SimilarityWithin(measure, query, t.points, eps)) {
      results->push_back(core::SearchResult{
          t.id, core::Similarity(measure, query, t.points)});
    }
  }
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

Status BruteForce::TopK(const std::vector<geo::Point>& query, int k,
                        core::Measure measure,
                        std::vector<core::SearchResult>* results,
                        core::QueryMetrics* metrics) {
  results->clear();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  if (k <= 0) return Status::OK();
  Stopwatch total;
  std::priority_queue<core::SearchResult> best;
  for (const core::Trajectory& t : data_) {
    ++m->retrieved;
    ++m->candidates;
    ++m->refined;
    const double d = core::Similarity(measure, query, t.points);
    if (best.size() < static_cast<size_t>(k)) {
      best.push(core::SearchResult{t.id, d});
    } else if (d < best.top().distance) {
      best.pop();
      best.push(core::SearchResult{t.id, d});
    }
  }
  while (!best.empty()) {
    results->push_back(best.top());
    best.pop();
  }
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace baselines
}  // namespace trass
