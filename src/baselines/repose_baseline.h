// REPOSE baseline (ICDE 2021), reduced to its pruning structure
// (DESIGN.md): trajectories are clustered around pivot trajectories
// (reference points); each cluster stores its radius (max member
// distance to the pivot). Top-k search orders clusters best-first by the
// metric lower bound |d(Q, pivot) - radius| and stops when the bound
// exceeds the current k-th distance. Pivots are sampled from the data,
// so a spatially wide dataset (the paper's Lorry case) yields loose
// radii and weak pruning — the behaviour the evaluation reports.
//
// REPOSE supports top-k only (paper Section VI baselines note).

#ifndef TRASS_BASELINES_REPOSE_BASELINE_H_
#define TRASS_BASELINES_REPOSE_BASELINE_H_

#include "baselines/searcher.h"

namespace trass {
namespace baselines {

class ReposeBaseline final : public SimilaritySearcher {
 public:
  /// `num_pivots` reference trajectories (clusters).
  explicit ReposeBaseline(int num_pivots = 32, uint64_t seed = 1234)
      : num_pivots_(num_pivots), seed_(seed) {}

  std::string name() const override { return "REPOSE"; }

  Status Build(const std::vector<core::Trajectory>& data) override;

  Status Threshold(const std::vector<geo::Point>& query, double eps,
                   core::Measure measure,
                   std::vector<core::SearchResult>* results,
                   core::QueryMetrics* metrics) override;

  Status TopK(const std::vector<geo::Point>& query, int k,
              core::Measure measure,
              std::vector<core::SearchResult>* results,
              core::QueryMetrics* metrics) override;

  bool SupportsThreshold() const override { return false; }

  /// The metric-space bound needs a true metric; DTW is not one.
  bool Supports(core::Measure measure) const override {
    return measure != core::Measure::kDtw;
  }

 private:
  struct Cluster {
    size_t pivot_index = 0;
    double radius = 0.0;
    std::vector<std::pair<size_t, double>> members;  // (index, d to pivot)
  };

  const int num_pivots_;
  const uint64_t seed_;
  std::vector<core::Trajectory> data_;
  std::vector<Cluster> clusters_;
  core::Measure built_measure_ = core::Measure::kFrechet;
  bool built_ = false;
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_REPOSE_BASELINE_H_
