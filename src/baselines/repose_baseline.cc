#include "baselines/repose_baseline.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/similarity.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace trass {
namespace baselines {

Status ReposeBaseline::Build(const std::vector<core::Trajectory>& data) {
  data_ = data;
  clusters_.clear();
  built_ = false;
  if (data_.empty()) return Status::OK();

  // Sample pivot trajectories, then assign every trajectory to its
  // nearest pivot under the (default) Fréchet measure, recording the
  // exact pivot distance for the triangle-inequality bound.
  Random rnd(seed_);
  const int pivots =
      std::min<int>(num_pivots_, static_cast<int>(data_.size()));
  std::vector<size_t> pivot_indices;
  for (int i = 0; i < pivots; ++i) {
    pivot_indices.push_back(rnd.Uniform(data_.size()));
  }
  std::sort(pivot_indices.begin(), pivot_indices.end());
  pivot_indices.erase(
      std::unique(pivot_indices.begin(), pivot_indices.end()),
      pivot_indices.end());

  clusters_.resize(pivot_indices.size());
  for (size_t c = 0; c < pivot_indices.size(); ++c) {
    clusters_[c].pivot_index = pivot_indices[c];
  }
  built_measure_ = core::Measure::kFrechet;
  // Assign each trajectory to a pivot by a cheap proxy (MBR centers); the
  // triangle bound only needs the *stored* pivot distance to be exact,
  // not the assignment to be optimal. One exact distance per trajectory
  // keeps the build cost comparable to REPOSE's reported indexing times.
  std::vector<geo::Point> pivot_centers(clusters_.size());
  for (size_t c = 0; c < clusters_.size(); ++c) {
    pivot_centers[c] =
        geo::Mbr::Of(data_[clusters_[c].pivot_index].points).center();
  }
  for (size_t i = 0; i < data_.size(); ++i) {
    const geo::Point center = geo::Mbr::Of(data_[i].points).center();
    double best_proxy = std::numeric_limits<double>::infinity();
    size_t best_cluster = 0;
    for (size_t c = 0; c < clusters_.size(); ++c) {
      const double d = geo::DistanceSquared(center, pivot_centers[c]);
      if (d < best_proxy) {
        best_proxy = d;
        best_cluster = c;
      }
    }
    const double exact = core::Similarity(
        built_measure_, data_[clusters_[best_cluster].pivot_index].points,
        data_[i].points);
    clusters_[best_cluster].members.emplace_back(i, exact);
    clusters_[best_cluster].radius =
        std::max(clusters_[best_cluster].radius, exact);
  }
  built_ = true;
  return Status::OK();
}

Status ReposeBaseline::Threshold(const std::vector<geo::Point>&, double,
                                 core::Measure,
                                 std::vector<core::SearchResult>*,
                                 core::QueryMetrics*) {
  return Status::NotSupported("REPOSE supports top-k search only");
}

Status ReposeBaseline::TopK(const std::vector<geo::Point>& query, int k,
                            core::Measure measure,
                            std::vector<core::SearchResult>* results,
                            core::QueryMetrics* metrics) {
  results->clear();
  if (!Supports(measure)) {
    return Status::NotSupported("REPOSE needs a metric measure");
  }
  if (measure != built_measure_) {
    return Status::NotSupported(
        "REPOSE clusters were built for a different measure");
  }
  if (k <= 0 || !built_) return Status::OK();
  core::QueryMetrics local;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::QueryMetrics();
  Stopwatch total;
  Stopwatch phase;

  // Distance to every pivot, then order members by the triangle bound
  // |d(Q, pivot) - d(pivot, T)|.
  struct Candidate {
    double bound;
    size_t index;
    size_t cluster;
    bool operator>(const Candidate& other) const {
      return bound > other.bound;
    }
  };
  std::vector<double> pivot_distance(clusters_.size());
  for (size_t c = 0; c < clusters_.size(); ++c) {
    ++m->refined;
    pivot_distance[c] = core::Similarity(
        measure, query, data_[clusters_[c].pivot_index].points);
  }
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      frontier;
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (const auto& [index, to_pivot] : clusters_[c].members) {
      frontier.push(Candidate{std::fabs(pivot_distance[c] - to_pivot),
                              index, c});
    }
  }
  m->pruning_ms = phase.ElapsedMillis();

  phase.Reset();
  std::priority_queue<core::SearchResult> best;
  while (!frontier.empty()) {
    const Candidate candidate = frontier.top();
    frontier.pop();
    if (best.size() == static_cast<size_t>(k) &&
        candidate.bound > best.top().distance) {
      break;  // the bound can only grow from here
    }
    ++m->retrieved;
    ++m->candidates;
    ++m->refined;
    const double d =
        core::Similarity(measure, query, data_[candidate.index].points);
    if (best.size() < static_cast<size_t>(k)) {
      best.push(core::SearchResult{data_[candidate.index].id, d});
    } else if (d < best.top().distance) {
      best.pop();
      best.push(core::SearchResult{data_[candidate.index].id, d});
    }
  }
  m->refine_ms = phase.ElapsedMillis();

  while (!best.empty()) {
    results->push_back(best.top());
    best.pop();
  }
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace baselines
}  // namespace trass
