// Common interface for every similarity-search solution compared in the
// evaluation (TraSS + the baselines of Section VI). The benchmark
// harnesses drive all solutions through this interface.

#ifndef TRASS_BASELINES_SEARCHER_H_
#define TRASS_BASELINES_SEARCHER_H_

#include <string>
#include <vector>

#include "core/measure.h"
#include "core/metrics.h"
#include "core/trajectory.h"
#include "util/status.h"

namespace trass {
namespace baselines {

class SimilaritySearcher {
 public:
  virtual ~SimilaritySearcher() = default;

  virtual std::string name() const = 0;

  /// Builds (or ingests into) the index. Timed by the Figure 13 bench.
  virtual Status Build(const std::vector<core::Trajectory>& data) = 0;

  /// Threshold similarity search (Definition 3).
  virtual Status Threshold(const std::vector<geo::Point>& query, double eps,
                           core::Measure measure,
                           std::vector<core::SearchResult>* results,
                           core::QueryMetrics* metrics) = 0;

  /// Top-k similarity search (Definition 4).
  virtual Status TopK(const std::vector<geo::Point>& query, int k,
                      core::Measure measure,
                      std::vector<core::SearchResult>* results,
                      core::QueryMetrics* metrics) = 0;

  /// Which measures this solution supports (paper Section VII-C: DITA has
  /// no Hausdorff, DFT no DTW, REPOSE is top-k only).
  virtual bool Supports(core::Measure measure) const {
    (void)measure;
    return true;
  }
  virtual bool SupportsThreshold() const { return true; }
};

}  // namespace baselines
}  // namespace trass

#endif  // TRASS_BASELINES_SEARCHER_H_
