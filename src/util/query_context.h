// QueryContext: cooperative controls for one query — a wall-clock
// deadline, an external cancellation flag, and a candidate budget —
// shared by every layer the query touches (global pruning, the parallel
// region scans, local filtering, exact refinement).
//
// The contract is cooperative: nothing is preempted. Each layer polls
// ShouldStop()/Check() at a granularity matching its unit of work (per
// pruning-traversal batch, per scanned-row batch, per refined candidate)
// and unwinds with the stop status. Stop statuses (TimedOut, Cancelled,
// Busy) are caller-attributed, not storage faults: the scan retry and
// degraded-region machinery must never retry or "skip a region" over
// them — see Status::IsQueryStop().
//
// Thread-safety: all methods may be called concurrently once the query
// is in flight (scan workers share one context). The setters are meant
// for single-threaded setup before the query starts.

#ifndef TRASS_UTIL_QUERY_CONTEXT_H_
#define TRASS_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace trass {

class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: no deadline, not cancellable, unlimited budget.
  QueryContext() = default;

  /// Arms the deadline `budget_ms` wall-clock milliseconds from now;
  /// values <= 0 leave the query undeadlined.
  void SetDeadlineAfterMillis(double budget_ms) {
    if (budget_ms <= 0.0) return;
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       budget_ms));
  }

  /// Registers a caller-owned cancellation flag; the query stops soon
  /// after it becomes true. The flag must outlive the query.
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Caps the rows local filtering may keep across all regions (a memory
  /// bound: kept rows are what the query must hold). 0 = unlimited.
  void SetCandidateBudget(uint64_t max_candidates) {
    max_candidates_ = max_candidates;
  }

  bool has_deadline() const { return has_deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  bool budget_exhausted() const {
    return max_candidates_ != 0 &&
           candidates_.load(std::memory_order_relaxed) > max_candidates_;
  }

  /// Charges `n` kept rows against the candidate budget; false once the
  /// budget is exceeded (the query should stop).
  bool ChargeCandidates(uint64_t n) const {
    if (max_candidates_ == 0) {
      return true;
    }
    return candidates_.fetch_add(n, std::memory_order_relaxed) + n <=
           max_candidates_;
  }

  /// Cheap poll: true when the query must stop for any reason.
  bool ShouldStop() const {
    return cancelled() || budget_exhausted() || deadline_expired();
  }

  /// OK while the query may continue; otherwise the stop status
  /// (Cancelled > TimedOut > Busy precedence — an explicit cancel beats a
  /// deadline that expired while unwinding).
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (deadline_expired()) return Status::TimedOut("query deadline expired");
    if (budget_exhausted()) {
      return Status::Busy("candidate budget exhausted");
    }
    return Status::OK();
  }

  /// Remaining wall-clock milliseconds, clamped at 0 (infinity when no
  /// deadline is armed). Used to bound retry backoff sleeps.
  double RemainingMillis() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    const auto left = deadline_ - Clock::now();
    return left.count() <= 0
               ? 0.0
               : std::chrono::duration<double, std::milli>(left).count();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t max_candidates_ = 0;
  // Charged by scan workers holding only a const pointer; the running
  // count is observer-side state, not query configuration.
  mutable std::atomic<uint64_t> candidates_{0};
};

}  // namespace trass

#endif  // TRASS_UTIL_QUERY_CONTEXT_H_
