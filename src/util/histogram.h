// Latency histogram with exact percentiles (stores samples; query counts in
// the evaluation are a few hundred per configuration, so exactness is cheap
// and avoids bucketing error in the tail-latency figure).

#ifndef TRASS_UTIL_HISTOGRAM_H_
#define TRASS_UTIL_HISTOGRAM_H_

#include <string>
#include <vector>

namespace trass {

class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Percentile in [0, 100]; e.g. Percentile(50) is the median and
  /// Percentile(99) the 99th-percentile tail latency. Returns 0 when empty.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }

  /// One-line summary: "n=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace trass

#endif  // TRASS_UTIL_HISTOGRAM_H_
