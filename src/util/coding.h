// Binary encoding primitives: little-endian fixed-width integers, varints,
// length-prefixed slices, and big-endian order-preserving encodings used in
// row keys (a lexicographic byte comparison of two encoded keys must agree
// with the numeric comparison of the original integers).

#ifndef TRASS_UTIL_CODING_H_
#define TRASS_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace trass {

// ---------- little-endian fixed-width (values, internal metadata) ----------

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// ---------- varints ----------

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Parses a varint32 from the front of `*input`, advancing it.
/// Returns false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Number of bytes a varint64 encoding of `value` occupies.
int VarintLength(uint64_t value);

// ---------- length-prefixed slices ----------

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// ---------- order-preserving big-endian (row-key components) ----------

/// Appends `value` as 8 big-endian bytes, so unsigned numeric order equals
/// lexicographic byte order.
void PutBigEndian64(std::string* dst, uint64_t value);
uint64_t DecodeBigEndian64(const char* ptr);

/// Appends `value` as 4 big-endian bytes.
void PutBigEndian32(std::string* dst, uint32_t value);
uint32_t DecodeBigEndian32(const char* ptr);

/// Order-preserving encoding of a double (assumes finite input): flips the
/// sign bit (and all bits for negatives) so byte order equals numeric order.
void PutOrderedDouble(std::string* dst, double value);
double DecodeOrderedDouble(const char* ptr);

/// Raw (little-endian IEEE) double, for values where order is irrelevant.
void PutDouble(std::string* dst, double value);
bool GetDouble(Slice* input, double* value);

}  // namespace trass

#endif  // TRASS_UTIL_CODING_H_
