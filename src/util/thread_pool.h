// Fixed-size thread pool used by RegionStore to emulate parallel region
// scans (HBase fans a scan out to region servers; we fan out to workers).
//
// Shutdown safety: Submit() after Shutdown() (or during destruction)
// returns a future that is already failed instead of enqueueing work
// that will never run. ParallelFor waits for every task it launched —
// even when one throws — then rethrows the first exception, so no task
// can outlive the locals the caller passed in. The cancellation-aware
// overload supports early-exit fan-outs: indices not yet started when
// the predicate turns true are skipped.

#ifndef TRASS_UTIL_THREAD_POOL_H_
#define TRASS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace trass {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes.
  /// After Shutdown() the task is dropped and the future is already
  /// failed (std::runtime_error) — the call never deadlocks or aborts.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for all.
  /// If any task throws, every task still runs to completion and the
  /// first exception (by index) is rethrown afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Cancellation-aware overload: `should_stop` is polled (possibly from
  /// several workers at once — it must be thread-safe) before each index
  /// starts; once it returns true, indices that have not started yet are
  /// skipped. A thrown task also stops the remaining indices. Waits for
  /// everything it launched, rethrows the first exception, and returns
  /// the number of indices that actually ran to completion.
  size_t ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                     const std::function<bool()>& should_stop);

  /// Stops the workers after draining already-queued tasks; idempotent.
  /// Subsequent Submit() calls fail fast. Called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace trass

#endif  // TRASS_UTIL_THREAD_POOL_H_
