// Fixed-size thread pool used by RegionStore to emulate parallel region
// scans (HBase fans a scan out to region servers; we fan out to workers).

#ifndef TRASS_UTIL_THREAD_POOL_H_
#define TRASS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace trass {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for all.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace trass

#endif  // TRASS_UTIL_THREAD_POOL_H_
