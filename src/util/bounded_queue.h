// Bounded multi-producer queue feeding the ingest group-commit batcher.
//
// Producers Push from any thread; acceptance assigns a monotonically
// increasing ticket (the ingest sequence number) inside the queue lock,
// so ticket order == queue order — the single consumer that drains the
// queue sees items in exactly ticket order and can account for sequence
// numbers with a plain counter. Backpressure is explicit: a full queue
// makes Push wait up to the caller's budget and then shed with
// Status::Busy (the AdmissionController convention), never block
// unboundedly.
//
// PopBatch implements the group-commit gather: it blocks for the first
// item, then lingers briefly (or until `max_items`) so concurrent
// producers coalesce into one batch.

#ifndef TRASS_UTIL_BOUNDED_QUEUE_H_
#define TRASS_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/status.h"

namespace trass {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, waiting up to `max_wait_ms` for space (0 = shed
  /// immediately when full). On success *ticket (if non-null) receives
  /// this item's 1-based acceptance sequence number. Returns Busy when
  /// the queue stayed full for the whole wait, Cancelled after Close().
  Status Push(T item, uint64_t max_wait_ms, uint64_t* ticket = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && max_wait_ms > 0 && !closed_) {
      not_full_.wait_for(lock, std::chrono::milliseconds(max_wait_ms), [&] {
        return items_.size() < capacity_ || closed_;
      });
    }
    if (closed_) return Status::Cancelled("ingest queue closed");
    if (items_.size() >= capacity_) {
      return Status::Busy("ingest queue full");
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    if (ticket != nullptr) *ticket = ++accepted_;
    else ++accepted_;
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Pops up to `max_items` into *out (appended), blocking until at
  /// least one item is available or the queue is closed and empty. Once
  /// the first item arrives, lingers up to `linger_ms` for more (group
  /// commit), returning early at `max_items`. Returns the number popped;
  /// 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items, double linger_ms) {
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return 0;  // closed and drained
    if (items_.size() < max_items && linger_ms > 0 && !closed_) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(linger_ms));
      not_empty_.wait_until(lock, deadline, [&] {
        return items_.size() >= max_items || closed_;
      });
    }
    size_t popped = 0;
    while (popped < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++popped;
    }
    not_full_.notify_all();
    return popped;
  }

  /// Rejects future pushes and wakes all waiters; items already queued
  /// can still be drained by PopBatch. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been (backpressure telemetry).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Total items ever accepted == the last ticket handed out.
  uint64_t accepted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return accepted_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  uint64_t accepted_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace trass

#endif  // TRASS_UTIL_BOUNDED_QUEUE_H_
