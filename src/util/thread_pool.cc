#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>

namespace trass {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Shutting down: no worker will ever pop this task. Fail the
      // future immediately instead of handing back one that never
      // resolves (or aborting on a broken promise).
      std::promise<void> failed;
      failed.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool is shut down")));
      return failed.get_future();
    }
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelFor(n, fn, [] { return false; });
}

size_t ThreadPool::ParallelFor(size_t n,
                               const std::function<void(size_t)>& fn,
                               const std::function<bool()>& should_stop) {
  if (n == 0) return 0;
  if (n == 1) {
    if (should_stop()) return 0;
    fn(0);
    return 1;
  }
  std::atomic<size_t> ran{0};
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, &should_stop, &ran, &failed, i] {
      if (failed.load(std::memory_order_relaxed) || should_stop()) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;  // captured by the packaged_task, rethrown from get()
      }
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  // Wait for everything before surfacing any exception: a task may still
  // be touching fn/should_stop/ran, which live on this frame.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
  return ran.load(std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace trass
