// Deterministic pseudo-random generator (splitmix64-seeded xorshift128+).
// All workload generators and property tests use this so experiments are
// reproducible across runs and platforms.

#ifndef TRASS_UTIL_RANDOM_H_
#define TRASS_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace trass {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 to spread weak seeds over the whole state space.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple, adequate
  /// for workload synthesis).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace trass

#endif  // TRASS_UTIL_RANDOM_H_
