// RetryPolicy: shared capped-exponential-backoff schedule with optional
// jitter, used wherever the store retries a fallible operation — region
// scan retries, Resume() probing after a background error. Extracted
// from the ad-hoc backoff arithmetic in RegionStore so every retry loop
// in the codebase sleeps the same way.
//
// Deadline-aware: BackoffMs clamps (rounding up) to the caller's
// remaining time, because sleeping a fraction of a millisecond *before*
// a deadline would only buy one more doomed attempt.
//
// Thread-safe: one policy may be shared by concurrent workers; the
// jitter source is a lock-free xorshift state.

#ifndef TRASS_UTIL_RETRY_POLICY_H_
#define TRASS_UTIL_RETRY_POLICY_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "util/query_context.h"
#include "util/status.h"

namespace trass {

class RetryPolicy {
 public:
  struct Options {
    /// Retries after the first attempt (0 disables retrying).
    int max_retries = 2;
    /// Backoff before the first retry; doubles per retry up to the cap.
    uint64_t base_backoff_ms = 2;
    uint64_t max_backoff_ms = 100;
    /// Jitter fraction in [0, 1): each backoff is scaled by a uniform
    /// factor in [1 - jitter, 1 + jitter], then re-capped. Zero keeps
    /// the schedule deterministic (what the scan tests rely on).
    double jitter = 0.0;
  };

  RetryPolicy() : RetryPolicy(Options{}) {}
  explicit RetryPolicy(const Options& options, uint64_t seed = 0x5e7a11);

  int max_retries() const { return options_.max_retries; }

  /// Backoff before retry `attempt` (1-based: the sleep preceding the
  /// first retry is attempt 1). Capped exponential, jittered, and — when
  /// `remaining_ms` is non-negative — clamped to it, rounded up.
  uint64_t BackoffMs(int attempt, double remaining_ms = -1.0) const;

  /// BackoffMs + sleep; returns the milliseconds slept.
  uint64_t SleepBeforeRetry(int attempt, double remaining_ms = -1.0) const;

  /// Runs `op` up to 1 + max_retries times with backoff sleeps in
  /// between, until it returns OK or a status retrying cannot fix
  /// (query stops, InvalidArgument, NotSupported). Returns the last
  /// status.
  Status Run(const std::function<Status()>& op) const;

  /// Deadline-aware Run: backoffs are charged against `control`'s
  /// remaining budget. A retry whose backoff would overshoot the
  /// remaining deadline fails fast with the last error instead of
  /// sleeping past the budget (the clamped-sleep alternative wakes at
  /// the deadline and buys exactly one doomed attempt). A stop that
  /// fires between attempts also ends the loop: with a failure already
  /// recorded the caller gets that error, otherwise the stop status.
  /// Null `control` behaves like the overload above.
  Status Run(const std::function<Status()>& op,
             const QueryContext* control) const;

 private:
  Options options_;
  mutable std::atomic<uint64_t> rng_state_;
};

}  // namespace trass

#endif  // TRASS_UTIL_RETRY_POLICY_H_
