#include "util/status.h"

namespace trass {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* type = "";
  switch (rep_->code) {
    case Code::kOk:
      type = "OK";
      break;
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kInvalidArgument:
      type = "InvalidArgument: ";
      break;
    case Code::kIoError:
      type = "IoError: ";
      break;
    case Code::kNotSupported:
      type = "NotSupported: ";
      break;
    case Code::kTimedOut:
      type = "TimedOut: ";
      break;
    case Code::kCancelled:
      type = "Cancelled: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    case Code::kNoSpace:
      type = "NoSpace: ";
      break;
  }
  return std::string(type) + rep_->message;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  return Status(rep_->code,
                std::string(context) + ": " + rep_->message);
}

}  // namespace trass
