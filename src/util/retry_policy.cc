#include "util/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace trass {

RetryPolicy::RetryPolicy(const Options& options, uint64_t seed)
    : options_(options), rng_state_(seed ? seed : 1) {}

uint64_t RetryPolicy::BackoffMs(int attempt, double remaining_ms) const {
  if (attempt < 1) attempt = 1;
  // The shift is bounded so a long retry loop cannot overflow; the cap
  // dominates well before 2^20 anyway.
  uint64_t backoff_ms = options_.base_backoff_ms
                        << std::min(attempt - 1, 20);
  backoff_ms = std::min(backoff_ms, options_.max_backoff_ms);
  if (options_.jitter > 0.0 && backoff_ms > 0) {
    // Lock-free xorshift64: relaxed is fine, the bits only feed jitter.
    uint64_t x = rng_state_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = x;
      next ^= next << 13;
      next ^= next >> 7;
      next ^= next << 17;
    } while (!rng_state_.compare_exchange_weak(x, next,
                                               std::memory_order_relaxed));
    const double unit = static_cast<double>(next >> 11) * 0x1.0p-53;
    const double factor =
        1.0 - options_.jitter + 2.0 * options_.jitter * unit;
    backoff_ms = static_cast<uint64_t>(
        std::llround(static_cast<double>(backoff_ms) * factor));
    backoff_ms = std::min(backoff_ms, options_.max_backoff_ms);
  }
  if (remaining_ms >= 0.0 &&
      remaining_ms < static_cast<double>(backoff_ms)) {
    // Round up: waking a fraction of a millisecond *before* the
    // deadline would only buy one more doomed attempt.
    backoff_ms = static_cast<uint64_t>(std::ceil(remaining_ms));
  }
  return backoff_ms;
}

uint64_t RetryPolicy::SleepBeforeRetry(int attempt,
                                       double remaining_ms) const {
  const uint64_t backoff_ms = BackoffMs(attempt, remaining_ms);
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  return backoff_ms;
}

Status RetryPolicy::Run(const std::function<Status()>& op) const {
  Status s;
  const int attempts = 1 + std::max(0, options_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) SleepBeforeRetry(attempt);
    s = op();
    if (s.ok()) return s;
    // Caller-attributed or structural failures are not retryable.
    if (s.IsQueryStop() || s.IsInvalidArgument() || s.IsNotSupported()) {
      return s;
    }
  }
  return s;
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        const QueryContext* control) const {
  if (control == nullptr) return Run(op);
  Status s;
  const int attempts = 1 + std::max(0, options_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // The *unclamped* backoff against the remaining budget: when the
      // schedule says sleep longer than the deadline has left, the
      // retry cannot complete in time — fail fast with the error in
      // hand instead of sleeping the caller past its own budget (the
      // old clamped sleep woke exactly at the deadline and bought one
      // doomed attempt).
      const uint64_t backoff_ms = BackoffMs(attempt);
      if (static_cast<double>(backoff_ms) > control->RemainingMillis()) {
        return s;
      }
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
    if (Status stop = control->Check(); !stop.ok()) {
      return s.ok() ? stop : s;
    }
    s = op();
    if (s.ok()) return s;
    if (s.IsQueryStop() || s.IsInvalidArgument() || s.IsNotSupported()) {
      return s;
    }
  }
  return s;
}

}  // namespace trass
