#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace trass {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  Sort();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Histogram::Max() const {
  Sort();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  Sort();
  // Nearest-rank with linear interpolation between adjacent samples.
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  if (hi >= samples_.size()) hi = samples_.size() - 1;
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                Count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

}  // namespace trass
