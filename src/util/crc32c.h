// CRC32C (Castagnoli) checksums, used to frame write-ahead-log records and
// SSTable blocks so corruption is detected on read.

#ifndef TRASS_UTIL_CRC32C_H_
#define TRASS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace trass {
namespace crc32c {

/// Returns crc32c(concat(A, data[0,n-1])) where init_crc is crc32c(A).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Returns crc32c(data[0,n-1]).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC so that storing the CRC of a string that itself contains
/// embedded CRCs does not produce degenerate checksums (LevelDB convention).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace trass

#endif  // TRASS_UTIL_CRC32C_H_
