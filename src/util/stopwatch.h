// Wall-clock stopwatch used by the benchmark harnesses and query metrics.

#ifndef TRASS_UTIL_STOPWATCH_H_
#define TRASS_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace trass {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in microseconds since construction or last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trass

#endif  // TRASS_UTIL_STOPWATCH_H_
