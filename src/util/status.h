// Status: error-propagation type used across the TraSS codebase.
//
// Follows the LevelDB/RocksDB convention: cheap to copy when OK (no
// allocation), carries a code plus a human-readable message otherwise.
// Library code returns Status instead of throwing exceptions.

#ifndef TRASS_UTIL_STATUS_H_
#define TRASS_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace trass {

class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(Code::kTimedOut, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(Code::kCancelled, msg);
  }
  static Status Busy(std::string_view msg) {
    return Status(Code::kBusy, msg);
  }
  static Status NoSpace(std::string_view msg) {
    return Status(Code::kNoSpace, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIoError() const { return code() == Code::kIoError; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }
  bool IsCancelled() const { return code() == Code::kCancelled; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsNoSpace() const { return code() == Code::kNoSpace; }

  /// True for the statuses a cooperative query control emits when a query
  /// must stop (deadline, cancellation, budget, admission). These are
  /// caller-attributed conditions, never storage faults: retry/degraded
  /// machinery must not treat them as region failures.
  bool IsQueryStop() const {
    return IsTimedOut() || IsCancelled() || IsBusy();
  }

  /// Returns a string such as "NotFound: no such key" (or "OK").
  std::string ToString() const;

  /// Returns a copy with `context` prepended to the message, keeping the
  /// code: Corruption("bad block") -> Corruption("region 3: bad block").
  /// No-op on OK statuses. Used to attribute failures to a component
  /// (region, file) as they propagate up.
  Status WithContext(std::string_view context) const;

 private:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIoError,
    kNotSupported,
    kTimedOut,
    kCancelled,
    kBusy,
    // Disk-space exhaustion (ENOSPC or a space-watermark rejection).
    // A storage fault like kIoError — NOT a query stop — but kept
    // distinct so callers can tell "out of space, retry after freeing"
    // from "the device is broken".
    kNoSpace,
  };

  struct Rep {
    Code code;
    std::string message;
  };

  Status(Code code, std::string_view msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::string(msg)})) {}

  Code code() const { return rep_ ? rep_->code : Code::kOk; }

  // Null when OK; this keeps the common success path allocation-free.
  std::unique_ptr<Rep> rep_;
};

}  // namespace trass

#endif  // TRASS_UTIL_STATUS_H_
