#include "util/coding.h"

#include <cstring>

namespace trass {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

namespace {

bool GetVarintGeneric(Slice* input, uint64_t* value, int max_bytes) {
  uint64_t result = 0;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  const auto* limit = p + input->size();
  for (int shift = 0, i = 0; i < max_bytes && p < limit; ++i, shift += 7) {
    uint64_t byte = *p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->remove_prefix(
          static_cast<size_t>(reinterpret_cast<const char*>(p) -
                              input->data()));
      return true;
    }
  }
  return false;
}

}  // namespace

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarintGeneric(input, &v, 5)) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  return GetVarintGeneric(input, value, 10);
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * (7 - i))) & 0xff);
  }
  dst->append(buf, 8);
}

uint64_t DecodeBigEndian64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutBigEndian32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((value >> (8 * (3 - i))) & 0xff);
  }
  dst->append(buf, 4);
}

uint32_t DecodeBigEndian32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutOrderedDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  // Positive doubles: set the sign bit so they sort above negatives.
  // Negative doubles: flip all bits so larger magnitude sorts lower.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  PutBigEndian64(dst, bits);
}

double DecodeOrderedDouble(const char* ptr) {
  uint64_t bits = DecodeBigEndian64(ptr);
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

bool GetDouble(Slice* input, double* value) {
  if (input->size() < 8) return false;
  uint64_t bits = DecodeFixed64(input->data());
  std::memcpy(value, &bits, sizeof(*value));
  input->remove_prefix(8);
  return true;
}

}  // namespace trass
