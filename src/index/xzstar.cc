#include "index/xzstar.h"

#include <algorithm>
#include <cassert>

namespace trass {
namespace index {

namespace {

// mask (bits a,b,c,d) -> position code; 0 = infeasible. A feasible mask
// satisfies (a|c) and (a|b): the trajectory's leftmost point lies in the
// element's left half and its bottommost point in the bottom half, because
// the MBR's lower-left corner lies in sub-quad a.
constexpr int kMaskToCode[16] = {
    /*0b0000*/ 0,  /*0b0001 {a}*/ 10, /*0b0010 {b}*/ 0,  /*0b0011 {a,b}*/ 1,
    /*0b0100 {c}*/ 0, /*0b0101 {a,c}*/ 2, /*0b0110 {b,c}*/ 4,
    /*0b0111 {a,b,c}*/ 5,
    /*0b1000 {d}*/ 0, /*0b1001 {a,d}*/ 3, /*0b1010 {b,d}*/ 0,
    /*0b1011 {a,b,d}*/ 7,
    /*0b1100 {c,d}*/ 0, /*0b1101 {a,c,d}*/ 6, /*0b1110 {b,c,d}*/ 8,
    /*0b1111 {a,b,c,d}*/ 9,
};

constexpr unsigned kCodeToMask[11] = {
    0,      // unused
    0b0011,  // 1: {a,b}
    0b0101,  // 2: {a,c}
    0b1001,  // 3: {a,d}
    0b0110,  // 4: {b,c}
    0b0111,  // 5: {a,b,c}
    0b1101,  // 6: {a,c,d}
    0b1011,  // 7: {a,b,d}
    0b1110,  // 8: {b,c,d}
    0b1111,  // 9: {a,b,c,d}
    0b0001,  // 10: {a}
};

}  // namespace

int PositionCodeFromMask(unsigned mask) {
  return mask < 16 ? kMaskToCode[mask] : 0;
}

unsigned MaskFromPositionCode(int code) {
  assert(code >= 1 && code <= 10);
  return kCodeToMask[code];
}

XzStar::XzStar(int max_resolution) : r_(max_resolution) {
  assert(r_ >= 1 && r_ <= kMaxResolution);
  // N_is(l) = 13 * 4^(r-l) - 3 (Lemma 4); built bottom-up so the values
  // stay exact in int64 arithmetic.
  n_is_.assign(r_ + 1, 0);
  n_is_[r_] = 10;
  for (int l = r_ - 1; l >= 1; --l) {
    n_is_[l] = 9 + 4 * n_is_[l + 1];
  }
}

XzStar::IndexSpace XzStar::Index(const std::vector<geo::Point>& points) const {
  assert(!points.empty());
  const geo::Mbr mbr = geo::Mbr::Of(points);
  IndexSpace space;
  space.seq = SequenceFor(mbr, r_);

  const geo::Point origin = space.seq.CellOrigin();
  const double w = space.seq.CellWidth();
  unsigned mask = 0;
  for (const geo::Point& p : points) {
    // Clamp into [0, 2w) relative to the element, absorbing the ulp-scale
    // disagreements between the digit walk and floor() arithmetic.
    double rx = std::clamp(p.x - origin.x, 0.0, std::nextafter(2.0 * w, 0.0));
    double ry = std::clamp(p.y - origin.y, 0.0, std::nextafter(2.0 * w, 0.0));
    const int quad = (rx >= w ? 1 : 0) | (ry >= w ? 2 : 0);
    mask |= 1u << quad;
  }
  space.pos = PositionCodeFromMask(mask);
  // The ten-combination argument (DESIGN.md) makes other masks impossible;
  // see the feasibility proof sketch above kMaskToCode.
  assert(space.pos != 0);
  if (space.pos == 0) space.pos = 9;  // unreachable; defensive
  // Code 10 ({a} alone) only occurs at max resolution by Lemma 2 — or at
  // the root overflow element, whose sub-quad a is the whole unit square.
  assert(space.pos != 10 || space.seq.length() == r_ ||
         space.seq.length() == 0);
  return space;
}

int64_t XzStar::ElementBaseValue(const QuadSeq& seq) const {
  const int l = seq.length();
  assert(l >= 0 && l <= r_);
  if (l == 0) return 4 * n_is_[1];  // root overflow bucket
  int64_t value = 0;
  for (int i = 1; i <= l; ++i) {
    value += static_cast<int64_t>(seq.digit(i - 1)) * n_is_[i];
  }
  value += 9ll * (l - 1);
  return value;
}

int64_t XzStar::Encode(const IndexSpace& space) const {
  assert(space.pos >= 1 && space.pos <= 10);
  return ElementBaseValue(space.seq) + (space.pos - 1);
}

XzStar::IndexSpace XzStar::Decode(int64_t value) const {
  assert(value >= 0 && value < TotalIndexSpaces());
  IndexSpace space;
  if (value >= 4 * n_is_[1]) {  // root overflow bucket
    space.pos = static_cast<int>(value - 4 * n_is_[1]) + 1;
    return space;
  }
  int64_t rem = value;
  int level = 0;
  // Descend: at each element, its own codes come first in DFS order,
  // then the four child subtrees.
  {
    const int top = static_cast<int>(rem / n_is_[1]);
    rem -= static_cast<int64_t>(top) * n_is_[1];
    space.seq = space.seq.Child(top);
    level = 1;
  }
  for (;;) {
    const int64_t own = (level == r_) ? 10 : 9;
    if (rem < own) {
      space.pos = static_cast<int>(rem) + 1;
      return space;
    }
    rem -= own;
    const int64_t child_size = n_is_[level + 1];
    const int child = static_cast<int>(rem / child_size);
    rem -= static_cast<int64_t>(child) * child_size;
    space.seq = space.seq.Child(child);
    ++level;
  }
}

geo::Mbr XzStar::SubQuadBounds(const QuadSeq& seq, int quad) {
  assert(quad >= 0 && quad < 4);
  const geo::Point o = seq.CellOrigin();
  const double w = seq.CellWidth();
  const double x0 = o.x + ((quad & 1) ? w : 0.0);
  const double y0 = o.y + ((quad & 2) ? w : 0.0);
  return geo::Mbr(x0, y0, x0 + w, y0 + w);
}

std::vector<geo::Mbr> XzStar::IndexSpaceRects(const QuadSeq& seq, int pos) {
  const unsigned mask = MaskFromPositionCode(pos);
  std::vector<geo::Mbr> rects;
  rects.reserve(4);
  for (int quad = 0; quad < 4; ++quad) {
    if (mask & (1u << quad)) {
      rects.push_back(SubQuadBounds(seq, quad));
    }
  }
  return rects;
}

}  // namespace index
}  // namespace trass
