#include "index/xz2.h"

#include <algorithm>
#include <cassert>

namespace trass {
namespace index {

Xz2::Xz2(int max_resolution) : r_(max_resolution) {
  assert(r_ >= 1 && r_ <= QuadSeq::kMaxLength);
  subtree_.assign(r_ + 1, 0);
  subtree_[r_] = 1;
  for (int l = r_ - 1; l >= 1; --l) {
    subtree_[l] = 1 + 4 * subtree_[l + 1];
  }
}

int64_t Xz2::Encode(const QuadSeq& seq) const {
  const int l = seq.length();
  assert(l >= 0 && l <= r_);
  if (l == 0) return 4 * subtree_[1];  // root overflow element
  // DFS numbering: an element is visited before its children, so
  //   V(s) = sum_i (q_i * subtree(i) + 1) - 1.
  int64_t value = -1;
  for (int i = 1; i <= l; ++i) {
    value += static_cast<int64_t>(seq.digit(i - 1)) * subtree_[i] + 1;
  }
  return value;
}

QuadSeq Xz2::Decode(int64_t value) const {
  assert(value >= 0 && value < TotalElements());
  QuadSeq seq;
  if (value == 4 * subtree_[1]) return seq;  // root overflow element
  int64_t rem = value;
  int level = 1;
  for (;;) {
    const int64_t child_size = subtree_[level];
    const int digit = static_cast<int>(rem / child_size);
    rem -= static_cast<int64_t>(digit) * child_size;
    seq = seq.Child(digit);
    if (rem == 0) return seq;
    rem -= 1;  // skip the element itself
    ++level;
  }
}

namespace {

bool HasValueInRange(const std::vector<int64_t>* directory, int64_t lo,
                     int64_t hi) {
  if (directory == nullptr) return true;
  const auto it = std::lower_bound(directory->begin(), directory->end(), lo);
  return it != directory->end() && *it <= hi;
}

}  // namespace

void Xz2::CollectRanges(
    const QuadSeq& seq, int64_t base, const geo::Mbr& window,
    const std::vector<int64_t>* directory, size_t* budget,
    std::vector<std::pair<int64_t, int64_t>>* out) const {
  // `base` is Encode(seq). Child elements are fully inside this element,
  // so a disjoint element prunes its whole subtree.
  const geo::Mbr element = seq.ElementBounds();
  if (!element.Intersects(window)) return;
  const int l = seq.length();
  if (!HasValueInRange(directory, base, base + subtree_[l] - 1)) return;
  if (window.Contains(element) || *budget == 0) {
    // Fully covered subtree, or out of traversal budget: take it whole.
    out->emplace_back(base, base + subtree_[l] - 1);
    return;
  }
  --*budget;
  out->emplace_back(base, base);
  if (l == r_) return;
  int64_t child_base = base + 1;
  for (int q = 0; q < 4; ++q) {
    CollectRanges(seq.Child(q), child_base, window, directory, budget, out);
    child_base += subtree_[l + 1];
  }
}

std::vector<std::pair<int64_t, int64_t>> Xz2::Ranges(
    const geo::Mbr& window, const std::vector<int64_t>* directory,
    size_t visit_budget) const {
  std::vector<std::pair<int64_t, int64_t>> out;
  QuadSeq root;
  int64_t base = 0;
  size_t budget = visit_budget;
  for (int q = 0; q < 4; ++q) {
    CollectRanges(root.Child(q), base, window, directory, &budget, &out);
    base += subtree_[1];
  }
  // The root overflow element covers the whole space, so it is always a
  // candidate (when it holds data).
  if (HasValueInRange(directory, 4 * subtree_[1], 4 * subtree_[1])) {
    out.emplace_back(4 * subtree_[1], 4 * subtree_[1]);
  }
  MergeRanges(&out);
  return out;
}

void MergeRanges(std::vector<std::pair<int64_t, int64_t>>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end());
  std::vector<std::pair<int64_t, int64_t>> merged;
  merged.push_back((*ranges)[0]);
  for (size_t i = 1; i < ranges->size(); ++i) {
    auto& [lo, hi] = (*ranges)[i];
    if (lo <= merged.back().second + 1) {
      merged.back().second = std::max(merged.back().second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  ranges->swap(merged);
}

}  // namespace index
}  // namespace trass
