// XZ-Ordering (XZ2) — the state-of-the-art baseline index (Böhm et al.,
// used by GeoMesa/TrajMesa/JUST). A trajectory is represented by the
// smallest enlarged element covering its MBR — no position codes — and
// elements are numbered in depth-first order.

#ifndef TRASS_INDEX_XZ2_H_
#define TRASS_INDEX_XZ2_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/mbr.h"
#include "index/quadrant.h"

namespace trass {
namespace index {

class Xz2 {
 public:
  /// `max_resolution` in [1, 30].
  explicit Xz2(int max_resolution);

  int max_resolution() const { return r_; }

  /// The element covering `mbr`.
  QuadSeq Index(const geo::Mbr& mbr) const {
    return SequenceFor(mbr, r_);
  }

  /// Depth-first element number; bijective over non-empty sequences.
  int64_t Encode(const QuadSeq& seq) const;
  QuadSeq Decode(int64_t value) const;

  /// Elements in the subtree rooted at a sequence of length l (including
  /// the element itself): (4^(r-l+1) - 1) / 3.
  int64_t SubtreeSize(int length) const { return subtree_[length]; }

  /// Total elements; encoded values lie in [0, TotalElements()). The last
  /// value is the root overflow element (empty sequence) for trajectories
  /// too large for any level-1 enlarged element.
  int64_t TotalElements() const { return 4 * subtree_[1] + 1; }

  /// Encoded-value ranges of every element whose *enlarged element*
  /// intersects `window` — i.e. every element that may index a trajectory
  /// whose points intersect `window`. Ranges are sorted and merged.
  ///
  /// `directory`, when non-null, is a sorted list of element values that
  /// actually hold data; subtrees without data are skipped. The traversal
  /// visits at most `visit_budget` elements, emitting conservative
  /// whole-subtree ranges beyond that (GeoMesa-style coarsening).
  std::vector<std::pair<int64_t, int64_t>> Ranges(
      const geo::Mbr& window,
      const std::vector<int64_t>* directory = nullptr,
      size_t visit_budget = 65536) const;

 private:
  void CollectRanges(const QuadSeq& seq, int64_t base, const geo::Mbr& window,
                     const std::vector<int64_t>* directory, size_t* budget,
                     std::vector<std::pair<int64_t, int64_t>>* out) const;

  int r_;
  std::vector<int64_t> subtree_;  // subtree_[l], index 1..r_
};

/// Sorts and merges adjacent/overlapping [lo, hi] integer ranges in place.
void MergeRanges(std::vector<std::pair<int64_t, int64_t>>* ranges);

}  // namespace index
}  // namespace trass

#endif  // TRASS_INDEX_XZ2_H_
