// Quadrant sequences: the quad-tree addressing shared by XZ-Ordering and
// XZ*. The unit square [0,1]^2 is split recursively into four quads
// numbered in reversed-Z order (0 = lower-left, 1 = lower-right,
// 2 = upper-left, 3 = upper-right); a sequence of digits addresses a cell,
// and the cell doubled toward the upper-right is its *enlarged element*.

#ifndef TRASS_INDEX_QUADRANT_H_
#define TRASS_INDEX_QUADRANT_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "geo/mbr.h"
#include "geo/point.h"

namespace trass {
namespace index {

/// A quadrant sequence of up to 30 digits, packed 2 bits per digit.
class QuadSeq {
 public:
  QuadSeq() = default;

  static constexpr int kMaxLength = 30;

  int length() const { return length_; }

  /// Digit at position i (0-based from the root).
  int digit(int i) const {
    assert(i >= 0 && i < length_);
    return static_cast<int>((bits_ >> (2 * i)) & 0x3);
  }

  /// Appends a digit, returning the extended sequence.
  QuadSeq Child(int quad) const {
    assert(quad >= 0 && quad < 4 && length_ < kMaxLength);
    QuadSeq result = *this;
    result.bits_ |= static_cast<uint64_t>(quad) << (2 * length_);
    ++result.length_;
    return result;
  }

  /// Origin (lower-left corner) of the addressed cell.
  geo::Point CellOrigin() const {
    double x = 0.0, y = 0.0, w = 1.0;
    for (int i = 0; i < length_; ++i) {
      w *= 0.5;
      const int q = digit(i);
      if (q & 1) x += w;
      if (q & 2) y += w;
    }
    return geo::Point{x, y};
  }

  /// Width of the addressed cell (0.5^length).
  double CellWidth() const {
    double w = 1.0;
    for (int i = 0; i < length_; ++i) w *= 0.5;
    return w;
  }

  /// The enlarged element: the cell doubled toward the upper-right.
  geo::Mbr ElementBounds() const {
    const geo::Point o = CellOrigin();
    const double w = CellWidth();
    return geo::Mbr(o.x, o.y, o.x + 2.0 * w, o.y + 2.0 * w);
  }

  /// Human-readable digits, e.g. "03".
  std::string ToString() const {
    std::string s;
    s.reserve(length_);
    for (int i = 0; i < length_; ++i) {
      s.push_back(static_cast<char>('0' + digit(i)));
    }
    return s;
  }

  /// Parses a digit string (for tests); asserts digits are in [0, 3].
  static QuadSeq FromString(const std::string& digits) {
    QuadSeq s;
    for (char c : digits) {
      assert(c >= '0' && c <= '3');
      s = s.Child(c - '0');
    }
    return s;
  }

  friend bool operator==(const QuadSeq& a, const QuadSeq& b) {
    return a.length_ == b.length_ && a.bits_ == b.bits_;
  }

 private:
  uint64_t bits_ = 0;
  int length_ = 0;
};

/// The quadrant sequence of the smallest enlarged element covering `mbr`
/// (paper Lemmas 1 and 2), capped at `max_resolution`. The sequence
/// addresses the cell containing the MBR's lower-left corner.
QuadSeq SequenceFor(const geo::Mbr& mbr, int max_resolution);

}  // namespace index
}  // namespace trass

#endif  // TRASS_INDEX_QUADRANT_H_
