#include "index/quadrant.h"

#include <algorithm>
#include <cmath>

namespace trass {
namespace index {

namespace {

// Digit walk: the sequence of `length` digits addressing the cell that
// contains point p (clamped into the unit square).
QuadSeq SequenceOfCell(geo::Point p, int length) {
  p.x = std::clamp(p.x, 0.0, std::nextafter(1.0, 0.0));
  p.y = std::clamp(p.y, 0.0, std::nextafter(1.0, 0.0));
  QuadSeq seq;
  double x0 = 0.0, y0 = 0.0, w = 1.0;
  for (int i = 0; i < length; ++i) {
    w *= 0.5;
    int q = 0;
    if (p.x >= x0 + w) {
      q |= 1;
      x0 += w;
    }
    if (p.y >= y0 + w) {
      q |= 2;
      y0 += w;
    }
    seq = seq.Child(q);
  }
  return seq;
}

}  // namespace

QuadSeq SequenceFor(const geo::Mbr& mbr, int max_resolution) {
  max_resolution = std::min(max_resolution, QuadSeq::kMaxLength);
  const double max_dim = std::max(mbr.width(), mbr.height());

  // Lemma 1: the candidate length from the MBR size.
  int l1;
  if (max_dim <= 0.0) {
    l1 = max_resolution;
  } else {
    l1 = static_cast<int>(std::floor(std::log(max_dim) / std::log(0.5)));
    l1 = std::clamp(l1, 0, max_resolution);
  }

  // Lemma 2: try one level deeper; the enlarged element anchored at the
  // lower-left corner's cell must still cover the MBR.
  int length = l1;
  if (l1 < max_resolution) {
    const int l2 = l1 + 1;
    const double w2 = std::pow(0.5, l2);
    const bool x_fits =
        mbr.max_x() <= std::floor(mbr.min_x() / w2) * w2 + 2.0 * w2;
    const bool y_fits =
        mbr.max_y() <= std::floor(mbr.min_y() / w2) * w2 + 2.0 * w2;
    if (x_fits && y_fits) length = l2;
  }
  return SequenceOfCell(mbr.lower_left(), length);
}

}  // namespace index
}  // namespace trass
