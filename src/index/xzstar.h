// XZ* — the paper's fine-grained spatial index (Section IV).
//
// Every enlarged element is split into four sub-quads a (lower-left,
// the anchor cell), b (lower-right), c (upper-left), d (upper-right).
// The set of sub-quads a trajectory's points actually occupy is its
// *position code*; only ten combinations are geometrically possible, so
// an index space is the pair (quadrant sequence, position code). A
// bijective encoding maps index spaces to dense integers that preserve
// the depth-first order of the quad-tree, which keeps query ranges
// contiguous in the key-value store.
//
// Position code -> sub-quad combination (derived in DESIGN.md from the
// paper's I/O-reduction table, which this mapping reproduces exactly):
//   10:{a}  1:{a,b}  2:{a,c}  3:{a,d}  4:{b,c}
//    5:{a,b,c}  6:{a,c,d}  7:{a,b,d}  8:{b,c,d}  9:{a,b,c,d}
// Code 10 can only occur at the maximum resolution.

#ifndef TRASS_INDEX_XZSTAR_H_
#define TRASS_INDEX_XZSTAR_H_

#include <cstdint>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"
#include "index/quadrant.h"

namespace trass {
namespace index {

/// Sub-quad identifiers; also bit positions in an occupancy mask.
enum SubQuad : int { kQuadA = 0, kQuadB = 1, kQuadC = 2, kQuadD = 3 };

/// Maps an occupancy mask (bit i set = sub-quad i occupied) to its
/// position code in [1, 10], or 0 when the mask is not one of the ten
/// feasible combinations.
int PositionCodeFromMask(unsigned mask);

/// Inverse of PositionCodeFromMask; `code` must be in [1, 10].
unsigned MaskFromPositionCode(int code);

class XzStar {
 public:
  /// Deepest resolution whose encoded values still fit in int64
  /// (TotalIndexSpaces() ~ 13 * 4^r must stay below 2^63).
  static constexpr int kMaxResolution = 29;

  /// `max_resolution` in [1, kMaxResolution]; the paper's default is 16.
  explicit XzStar(int max_resolution);

  struct IndexSpace {
    QuadSeq seq;
    int pos = 0;  // position code in [1, 10]

    friend bool operator==(const IndexSpace& a, const IndexSpace& b) {
      return a.seq == b.seq && a.pos == b.pos;
    }
  };

  int max_resolution() const { return r_; }

  /// Indexing (Section IV-B): the index space covering `points`.
  /// Requires at least one point.
  IndexSpace Index(const std::vector<geo::Point>& points) const;

  /// Encoding (Section IV-C). The paper's Definition 5 contains a typo;
  /// this implements the corrected bijection
  ///   V(s,p) = sum_i q_i * N_is(i) + 9*(|s|-1) + (p-1),
  /// which matches the paper's own worked examples (V('03',2)=40).
  int64_t Encode(const IndexSpace& space) const;

  /// Inverse of Encode(); `value` must be in [0, TotalIndexSpaces()).
  IndexSpace Decode(int64_t value) const;

  /// N_is(l) (Lemma 4): index spaces under one sequence of length l,
  /// including that element's own codes. l in [1, max_resolution].
  int64_t NumIndexSpaces(int length) const { return n_is_[length]; }

  /// Total index spaces; encoded values lie in [0, TotalIndexSpaces()).
  /// The last 10 values form the root overflow bucket: trajectories so
  /// large that no level-1 enlarged element covers them are indexed under
  /// the empty sequence (element [0,2]^2), appended after the four
  /// regular subtrees so the paper's numbering (Figure 4a) is preserved.
  int64_t TotalIndexSpaces() const { return 4 * n_is_[1] + 10; }

  /// First encoded value of element `seq`'s own position codes.
  int64_t ElementBaseValue(const QuadSeq& seq) const;

  // ---- geometry ----

  /// Bounds of one sub-quad of the enlarged element of `seq`.
  static geo::Mbr SubQuadBounds(const QuadSeq& seq, int quad);

  /// Rectangles whose union is the index space of (seq, pos).
  static std::vector<geo::Mbr> IndexSpaceRects(const QuadSeq& seq, int pos);

 private:
  int r_;
  std::vector<int64_t> n_is_;  // n_is_[l] = N_is(l), index 1..r_
};

}  // namespace index
}  // namespace trass

#endif  // TRASS_INDEX_XZSTAR_H_
