// Per-trajectory fingerprints (Geodabs direction): a shingled minhash
// signature over discretized segments plus a conservatively quantized
// MBR, small enough to keep one per stored row in RAM.
//
// The two halves serve different roles in the filter tier:
//   * the quantized MBR is a *proof* device — it contains the exact
//     trajectory, so MinDistToRegion(query_mbr, row_mbr) > eps soundly
//     skips the row's bytes without reading them (threshold path);
//   * the minhash signature is an *ordering* device — estimated sketch
//     similarity ranks candidate rows so the top-k refiner sees likely
//     winners first and tightens its k-th-distance bound sooner. It
//     never decides membership, so exact results are unaffected.
//
// Shingles are consecutive pairs of grid cells at `grid` resolution (a
// degenerate single-point trajectory contributes the cell paired with
// itself); each of `hashes` independent hash functions keeps the minimum
// shingle hash, masked to `bits` bits. Matching signature slots estimate
// the Jaccard similarity of the shingle sets.

#ifndef TRASS_FILTER_FINGERPRINT_H_
#define TRASS_FILTER_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace trass {
namespace filter {

struct FingerprintParams {
  int hashes = 16;   // signature slots (minhash functions)
  int bits = 32;     // bits kept per slot, in [4, 32]
  int grid = 1024;   // discretization grid per axis for shingling
};

/// MBR quantized outward to float32 — always contains the exact
/// double-precision box, so distance lower bounds computed against it
/// stay sound.
struct QuantizedMbr {
  float min_x = 0.0f, min_y = 0.0f, max_x = 0.0f, max_y = 0.0f;

  geo::Mbr ToMbr() const {
    return geo::Mbr(min_x, min_y, max_x, max_y);
  }
};

QuantizedMbr QuantizeOutward(const geo::Mbr& mbr);

/// Minhash signature of `points` under `params`; result has
/// params.hashes entries. Deterministic across platforms and runs.
std::vector<uint32_t> MinhashSignature(const std::vector<geo::Point>& points,
                                       const FingerprintParams& params);

/// Fraction of matching slots between two signatures of equal length —
/// the minhash estimate of shingle-set Jaccard similarity. Returns 0
/// for mismatched or empty signatures.
double EstimateSimilarity(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b);
double EstimateSimilarity(const uint32_t* a, const uint32_t* b, size_t n);

}  // namespace filter
}  // namespace trass

#endif  // TRASS_FILTER_FINGERPRINT_H_
