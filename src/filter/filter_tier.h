// Memory-resident filter tier (ROADMAP: "succinct filter tier before
// the LSM"): consulted between GlobalPruner's candidate ranges and the
// RegionStore scans, so index values that are empty or provably too far
// from the query are discarded without touching the KV store.
//
// Two layers, both RAM-only and rebuilt from the store at open:
//
//   * ElementSummaryIndex — the sorted universe of XZ*-encoded index
//     values actually present, Elias-Fano encoded (see elias_fano.h for
//     the representation choice; DESIGN.md §16 for the justification),
//     with a parallel per-element trajectory count and aggregate MBR
//     (float32, rounded outward so bounds stay conservative), plus a
//     segment tree of MBRs for O(log n) union boxes over value ranges
//     (whole-subtree pruning in the best-first top-k traversal).
//
//   * TrajectoryFingerprints — optional per-row records (tid, quantized
//     MBR, shingled-minhash signature). The per-row MBR soundly proves
//     misses (skip the row when the Lemma 9 edge bound exceeds eps);
//     the minhash signature only *orders* candidates for the top-k
//     refiner so its k-th-distance bound tightens sooner. Neither ever
//     changes exact results.
//
// Concurrency contract (mirrors the store's value directory): mutations
// (AddRows / RebuildFrom / Clear) are serialized by the caller's commit
// path; snapshot() lazily publishes an immutable FilterSnapshot that
// queries share read-only. A snapshot taken after the ingest watermark
// covers a row is guaranteed to include it, because the store publishes
// filter rows before advancing the watermark (rows → stats → filter →
// watermark).
//
// Soundness rule for lookups: the tier may only be consulted for values
// the snapshot is authoritative over. Every probe treats "absent" as
// "empty element" — which is exactly right because the snapshot is a
// complete image of the store as of some watermark, and the caller
// intersects with the matching directory snapshot.

#ifndef TRASS_FILTER_FILTER_TIER_H_
#define TRASS_FILTER_FILTER_TIER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "filter/elias_fano.h"
#include "filter/fingerprint.h"
#include "geo/mbr.h"
#include "util/query_context.h"
#include "util/status.h"

namespace trass {
namespace filter {

/// Knobs mirrored from TrassOptions::filter_tier (redeclared here so
/// the filter library does not depend on core).
struct FilterTierOptions {
  bool enable = false;
  /// Keep per-row fingerprint records (MBR + minhash signature).
  bool fingerprints = true;
  FingerprintParams fingerprint;
  /// Rebuild and cross-validate the tier during ScrubReplicas.
  bool rebuild_on_scrub = true;
};

/// One stored row as the ingest/rebuild paths describe it to the tier.
struct FilterRowData {
  int64_t index_value = 0;
  int64_t tid = 0;
  geo::Mbr mbr;
  std::vector<uint32_t> fingerprint;  // empty when fingerprints are off
};

/// Per-query probe counters, folded into QueryMetrics by the store.
struct ProbeStats {
  uint64_t elements_pruned = 0;   // empty candidate values skipped
  uint64_t mbr_pruned = 0;        // present values killed by the MBR bound
  uint64_t fingerprint_skips = 0; // rows skipped via per-row records
};

/// Per-row fingerprint record; the signature lives in a parallel flat
/// array (see FilterSnapshot::RowSignature).
struct RowRecord {
  int64_t tid = 0;
  QuantizedMbr mbr;
};

enum class ProbeResult {
  kAbsent,            // value holds no trajectories — skip, no scan
  kMbrPruned,         // aggregate-MBR lower bound exceeds eps — skip
  kFingerprintPruned, // every row individually proven a miss — skip
  kKeep,              // must be scanned
};

/// Immutable, shared-across-queries image of the tier. All probe
/// methods are const and thread-safe; the ones that walk unbounded
/// candidate sets poll `control` every kControlCheckStride visits
/// (same stride as GlobalPruner) so deadlines/cancels are observed.
class FilterSnapshot {
 public:
  /// Elements visited between QueryContext polls.
  static constexpr size_t kControlCheckStride = 64;

  size_t element_count() const { return values_.size(); }
  size_t row_count() const { return rows_.size(); }
  bool has_fingerprints() const { return has_fingerprints_; }
  const FingerprintParams& fingerprint_params() const { return fp_params_; }

  /// Heap bytes held by this snapshot (the filter_memory_bytes gauge).
  size_t memory_bytes() const { return memory_bytes_; }

  /// Classifies a single candidate index value against a query with
  /// threshold `eps` (for top-k, pass the current k-th-distance bound —
  /// it only tightens, so a skip decided now stays valid). Skips are
  /// decided by strict `bound > eps`, matching the refiner contract.
  /// `check_rows` additionally tries the per-row proof (meaningful only
  /// when the aggregate bound passes but every row is individually far).
  ProbeResult ProbeValue(int64_t value, const geo::Mbr& query_mbr, double eps,
                         bool check_rows, ProbeStats* stats) const;

  /// Window variant (range query): a value survives only if its
  /// aggregate MBR intersects `window`.
  ProbeResult ProbeValueWindow(int64_t value, const geo::Mbr& window,
                               ProbeStats* stats) const;

  /// Filters GlobalPruner candidate ranges for the threshold path:
  /// emits the sub-ranges that still need a store scan. Present values
  /// killed by the MBR (or per-row) proof split the range — that is
  /// what converts a prune into bytes not read; absent values between
  /// survivors never split (scanning over missing keys is free), they
  /// only shrink the ends, mirroring IntersectWithDirectory.
  Status ProbeRanges(const std::vector<std::pair<int64_t, int64_t>>& ranges,
                     const geo::Mbr& query_mbr, double eps, bool check_rows,
                     const QueryContext* control,
                     std::vector<std::pair<int64_t, int64_t>>* surviving,
                     ProbeStats* stats) const;

  /// Window variant of ProbeRanges for the range-query path.
  Status ProbeRangesWindow(
      const std::vector<std::pair<int64_t, int64_t>>& ranges,
      const geo::Mbr& window, const QueryContext* control,
      std::vector<std::pair<int64_t, int64_t>>* surviving,
      ProbeStats* stats) const;

  /// Whole-subtree test for the best-first top-k traversal: kAbsent when
  /// [lo, hi] holds no present value, kMbrPruned when the union MBR of
  /// the present values (segment tree, O(log n)) has edge bound > eps.
  /// The union box only weakens the bound, so pruning on it is sound.
  ProbeResult ProbeSubtree(int64_t lo, int64_t hi, const geo::Mbr& query_mbr,
                           double eps, ProbeStats* stats) const;

  /// Present values in the inclusive value range.
  size_t CountPresentInRange(int64_t lo, int64_t hi) const {
    return values_.CountInRange(lo, hi);
  }

  /// Trajectory count for one value (0 when absent).
  uint32_t CountForValue(int64_t value) const;

  /// Per-row records for one value (nullptr / 0 when absent or when
  /// fingerprints are disabled). Records are sorted by tid.
  const RowRecord* RowsForValue(int64_t value, size_t* count) const;

  /// Minhash signature of the row record at `rows` + i (as returned by
  /// RowsForValue); fingerprint_params().hashes entries.
  const uint32_t* RowSignature(const RowRecord* row) const;

 private:
  friend class FilterTier;

  /// Index of `value` in the sorted universe, or npos when absent.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t Find(int64_t value) const;

  geo::Mbr RangeUnionMbr(size_t first, size_t last) const;

  EliasFano values_;
  std::vector<uint32_t> counts_;     // per element, parallel to values_
  std::vector<QuantizedMbr> mbrs_;   // aggregate, outward-quantized
  // Segment tree over mbrs_: seg_[base_ + i] is leaf i, parents are
  // unions; empty slots have min_x > max_x.
  std::vector<QuantizedMbr> seg_;
  size_t seg_base_ = 0;
  // Fingerprint groups: rows of element i are rows_[row_offsets_[i] ..
  // row_offsets_[i + 1]); signatures are fp_params_.hashes uint32s per
  // row in sigs_, same order.
  std::vector<uint64_t> row_offsets_;
  std::vector<RowRecord> rows_;
  std::vector<uint32_t> sigs_;
  bool has_fingerprints_ = false;
  FingerprintParams fp_params_;
  size_t memory_bytes_ = 0;
};

/// Mutable owner: accumulates per-element state on the ingest path and
/// lazily publishes immutable snapshots, following the store's value-
/// directory pattern.
class FilterTier {
 public:
  explicit FilterTier(const FilterTierOptions& options)
      : options_(options) {}

  const FilterTierOptions& options() const { return options_; }

  /// Adds (or idempotently re-adds) committed rows. A (value, tid) pair
  /// seen again replaces the previous record, so crash-replayed or
  /// re-applied batches cannot inflate counts.
  void AddRows(const std::vector<FilterRowData>& rows);

  /// Replaces all state from a full store image (Open / rebuild / scrub).
  void RebuildFrom(std::vector<FilterRowData> rows);

  /// Compares the current state against a freshly scanned store image
  /// and then adopts the image. Returns the number of disagreeing
  /// elements (missing, extra, or count/row mismatch) — the scrub
  /// validation signal.
  uint64_t ValidateAndRebuild(std::vector<FilterRowData> rows);

  void Clear();

  /// Current immutable image; rebuilt here (under the internal mutex)
  /// when mutations happened since the last publish.
  std::shared_ptr<const FilterSnapshot> snapshot() const;

  /// Convenience: memory held by the published snapshot.
  size_t snapshot_memory_bytes() const;

 private:
  struct RowInfo {
    int64_t tid = 0;
    QuantizedMbr mbr;
    std::vector<uint32_t> sig;
  };
  struct Accum {
    geo::Mbr mbr;
    std::vector<RowInfo> rows;  // sorted by tid, unique
  };

  void AddRowLocked(const FilterRowData& row);
  std::shared_ptr<const FilterSnapshot> BuildSnapshotLocked() const;

  const FilterTierOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<int64_t, Accum> accum_;
  mutable bool dirty_ = false;
  mutable std::shared_ptr<const FilterSnapshot> snapshot_;
};

}  // namespace filter
}  // namespace trass

#endif  // TRASS_FILTER_FILTER_TIER_H_
