// Elias-Fano encoding of a monotone integer sequence — the succinct
// backbone of the memory-resident filter tier (tSTAT direction): the
// sorted universe of XZ*-encoded index values present in the store,
// stored in ~n*(2 + log2(U/n)) bits instead of 64 per value, while
// keeping O(1) random access and O(log n) predecessor search.
//
// Layout (classic): with n values over universe [0, U), the low
// l = floor(log2(U/n)) bits of each value are packed verbatim; the high
// bits are unary-coded into a bitvector where the i-th set bit sits at
// position high(v_i) + i. Access(i) is select1(i) on that bitvector
// (accelerated by sampling every kSelectSample-th set bit) minus i,
// recombined with the packed low bits. LowerBound is a binary search
// over Access.
//
// The sequence is immutable after Build — it lives inside a published
// FilterSnapshot and is shared read-only across queries.

#ifndef TRASS_FILTER_ELIAS_FANO_H_
#define TRASS_FILTER_ELIAS_FANO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trass {
namespace filter {

class EliasFano {
 public:
  EliasFano() = default;

  /// Builds from a strictly increasing sequence of non-negative values.
  /// An empty input yields an empty sequence.
  void Build(const std::vector<int64_t>& sorted_unique);

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// The i-th smallest value; i must be < size().
  int64_t Get(size_t i) const;

  /// Index of the first value >= x (== size() when all values are
  /// smaller) — the rank/select primitive range probes are built from.
  size_t LowerBound(int64_t x) const;

  /// Present values in the inclusive range [lo, hi].
  size_t CountInRange(int64_t lo, int64_t hi) const;

  /// Heap footprint of the encoded form (the memory-accounting input).
  size_t memory_bytes() const;

 private:
  static constexpr size_t kSelectSample = 64;  // set bits per sample

  uint64_t ReadLow(size_t i) const;

  size_t n_ = 0;
  int low_bits_ = 0;
  std::vector<uint64_t> low_;     // packed low_bits_ per value
  std::vector<uint64_t> high_;    // unary-coded high parts
  std::vector<uint32_t> select_;  // bit position of every 64th set bit
};

}  // namespace filter
}  // namespace trass

#endif  // TRASS_FILTER_ELIAS_FANO_H_
