#include "filter/filter_tier.h"

#include <algorithm>
#include <limits>

namespace trass {
namespace filter {

namespace {

QuantizedMbr EmptyQuantized() {
  QuantizedMbr q;
  q.min_x = q.min_y = std::numeric_limits<float>::infinity();
  q.max_x = q.max_y = -std::numeric_limits<float>::infinity();
  return q;
}

void UnionInto(QuantizedMbr* into, const QuantizedMbr& from) {
  into->min_x = std::min(into->min_x, from.min_x);
  into->min_y = std::min(into->min_y, from.min_y);
  into->max_x = std::max(into->max_x, from.max_x);
  into->max_y = std::max(into->max_y, from.max_y);
}

}  // namespace

size_t FilterSnapshot::Find(int64_t value) const {
  const size_t i = values_.LowerBound(value);
  if (i >= values_.size() || values_.Get(i) != value) return kNpos;
  return i;
}

uint32_t FilterSnapshot::CountForValue(int64_t value) const {
  const size_t i = Find(value);
  return i == kNpos ? 0 : counts_[i];
}

const RowRecord* FilterSnapshot::RowsForValue(int64_t value,
                                              size_t* count) const {
  *count = 0;
  if (!has_fingerprints_) return nullptr;
  const size_t i = Find(value);
  if (i == kNpos) return nullptr;
  const uint64_t begin = row_offsets_[i];
  *count = static_cast<size_t>(row_offsets_[i + 1] - begin);
  return *count == 0 ? nullptr : &rows_[static_cast<size_t>(begin)];
}

const uint32_t* FilterSnapshot::RowSignature(const RowRecord* row) const {
  const size_t index = static_cast<size_t>(row - rows_.data());
  return &sigs_[index * static_cast<size_t>(fp_params_.hashes)];
}

geo::Mbr FilterSnapshot::RangeUnionMbr(size_t first, size_t last) const {
  QuantizedMbr acc = EmptyQuantized();
  size_t l = first + seg_base_;
  size_t r = last + seg_base_ + 1;
  while (l < r) {
    if (l & 1) UnionInto(&acc, seg_[l++]);
    if (r & 1) UnionInto(&acc, seg_[--r]);
    l >>= 1;
    r >>= 1;
  }
  return acc.ToMbr();
}

ProbeResult FilterSnapshot::ProbeValue(int64_t value,
                                       const geo::Mbr& query_mbr, double eps,
                                       bool check_rows,
                                       ProbeStats* stats) const {
  const size_t i = Find(value);
  if (i == kNpos) {
    if (stats != nullptr) ++stats->elements_pruned;
    return ProbeResult::kAbsent;
  }
  if (geo::MinEdgeToRegionDistance(query_mbr, mbrs_[i].ToMbr()) > eps) {
    if (stats != nullptr) ++stats->mbr_pruned;
    return ProbeResult::kMbrPruned;
  }
  if (check_rows && has_fingerprints_) {
    const uint64_t begin = row_offsets_[i];
    const uint64_t end = row_offsets_[i + 1];
    bool all_far = end > begin;
    for (uint64_t r = begin; r < end; ++r) {
      if (geo::MinEdgeToRegionDistance(
              query_mbr, rows_[static_cast<size_t>(r)].mbr.ToMbr()) <= eps) {
        all_far = false;
        break;
      }
    }
    if (all_far) {
      if (stats != nullptr) stats->fingerprint_skips += end - begin;
      return ProbeResult::kFingerprintPruned;
    }
  }
  return ProbeResult::kKeep;
}

ProbeResult FilterSnapshot::ProbeValueWindow(int64_t value,
                                             const geo::Mbr& window,
                                             ProbeStats* stats) const {
  const size_t i = Find(value);
  if (i == kNpos) {
    if (stats != nullptr) ++stats->elements_pruned;
    return ProbeResult::kAbsent;
  }
  if (!mbrs_[i].ToMbr().Intersects(window)) {
    if (stats != nullptr) ++stats->mbr_pruned;
    return ProbeResult::kMbrPruned;
  }
  return ProbeResult::kKeep;
}

ProbeResult FilterSnapshot::ProbeSubtree(int64_t lo, int64_t hi,
                                         const geo::Mbr& query_mbr, double eps,
                                         ProbeStats* stats) const {
  const size_t i0 = values_.LowerBound(lo);
  const size_t i1 = values_.LowerBound(hi + 1);
  if (i0 >= i1) {
    if (stats != nullptr) ++stats->elements_pruned;
    return ProbeResult::kAbsent;
  }
  // The union box can only be closer to the query than each member box,
  // so a bound computed on it under-estimates — pruning on it is sound.
  if (geo::MinEdgeToRegionDistance(query_mbr, RangeUnionMbr(i0, i1 - 1)) >
      eps) {
    if (stats != nullptr) ++stats->mbr_pruned;
    return ProbeResult::kMbrPruned;
  }
  return ProbeResult::kKeep;
}

namespace {

/// Shared range-walk for ProbeRanges / ProbeRangesWindow. `keep` decides
/// per present element index; it may charge extra visits (row walks)
/// through `visited` so control polling covers them too.
template <typename KeepFn>
Status WalkRanges(const EliasFano& values,
                  const std::vector<std::pair<int64_t, int64_t>>& ranges,
                  const QueryContext* control, KeepFn keep, ProbeStats* stats,
                  std::vector<std::pair<int64_t, int64_t>>* surviving) {
  surviving->clear();
  size_t visited = 0;
  for (const auto& range : ranges) {
    const size_t i0 = values.LowerBound(range.first);
    const size_t i1 = values.LowerBound(range.second + 1);
    // Every candidate value with no data is skipped without any store
    // contact — the summary index's basic dividend.
    stats->elements_pruned +=
        static_cast<uint64_t>(range.second - range.first + 1) - (i1 - i0);
    // Survivors are emitted as maximal runs of kept present values: a
    // *pruned* present value splits the run (that split is what turns
    // the prune into bytes not read), while absent values between kept
    // ones never split — scanning across missing keys costs nothing, so
    // splitting there would only multiply scan setup. Runs collapse to
    // [first-kept, last-kept], like IntersectWithDirectory.
    bool run_open = false;
    int64_t run_first = 0;
    int64_t run_last = 0;
    for (size_t i = i0; i < i1; ++i) {
      if (++visited % FilterSnapshot::kControlCheckStride == 0 &&
          control != nullptr) {
        Status control_status = control->Check();
        if (!control_status.ok()) return control_status;
      }
      const int64_t v = values.Get(i);
      if (keep(i, v, &visited)) {
        if (!run_open) {
          run_open = true;
          run_first = v;
        }
        run_last = v;
      } else if (run_open) {
        surviving->emplace_back(run_first, run_last);
        run_open = false;
      }
    }
    if (run_open) surviving->emplace_back(run_first, run_last);
  }
  return Status::OK();
}

}  // namespace

Status FilterSnapshot::ProbeRanges(
    const std::vector<std::pair<int64_t, int64_t>>& ranges,
    const geo::Mbr& query_mbr, double eps, bool check_rows,
    const QueryContext* control,
    std::vector<std::pair<int64_t, int64_t>>* surviving,
    ProbeStats* stats) const {
  const bool rows = check_rows && has_fingerprints_;
  auto keep = [&](size_t i, int64_t /*value*/, size_t* visited) {
    if (geo::MinEdgeToRegionDistance(query_mbr, mbrs_[i].ToMbr()) > eps) {
      ++stats->mbr_pruned;
      return false;
    }
    if (rows) {
      const uint64_t begin = row_offsets_[i];
      const uint64_t end = row_offsets_[i + 1];
      bool all_far = end > begin;
      for (uint64_t r = begin; r < end; ++r) {
        ++*visited;
        if (geo::MinEdgeToRegionDistance(
                query_mbr, rows_[static_cast<size_t>(r)].mbr.ToMbr()) <= eps) {
          all_far = false;
          break;
        }
      }
      if (all_far) {
        stats->fingerprint_skips += end - begin;
        return false;
      }
    }
    return true;
  };
  return WalkRanges(values_, ranges, control, keep, stats, surviving);
}

Status FilterSnapshot::ProbeRangesWindow(
    const std::vector<std::pair<int64_t, int64_t>>& ranges,
    const geo::Mbr& window, const QueryContext* control,
    std::vector<std::pair<int64_t, int64_t>>* surviving,
    ProbeStats* stats) const {
  auto keep = [&](size_t i, int64_t /*value*/, size_t* /*visited*/) {
    if (!mbrs_[i].ToMbr().Intersects(window)) {
      ++stats->mbr_pruned;
      return false;
    }
    return true;
  };
  return WalkRanges(values_, ranges, control, keep, stats, surviving);
}

void FilterTier::AddRowLocked(const FilterRowData& row) {
  Accum& accum = accum_[row.index_value];
  // Aggregate grows monotonically; a replaced row keeps the old extent
  // in the union, which can only loosen the bound — still sound.
  accum.mbr.Extend(row.mbr);
  RowInfo info;
  info.tid = row.tid;
  info.mbr = QuantizeOutward(row.mbr);
  if (options_.fingerprints) info.sig = row.fingerprint;
  auto it = std::lower_bound(
      accum.rows.begin(), accum.rows.end(), row.tid,
      [](const RowInfo& a, int64_t tid) { return a.tid < tid; });
  if (it != accum.rows.end() && it->tid == row.tid) {
    *it = std::move(info);  // idempotent re-add (crash replay, handoff)
  } else {
    accum.rows.insert(it, std::move(info));
  }
}

void FilterTier::AddRows(const std::vector<FilterRowData>& rows) {
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const FilterRowData& row : rows) AddRowLocked(row);
  dirty_ = true;
}

void FilterTier::RebuildFrom(std::vector<FilterRowData> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  accum_.clear();
  for (const FilterRowData& row : rows) AddRowLocked(row);
  dirty_ = true;
}

uint64_t FilterTier::ValidateAndRebuild(std::vector<FilterRowData> rows) {
  // Fresh image: value -> sorted unique tids.
  std::unordered_map<int64_t, std::vector<int64_t>> fresh;
  for (const FilterRowData& row : rows) {
    fresh[row.index_value].push_back(row.tid);
  }
  for (auto& entry : fresh) {
    std::sort(entry.second.begin(), entry.second.end());
    entry.second.erase(
        std::unique(entry.second.begin(), entry.second.end()),
        entry.second.end());
  }

  uint64_t mismatches = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : fresh) {
      auto it = accum_.find(entry.first);
      if (it == accum_.end()) {
        ++mismatches;  // store has data the tier claims is empty
        continue;
      }
      const std::vector<RowInfo>& have = it->second.rows;
      if (have.size() != entry.second.size()) {
        ++mismatches;
        continue;
      }
      for (size_t i = 0; i < have.size(); ++i) {
        if (have[i].tid != entry.second[i]) {
          ++mismatches;
          break;
        }
      }
    }
    for (const auto& entry : accum_) {
      if (fresh.find(entry.first) == fresh.end()) ++mismatches;
    }
    accum_.clear();
    for (const FilterRowData& row : rows) AddRowLocked(row);
    dirty_ = true;
  }
  return mismatches;
}

void FilterTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  accum_.clear();
  dirty_ = true;
}

std::shared_ptr<const FilterSnapshot> FilterTier::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirty_ || snapshot_ == nullptr) {
    snapshot_ = BuildSnapshotLocked();
    dirty_ = false;
  }
  return snapshot_;
}

size_t FilterTier::snapshot_memory_bytes() const {
  return snapshot()->memory_bytes();
}

std::shared_ptr<const FilterSnapshot> FilterTier::BuildSnapshotLocked()
    const {
  auto snap = std::make_shared<FilterSnapshot>();
  snap->has_fingerprints_ = options_.fingerprints;
  snap->fp_params_ = options_.fingerprint;

  std::vector<int64_t> values;
  values.reserve(accum_.size());
  for (const auto& entry : accum_) values.push_back(entry.first);
  std::sort(values.begin(), values.end());

  const size_t n = values.size();
  snap->values_.Build(values);
  snap->counts_.resize(n);
  snap->mbrs_.resize(n);
  if (options_.fingerprints) snap->row_offsets_.assign(n + 1, 0);

  size_t base = 1;
  while (base < n) base <<= 1;
  if (n == 0) base = 0;
  snap->seg_base_ = base;
  snap->seg_.assign(base * 2, EmptyQuantized());

  const size_t hashes = static_cast<size_t>(
      std::max(1, options_.fingerprint.hashes));
  for (size_t i = 0; i < n; ++i) {
    const Accum& accum = accum_.at(values[i]);
    snap->counts_[i] = static_cast<uint32_t>(accum.rows.size());
    snap->mbrs_[i] = QuantizeOutward(accum.mbr);
    if (base != 0) snap->seg_[base + i] = snap->mbrs_[i];
    if (options_.fingerprints) {
      snap->row_offsets_[i + 1] =
          snap->row_offsets_[i] + accum.rows.size();
      for (const RowInfo& row : accum.rows) {
        RowRecord record;
        record.tid = row.tid;
        record.mbr = row.mbr;
        snap->rows_.push_back(record);
        // A malformed signature (wrong length) is padded with ~0u, which
        // only ever matches other padding — it cannot fake similarity
        // with a real slot.
        for (size_t h = 0; h < hashes; ++h) {
          snap->sigs_.push_back(h < row.sig.size() ? row.sig[h]
                                                   : ~uint32_t{0});
        }
      }
    }
  }
  for (size_t i = base; i-- > 1;) {
    QuantizedMbr merged = snap->seg_[i * 2];
    UnionInto(&merged, snap->seg_[i * 2 + 1]);
    snap->seg_[i] = merged;
  }

  snap->memory_bytes_ =
      snap->values_.memory_bytes() +
      snap->counts_.capacity() * sizeof(uint32_t) +
      snap->mbrs_.capacity() * sizeof(QuantizedMbr) +
      snap->seg_.capacity() * sizeof(QuantizedMbr) +
      snap->row_offsets_.capacity() * sizeof(uint64_t) +
      snap->rows_.capacity() * sizeof(RowRecord) +
      snap->sigs_.capacity() * sizeof(uint32_t);
  return snap;
}

}  // namespace filter
}  // namespace trass
