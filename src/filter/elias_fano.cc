#include "filter/elias_fano.h"

#include <cassert>

namespace trass {
namespace filter {

namespace {

inline int FloorLog2(uint64_t x) {
  int l = -1;
  while (x != 0) {
    x >>= 1;
    ++l;
  }
  return l;
}

inline int PopCount(uint64_t x) { return __builtin_popcountll(x); }

/// Bit position of the k-th (0-based) set bit of `word`; k must be less
/// than popcount(word).
inline int SelectInWord(uint64_t word, int k) {
  for (int bit = 0;; ++bit) {
    if (word & (uint64_t{1} << bit)) {
      if (k-- == 0) return bit;
    }
  }
}

}  // namespace

void EliasFano::Build(const std::vector<int64_t>& sorted_unique) {
  n_ = sorted_unique.size();
  low_bits_ = 0;
  low_.clear();
  high_.clear();
  select_.clear();
  if (n_ == 0) return;

  const uint64_t universe = static_cast<uint64_t>(sorted_unique.back()) + 1;
  // floor(log2(U/n)) low bits puts the high-part range in [n, 2n), which
  // bounds the unary bitvector at ~3n bits.
  const uint64_t per = universe / n_;
  low_bits_ = per >= 2 ? FloorLog2(per) : 0;

  const size_t low_words = (n_ * static_cast<size_t>(low_bits_) + 63) / 64;
  low_.assign(low_words + 1, 0);  // +1: two-word reads never run off
  const size_t high_bits =
      (static_cast<uint64_t>(sorted_unique.back()) >> low_bits_) + n_ + 1;
  high_.assign((high_bits + 63) / 64, 0);
  select_.reserve(n_ / kSelectSample + 1);

  const uint64_t low_mask =
      low_bits_ == 64 ? ~uint64_t{0} : (uint64_t{1} << low_bits_) - 1;
  for (size_t i = 0; i < n_; ++i) {
    const uint64_t v = static_cast<uint64_t>(sorted_unique[i]);
    if (low_bits_ > 0) {
      const uint64_t lo = v & low_mask;
      const size_t bit = i * static_cast<size_t>(low_bits_);
      low_[bit / 64] |= lo << (bit % 64);
      if (bit % 64 + low_bits_ > 64) {
        low_[bit / 64 + 1] |= lo >> (64 - bit % 64);
      }
    }
    const size_t pos = (v >> low_bits_) + i;
    high_[pos / 64] |= uint64_t{1} << (pos % 64);
    if (i % kSelectSample == 0) {
      select_.push_back(static_cast<uint32_t>(pos));
    }
  }
}

uint64_t EliasFano::ReadLow(size_t i) const {
  if (low_bits_ == 0) return 0;
  const size_t bit = i * static_cast<size_t>(low_bits_);
  const uint64_t mask = (uint64_t{1} << low_bits_) - 1;
  uint64_t word = low_[bit / 64] >> (bit % 64);
  if (bit % 64 + low_bits_ > 64) {
    word |= low_[bit / 64 + 1] << (64 - bit % 64);
  }
  return word & mask;
}

int64_t EliasFano::Get(size_t i) const {
  assert(i < n_);
  // Select the i-th set bit, starting from the nearest sample.
  size_t rank = (i / kSelectSample) * kSelectSample;
  size_t word_index = select_[i / kSelectSample] / 64;
  uint64_t word = high_[word_index] &
                  (~uint64_t{0} << (select_[i / kSelectSample] % 64));
  for (;;) {
    const int count = PopCount(word);
    if (rank + static_cast<size_t>(count) > i) {
      const int bit = SelectInWord(word, static_cast<int>(i - rank));
      const uint64_t pos = word_index * 64 + static_cast<size_t>(bit);
      const uint64_t high_part = pos - i;
      return static_cast<int64_t>((high_part << low_bits_) | ReadLow(i));
    }
    rank += static_cast<size_t>(count);
    word = high_[++word_index];
  }
}

size_t EliasFano::LowerBound(int64_t x) const {
  size_t lo = 0;
  size_t hi = n_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Get(mid) < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t EliasFano::CountInRange(int64_t lo, int64_t hi) const {
  if (n_ == 0 || hi < lo) return 0;
  return LowerBound(hi + 1) - LowerBound(lo);
}

size_t EliasFano::memory_bytes() const {
  return low_.capacity() * sizeof(uint64_t) +
         high_.capacity() * sizeof(uint64_t) +
         select_.capacity() * sizeof(uint32_t);
}

}  // namespace filter
}  // namespace trass
