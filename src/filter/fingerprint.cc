#include "filter/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trass {
namespace filter {

namespace {

/// splitmix64 finalizer — fast, well-mixed, and identical everywhere.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint32_t CellOf(double coord, int grid) {
  // Coordinates are nominally in [0,1]; clamp so slightly-out-of-range
  // inputs still land in a valid cell instead of UB.
  double scaled = coord * grid;
  if (scaled < 0.0) scaled = 0.0;
  if (scaled > grid - 1) scaled = grid - 1;
  return static_cast<uint32_t>(scaled);
}

}  // namespace

QuantizedMbr QuantizeOutward(const geo::Mbr& mbr) {
  QuantizedMbr q;
  if (mbr.IsEmpty()) return q;
  // float's round-to-nearest may shrink the box; nudge any inward-rounded
  // edge one ulp outward so the quantized box always contains the exact one.
  q.min_x = static_cast<float>(mbr.min_x());
  if (static_cast<double>(q.min_x) > mbr.min_x()) {
    q.min_x = std::nextafterf(q.min_x, -std::numeric_limits<float>::infinity());
  }
  q.min_y = static_cast<float>(mbr.min_y());
  if (static_cast<double>(q.min_y) > mbr.min_y()) {
    q.min_y = std::nextafterf(q.min_y, -std::numeric_limits<float>::infinity());
  }
  q.max_x = static_cast<float>(mbr.max_x());
  if (static_cast<double>(q.max_x) < mbr.max_x()) {
    q.max_x = std::nextafterf(q.max_x, std::numeric_limits<float>::infinity());
  }
  q.max_y = static_cast<float>(mbr.max_y());
  if (static_cast<double>(q.max_y) < mbr.max_y()) {
    q.max_y = std::nextafterf(q.max_y, std::numeric_limits<float>::infinity());
  }
  return q;
}

std::vector<uint32_t> MinhashSignature(const std::vector<geo::Point>& points,
                                       const FingerprintParams& params) {
  const int hashes = std::max(1, params.hashes);
  const int bits = std::min(32, std::max(4, params.bits));
  const int grid = std::max(2, params.grid);
  const uint32_t slot_mask =
      bits == 32 ? ~uint32_t{0} : (uint32_t{1} << bits) - 1;

  std::vector<uint32_t> sig(static_cast<size_t>(hashes), slot_mask);
  if (points.empty()) return sig;

  // Shingle = ordered pair of consecutive cell ids (a discretized segment);
  // a single-point trajectory shingles its cell with itself so it still
  // produces a signature.
  auto cell_id = [grid](const geo::Point& p) -> uint64_t {
    return static_cast<uint64_t>(CellOf(p.y, grid)) * grid + CellOf(p.x, grid);
  };
  auto absorb = [&](uint64_t shingle) {
    for (int h = 0; h < hashes; ++h) {
      const uint32_t v = static_cast<uint32_t>(Mix64(
                             shingle ^ (0xabcd1234ULL * (h + 1)))) &
                         slot_mask;
      if (v < sig[static_cast<size_t>(h)]) sig[static_cast<size_t>(h)] = v;
    }
  };

  if (points.size() == 1) {
    const uint64_t c = cell_id(points[0]);
    absorb((c << 32) | c);
    return sig;
  }
  uint64_t prev = cell_id(points[0]);
  for (size_t i = 1; i < points.size(); ++i) {
    const uint64_t cur = cell_id(points[i]);
    absorb((prev << 32) | cur);
    prev = cur;
  }
  return sig;
}

double EstimateSimilarity(const uint32_t* a, const uint32_t* b, size_t n) {
  if (n == 0) return 0.0;
  size_t match = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(n);
}

double EstimateSimilarity(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  return EstimateSimilarity(a.data(), b.data(), a.size());
}

}  // namespace filter
}  // namespace trass
