#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace trass {
namespace workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

geo::Mbr BeijingExtent() {
  // lon [115.9, 117.1], lat [39.6, 40.4] normalized to the unit square.
  return geo::Mbr((115.9 + 180.0) / 360.0, (39.6 + 90.0) / 180.0,
                  (117.1 + 180.0) / 360.0, (40.4 + 90.0) / 180.0);
}

geo::Mbr ChinaExtent() {
  // lon [98, 122], lat [22, 45].
  return geo::Mbr((98.0 + 180.0) / 360.0, (22.0 + 90.0) / 180.0,
                  (122.0 + 180.0) / 360.0, (45.0 + 90.0) / 180.0);
}

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

namespace {

// A heading-perturbed walk covering roughly `span_km`, starting at (sx, sy).
std::vector<geo::Point> RandomWalk(Random* rnd, double sx, double sy,
                                   double span_km, int n) {
  std::vector<geo::Point> points;
  points.reserve(n);
  const double step = span_km * kKm / n;
  double heading = rnd->UniformDouble(0.0, kTwoPi);
  double x = sx, y = sy;
  for (int j = 0; j < n; ++j) {
    points.push_back(geo::Point{Clamp01(x), Clamp01(y)});
    heading += rnd->NextGaussian() * 0.25;  // gentle road curvature
    x += std::cos(heading) * step * (0.5 + rnd->NextDouble());
    y += std::sin(heading) * step * (0.5 + rnd->NextDouble());
  }
  return points;
}

double LogUniformSpan(Random* rnd, const TripOptions& options) {
  const double log_lo = std::log(options.min_span_km);
  const double log_hi = std::log(options.max_span_km);
  return std::exp(rnd->UniformDouble(log_lo, log_hi));
}

}  // namespace

std::vector<core::Trajectory> GenerateTrips(size_t count,
                                            const TripOptions& options,
                                            uint64_t seed) {
  Random rnd(seed);

  // Shared road corridors; each is a dense polyline spanning close to the
  // maximum trip length, so sub-spans of it realize every trip scale.
  std::vector<std::vector<geo::Point>> corridors;
  if (options.corridor_fraction > 0.0) {
    corridors.reserve(options.num_corridors);
    for (int c = 0; c < options.num_corridors; ++c) {
      const double sx = rnd.UniformDouble(options.extent.min_x(),
                                          options.extent.max_x());
      const double sy = rnd.UniformDouble(options.extent.min_y(),
                                          options.extent.max_y());
      corridors.push_back(
          RandomWalk(&rnd, sx, sy, options.max_span_km, 512));
    }
  }

  // Waiting spots (taxi ranks, depots): stationary vehicles cluster at
  // shared locations, which is what makes them findable by similarity
  // search (and what creates the paper's max-resolution peak).
  std::vector<geo::Point> waiting_spots;
  if (options.stationary_fraction > 0.0) {
    for (int spot = 0; spot < 30; ++spot) {
      waiting_spots.push_back(geo::Point{
          rnd.UniformDouble(options.extent.min_x(), options.extent.max_x()),
          rnd.UniformDouble(options.extent.min_y(),
                            options.extent.max_y())});
    }
  }

  std::vector<core::Trajectory> result;
  result.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::Trajectory t;
    t.id = i + 1;
    const int n = options.min_points +
                  static_cast<int>(rnd.Uniform(
                      options.max_points - options.min_points + 1));
    t.points.reserve(n);
    const double sx = rnd.UniformDouble(options.extent.min_x(),
                                        options.extent.max_x());
    const double sy = rnd.UniformDouble(options.extent.min_y(),
                                        options.extent.max_y());
    if (!waiting_spots.empty() &&
        rnd.Bernoulli(options.stationary_fraction)) {
      // A waiting vehicle at a shared rank: parked within ~a block of the
      // spot, GPS jittering by a few metres.
      const geo::Point& spot = waiting_spots[rnd.Uniform(
          waiting_spots.size())];
      const double park_radius =
          0.2 * kKm * std::exp(rnd.UniformDouble(-2.0, 1.0));
      const double angle = rnd.UniformDouble(0.0, kTwoPi);
      const double px = spot.x + std::cos(angle) * park_radius;
      const double py = spot.y + std::sin(angle) * park_radius;
      for (int j = 0; j < n; ++j) {
        t.points.push_back(geo::Point{
            Clamp01(px + rnd.NextGaussian() * 0.002 * kKm),
            Clamp01(py + rnd.NextGaussian() * 0.002 * kKm)});
      }
    } else if (!corridors.empty() &&
               rnd.Bernoulli(options.corridor_fraction)) {
      // Follow a shared corridor between two of its "hotspots": sub-span
      // endpoints snap to a coarse grid (trips share popular
      // origin/destination pairs), so genuinely similar trajectories
      // exist at every scale — what Fréchet-style search looks for.
      const auto& corridor = corridors[rnd.Uniform(corridors.size())];
      constexpr size_t kHotspotStride = 64;
      const size_t num_hotspots = corridor.size() / kHotspotStride;  // 8
      // Length: a power-of-two number of strides, log-uniform-ish.
      size_t strides = 1;
      while (strides < num_hotspots && rnd.Bernoulli(0.5)) strides *= 2;
      const size_t span_points = strides * kHotspotStride;
      const size_t start =
          rnd.Uniform(num_hotspots - strides + 1) * kHotspotStride;
      // A fixed GPS sampling rate: the point count scales with the trip
      // length (plus +-10% jitter). Without this, discrete Fréchet
      // between two samplings of the same route is dominated by the
      // sparser trip's sampling interval, not by route similarity.
      const double span_km = options.max_span_km *
                             static_cast<double>(strides) /
                             static_cast<double>(num_hotspots);
      const double rate =
          static_cast<double>(options.max_points) / options.max_span_km;
      const int span_n = std::clamp(
          static_cast<int>(span_km * rate * rnd.UniformDouble(0.9, 1.1)),
          options.min_points, options.max_points);
      // Route deviation is smooth in reality (a parallel street, a lane
      // offset), so model it as a constant per-trip lateral shift whose
      // magnitude spans two orders — Fréchet distances between
      // bucket-mates then spread smoothly over the benchmark's eps range
      // — plus a few metres of per-point GPS jitter.
      const double offset_mag = options.lateral_noise_km * kKm *
                                std::exp(rnd.UniformDouble(-2.0, 3.0));
      const double offset_dir = rnd.UniformDouble(0.0, kTwoPi);
      const double dx = std::cos(offset_dir) * offset_mag;
      const double dy = std::sin(offset_dir) * offset_mag;
      const double jitter = 0.005 * kKm;  // ~5 m GPS noise
      for (int j = 0; j < span_n; ++j) {
        // Interpolate along the corridor sub-span.
        const double pos = static_cast<double>(j) /
                           static_cast<double>(span_n - 1) *
                           static_cast<double>(span_points - 1);
        const size_t idx = start + static_cast<size_t>(pos);
        const double frac = pos - std::floor(pos);
        const geo::Point& a = corridor[idx];
        const geo::Point& b =
            corridor[std::min(idx + 1, corridor.size() - 1)];
        t.points.push_back(geo::Point{
            Clamp01(a.x + frac * (b.x - a.x) + dx +
                    rnd.NextGaussian() * jitter),
            Clamp01(a.y + frac * (b.y - a.y) + dy +
                    rnd.NextGaussian() * jitter)});
      }
    } else {
      t.points = RandomWalk(&rnd, sx, sy, LogUniformSpan(&rnd, options), n);
    }
    result.push_back(std::move(t));
  }
  return result;
}

std::vector<core::Trajectory> TDriveLike(size_t count, uint64_t seed) {
  TripOptions options;
  options.extent = BeijingExtent();
  options.min_span_km = 0.5;
  options.max_span_km = 78.0;
  options.min_points = 30;
  options.max_points = 300;
  options.stationary_fraction = 0.15;
  options.corridor_fraction = 0.6;
  options.num_corridors = 40;
  options.lateral_noise_km = 0.03;
  return GenerateTrips(count, options, seed);
}

std::vector<core::Trajectory> LorryLike(size_t count, uint64_t seed) {
  TripOptions options;
  options.extent = ChinaExtent();
  options.min_span_km = 5.0;
  options.max_span_km = 1500.0;
  options.min_points = 50;
  options.max_points = 400;
  options.stationary_fraction = 0.02;
  options.corridor_fraction = 0.7;  // highways between logistics hubs
  options.num_corridors = 30;
  options.lateral_noise_km = 0.05;
  return GenerateTrips(count, options, seed);
}

std::vector<core::Trajectory> Scale(const std::vector<core::Trajectory>& base,
                                    int times, double jitter, uint64_t seed) {
  Random rnd(seed);
  std::vector<core::Trajectory> result;
  result.reserve(base.size() * static_cast<size_t>(times));
  uint64_t next_id = 1;
  for (int copy = 0; copy < times; ++copy) {
    for (const core::Trajectory& t : base) {
      core::Trajectory replica;
      replica.id = next_id++;
      replica.points.reserve(t.points.size());
      const double dx = copy == 0 ? 0.0 : rnd.UniformDouble(-jitter, jitter);
      const double dy = copy == 0 ? 0.0 : rnd.UniformDouble(-jitter, jitter);
      for (const geo::Point& p : t.points) {
        replica.points.push_back(
            geo::Point{Clamp01(p.x + dx), Clamp01(p.y + dy)});
      }
      result.push_back(std::move(replica));
    }
  }
  return result;
}

std::vector<TimedTrajectory> MakeStream(std::vector<core::Trajectory> data,
                                        const StreamOptions& options,
                                        uint64_t seed) {
  Random rnd(seed);
  // Shuffle so burst membership is independent of generation order.
  for (size_t i = data.size(); i > 1; --i) {
    std::swap(data[i - 1], data[rnd.Uniform(i)]);
  }
  std::vector<TimedTrajectory> stream;
  stream.reserve(data.size());
  const double rate = std::max(options.rate_per_sec, 1e-6);
  const double burst_rate = rate * std::max(options.burst_multiplier, 1.0);
  double clock_ms = 0.0;
  size_t i = 0;
  while (i < data.size()) {
    const bool in_burst = options.burst_fraction > 0.0 &&
                          rnd.Bernoulli(options.burst_fraction);
    // Bursts cover a run of arrivals, not a single one: a reconnect
    // storm delivers a batch of backlogged trajectories at once.
    const size_t run = in_burst ? 1 + rnd.Uniform(64) : 1;
    const double r = in_burst ? burst_rate : rate;
    for (size_t j = 0; j < run && i < data.size(); ++j, ++i) {
      // Exponential inter-arrival gap: -ln(U) / rate, in milliseconds.
      const double u = std::max(rnd.NextDouble(), 1e-12);
      clock_ms += -std::log(u) / r * 1000.0;
      stream.push_back(TimedTrajectory{std::move(data[i]), clock_ms});
    }
  }
  return stream;
}

std::vector<size_t> SampleIndices(size_t n, size_t count, uint64_t seed) {
  Random rnd(seed);
  count = std::min(count, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rnd.Uniform(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

}  // namespace workload
}  // namespace trass
