// Synthetic trajectory workloads standing in for the paper's datasets
// (DESIGN.md documents the substitutions):
//
//  * TDriveLike — taxi trips inside the Beijing extent: random-walk trips
//    whose spans range from ~0.5 km to ~78 km (the paper maps these to
//    XZ* resolutions 10..16) plus a fraction of stationary "waiting"
//    trajectories that land at the maximum resolution (the Figure 12
//    peak).
//  * LorryLike — long-haul logistics routes across a country-scale
//    extent, stressing indexes that assume a compact spatial span.
//  * Scale — replicates a dataset t times with jitter, like the paper's
//    synthetic x-t datasets.
//
// All coordinates are normalized: the whole earth is [0,1]^2
// (x = (lon+180)/360, y = (lat+90)/180), matching the paper's setup where
// the entire index space covers the earth.

#ifndef TRASS_WORKLOAD_GENERATOR_H_
#define TRASS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/trajectory.h"
#include "geo/mbr.h"
#include "geo/units.h"

namespace trass {
namespace workload {

/// ~1 km expressed in normalized longitude units.
constexpr double kKm = geo::kKilometre;

struct TripOptions {
  geo::Mbr extent;                  // where trips start
  double min_span_km = 0.5;         // trip diameter range
  double max_span_km = 78.0;
  int min_points = 30;
  int max_points = 300;
  double stationary_fraction = 0.0; // trips that never move

  // Real fleets share a road network, so many trajectories are laterally
  // noisy copies of common corridors — that structure is what similarity
  // search exploits. `corridor_fraction` of the trips follow one of
  // `num_corridors` shared paths (a random sub-span of it) with
  // `lateral_noise_km` of GPS jitter; the rest are free random walks.
  double corridor_fraction = 0.0;
  int num_corridors = 200;
  double lateral_noise_km = 0.03;
};

/// Generic random-walk trip generator.
std::vector<core::Trajectory> GenerateTrips(size_t count,
                                            const TripOptions& options,
                                            uint64_t seed);

/// Taxi-like dataset (T-Drive stand-in): Beijing extent, 15% stationary.
std::vector<core::Trajectory> TDriveLike(size_t count, uint64_t seed);

/// Logistics-like dataset (JD Lorry stand-in): country-scale extent,
/// long-haul spans.
std::vector<core::Trajectory> LorryLike(size_t count, uint64_t seed);

/// Replicates `base` `times` times (ids renumbered consecutively after
/// the originals), jittering each copy by up to `jitter` per coordinate.
std::vector<core::Trajectory> Scale(const std::vector<core::Trajectory>& base,
                                    int times, double jitter, uint64_t seed);

/// `count` distinct indices into a dataset of size `n` (query sampling).
std::vector<size_t> SampleIndices(size_t n, size_t count, uint64_t seed);

/// A trajectory paired with its arrival time in a streaming workload —
/// the shape an online ingest pipeline (TrassStore::SubmitAsync)
/// consumes: trajectories show up over time, not as a bulk load.
struct TimedTrajectory {
  core::Trajectory traj;
  double arrival_ms = 0.0;  // offset from stream start
};

struct StreamOptions {
  /// Mean steady-state arrival rate (Poisson process).
  double rate_per_sec = 1000.0;
  /// Fraction of the stream arriving inside bursts. Bursts model fleet
  /// synchronization (shift changes, reconnect storms) — the moments
  /// that exercise ingest backpressure.
  double burst_fraction = 0.0;
  /// Rate multiplier inside a burst (>= 1).
  double burst_multiplier = 10.0;
};

/// Orders `data` into an arrival stream: exponential (Poisson)
/// inter-arrival gaps at `rate_per_sec`, with `burst_fraction` of the
/// trajectories compressed into bursts arriving `burst_multiplier`
/// times faster. Arrival times are non-decreasing; trajectory order is
/// shuffled so bursts are not spatially correlated with generation
/// order. Ids are preserved.
std::vector<TimedTrajectory> MakeStream(std::vector<core::Trajectory> data,
                                        const StreamOptions& options,
                                        uint64_t seed);

}  // namespace workload
}  // namespace trass

#endif  // TRASS_WORKLOAD_GENERATOR_H_
