// Bloom filter over user keys, stored per SSTable so point lookups can
// skip tables that cannot contain the key. Double hashing over a 32-bit
// base hash, same construction RocksDB/LevelDB use.

#ifndef TRASS_KV_BLOOM_H_
#define TRASS_KV_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace trass {
namespace kv {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter (bit array + 1 byte probe count). The builder
  /// can be reused after Finish().
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  const int bits_per_key_;
  int k_;  // number of probes
  std::vector<uint32_t> hashes_;
};

/// True when `key` may be in the set encoded by `filter`; false only when
/// it is definitely absent. An empty/undersized filter returns true
/// (never produces false negatives).
bool BloomKeyMayMatch(const Slice& key, const Slice& filter);

/// Hash used by the bloom filter (exposed for tests).
uint32_t BloomHash(const Slice& key);

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_BLOOM_H_
