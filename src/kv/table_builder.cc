#include "kv/table_builder.h"

#include <cassert>

#include "kv/dbformat.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace trass {
namespace kv {

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.block_restart_interval),
      index_block_(1) {
  if (options_.bloom_bits_per_key > 0) {
    filter_ =
        std::make_unique<BloomFilterBuilder>(options_.bloom_bits_per_key);
  }
}

void TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (!status_.ok()) return;
  assert(!finished_);
  assert(num_entries_ == 0 ||
         InternalKeyComparator().Compare(internal_key, Slice(last_key_)) > 0);

  if (pending_index_entry_) {
    // First key of a new data block: index the previous block under its
    // last key (no key shortening; correctness over byte savings).
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  if (filter_) {
    filter_->AddKey(ExtractUserKey(internal_key));
  }

  last_key_.assign(internal_key.data(), internal_key.size());
  data_block_.Add(internal_key, value);
  ++num_entries_;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty() || !status_.ok()) return;
  WriteBlock(&data_block_, &pending_handle_);
  pending_index_entry_ = true;
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  Slice contents = block->Finish();
  WriteRawBlock(contents, handle);
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& contents, BlockHandle* handle) {
  handle->set_offset(offset_);
  handle->set_size(contents.size());
  status_ = file_->Append(contents);
  if (!status_.ok()) return;
  // Trailer: type byte (0 = uncompressed) + masked crc of payload+type.
  char trailer[kBlockTrailerSize];
  trailer[0] = 0;
  uint32_t crc = crc32c::Value(contents.data(), contents.size());
  crc = crc32c::Extend(crc, trailer, 1);
  std::string crc_enc;
  PutFixed32(&crc_enc, crc32c::Mask(crc));
  std::memcpy(trailer + 1, crc_enc.data(), 4);
  status_ = file_->Append(Slice(trailer, kBlockTrailerSize));
  if (status_.ok()) {
    offset_ += contents.size() + kBlockTrailerSize;
  }
}

Status TableBuilder::Finish() {
  FlushDataBlock();
  if (!status_.ok()) return status_;
  finished_ = true;

  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  BlockHandle filter_handle(0, 0);
  if (filter_ && filter_->num_keys() > 0) {
    const std::string filter_data = filter_->Finish();
    WriteRawBlock(Slice(filter_data), &filter_handle);
    if (!status_.ok()) return status_;
  }

  BlockHandle index_handle;
  WriteBlock(&index_block_, &index_handle);
  if (!status_.ok()) return status_;

  Footer footer;
  footer.set_filter_handle(filter_handle);
  footer.set_index_handle(index_handle);
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(Slice(footer_encoding));
  if (status_.ok()) {
    offset_ += footer_encoding.size();
  }
  return status_;
}

}  // namespace kv
}  // namespace trass
