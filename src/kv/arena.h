// Bump allocator backing the memtable skiplist: nodes and key bytes live
// until the memtable is dropped, so individual frees are unnecessary.

#ifndef TRASS_KV_ARENA_H_
#define TRASS_KV_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace trass {
namespace kv {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    if (bytes <= avail_) {
      char* result = ptr_;
      ptr_ += bytes;
      avail_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  /// Allocation aligned for pointer-sized objects.
  char* AllocateAligned(size_t bytes) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    const size_t mod = reinterpret_cast<uintptr_t>(ptr_) & (kAlign - 1);
    const size_t slop = mod == 0 ? 0 : kAlign - mod;
    if (bytes + slop <= avail_) {
      char* result = ptr_ + slop;
      ptr_ += bytes + slop;
      avail_ -= bytes + slop;
      return result;
    }
    return AllocateFallback(bytes);  // fresh blocks are max-aligned
  }

  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 64 * 1024;

  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block; keeps current block useful.
      return NewBlock(bytes);
    }
    ptr_ = NewBlock(kBlockSize);
    avail_ = kBlockSize;
    char* result = ptr_;
    ptr_ += bytes;
    avail_ -= bytes;
    return result;
  }

  char* NewBlock(size_t size) {
    blocks_.push_back(std::make_unique<char[]>(size));
    memory_usage_ += size + sizeof(std::unique_ptr<char[]>);
    return blocks_.back().get();
  }

  char* ptr_ = nullptr;
  size_t avail_ = 0;
  size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_ARENA_H_
