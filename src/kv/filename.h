// Naming scheme for the files inside a database directory.

#ifndef TRASS_KV_FILENAME_H_
#define TRASS_KV_FILENAME_H_

#include <cstdint>
#include <string>

namespace trass {
namespace kv {

enum class FileType {
  kLogFile,
  kTableFile,
  kManifestFile,
  kCurrentFile,
  kUnknown,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);

/// Parses a bare filename (no directory). Returns false if unrecognized.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_FILENAME_H_
