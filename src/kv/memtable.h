// In-memory write buffer: a skiplist of internal-key entries backed by an
// arena. Filled from the WAL-protected write path, drained by a flush into
// an L0 SSTable.

#ifndef TRASS_KV_MEMTABLE_H_
#define TRASS_KV_MEMTABLE_H_

#include <memory>
#include <string>

#include "kv/arena.h"
#include "kv/dbformat.h"
#include "kv/iterator.h"
#include "kv/skiplist.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class MemTable {
 public:
  MemTable() : table_(EntryComparator{}, &arena_) {}

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts a (key, value) with the given sequence and type.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup as of `seq`. Returns true when the memtable holds an
  /// answer: *status OK with *value set, or NotFound for a deletion.
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* value,
           Status* status) const;

  /// Iterator over internal keys (caller owns it; memtable must outlive).
  Iterator* NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  bool empty() const { return empty_; }

 private:
  struct EntryComparator {
    // Entries are varint32-length-prefixed internal keys followed by a
    // length-prefixed value; only the internal key part orders them.
    int operator()(const char* a, const char* b) const;
  };

  friend class MemTableIterator;

  using Table = SkipList<EntryComparator>;

  Arena arena_;
  Table table_;
  bool empty_ = true;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_MEMTABLE_H_
