// Range-scan request/response types plus the pushdown filter interface —
// the analog of HBase coprocessor filters: the predicate runs next to the
// storage engine, so only matching rows are materialized for the caller.

#ifndef TRASS_KV_SCAN_H_
#define TRASS_KV_SCAN_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace trass {
namespace kv {

/// Half-open key interval [start, end); an empty end means "to infinity".
struct ScanRange {
  std::string start;
  std::string end;
};

/// Server-side row predicate. Must be thread-safe: regions are scanned in
/// parallel and share one filter instance.
class ScanFilter {
 public:
  virtual ~ScanFilter() = default;

  /// True keeps the row (returned to the client), false drops it.
  virtual bool Keep(const Slice& key, const Slice& value) const = 0;
};

struct Row {
  std::string key;
  std::string value;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_SCAN_H_
