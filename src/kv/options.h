// Tuning knobs for the storage engine, mirroring the LevelDB/RocksDB
// Options / ReadOptions / WriteOptions split.

#ifndef TRASS_KV_OPTIONS_H_
#define TRASS_KV_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace trass {
namespace kv {

class Env;

struct Options {
  /// Environment used for all file access; defaults to the POSIX env.
  Env* env = nullptr;

  /// Create the database directory if missing.
  bool create_if_missing = true;

  /// Memtable size that triggers a flush to an L0 SSTable.
  size_t write_buffer_size = 4 * 1024 * 1024;

  /// Uncompressed payload per data block in an SSTable.
  size_t block_size = 4 * 1024;

  /// Keys between restart points inside a data block.
  int block_restart_interval = 16;

  /// Bloom filter bits per key in SSTables (0 disables filters).
  int bloom_bits_per_key = 10;

  /// Capacity of the shared LRU block cache in bytes.
  size_t block_cache_size = 8 * 1024 * 1024;

  /// Number of L0 files that triggers a compaction into L1.
  int l0_compaction_trigger = 4;

  /// Run flush-triggered compactions on a dedicated background thread
  /// instead of synchronously on the writing thread under the DB mutex.
  /// Writes then only wait when the L0 ingest throttle below says the
  /// level is too deep. Foreground CompactRange() stays synchronous
  /// either way, and a failed background compaction wedges the DB
  /// read-only exactly like a failed synchronous one.
  bool background_compaction = true;

  /// L0 ingest throttle (only meaningful with background_compaction).
  /// At `l0_slowdown_trigger` L0 files each write sleeps for
  /// `write_stall_ms` to let the compactor gain ground; at
  /// `l0_stop_trigger` writes block until a compaction shrinks L0 (or
  /// the DB wedges). 0 disables the respective trigger.
  int l0_slowdown_trigger = 8;
  int l0_stop_trigger = 12;

  /// Target file size for compaction outputs.
  size_t target_file_size = 2 * 1024 * 1024;

  /// Base byte budget for level 1; each deeper level gets 10x more.
  uint64_t max_bytes_for_level_base = 10ull * 1024 * 1024;

  /// fsync WAL appends (off by default: benchmarks measure CPU/IO of the
  /// query path, not disk durability).
  bool sync_wal = false;

  /// Treat every detected inconsistency as an error: block checksums are
  /// verified on all reads (Get / iterators), and WAL recovery fails on
  /// a corrupted record instead of truncating at it. Off by default —
  /// the lenient mode matches the availability posture of the paper's
  /// HBase substrate, where a torn WAL tail is expected after a crash.
  bool paranoid_checks = false;

  /// Low-space write stalls (0 disables). When the free space reported
  /// by Env::GetFreeDiskSpace drops below the soft watermark, each write
  /// is throttled by `write_stall_ms` and compaction scheduling pauses
  /// (compactions need headroom for their outputs). Below the hard
  /// watermark writes are rejected with Status::NoSpace *before* the WAL
  /// is touched — a clean shed, not a background error — so writes
  /// recover by themselves once space is freed.
  uint64_t soft_space_watermark_bytes = 0;
  uint64_t hard_space_watermark_bytes = 0;

  /// Per-write throttle applied between the soft and hard watermarks.
  uint64_t write_stall_ms = 2;

  /// Default readahead window for sequential scans (DB iterators and
  /// compaction inputs). Sequential readers fetch up to this many bytes
  /// per pread into one reusable buffer and serve block Slices out of
  /// it without per-block copies or cache fills. 0 restores the
  /// block-at-a-time read path. Point gets are unaffected.
  size_t scan_readahead_bytes = 256 * 1024;
};

struct ReadOptions {
  /// Verify block checksums on read.
  bool verify_checksums = false;

  /// Insert blocks read by this operation into the block cache.
  bool fill_cache = true;

  /// Readahead window for table iterators created with these options.
  /// When > 0, Table::NewIterator uses the streaming scan path: whole
  /// windows of blocks are read into one reusable buffer, block cache
  /// lookups and fills are skipped, and iterator Slices point into the
  /// buffer (valid until the iterator moves past the block). DB-level
  /// iterators default this from Options::scan_readahead_bytes.
  size_t readahead_bytes = 0;
};

struct WriteOptions {
  /// fsync the WAL before acknowledging this write.
  bool sync = false;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_OPTIONS_H_
