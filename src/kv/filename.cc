#include "kv/filename.h"

#include <cstdio>
#include <cstdlib>

namespace trass {
namespace kv {

namespace {

std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

}  // namespace

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (filename.rfind("MANIFEST-", 0) == 0) {
    char* end = nullptr;
    *number = std::strtoull(filename.c_str() + 9, &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *type = FileType::kManifestFile;
    return true;
  }
  const size_t dot = filename.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  for (size_t i = 0; i < dot; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return false;
  }
  *number = std::strtoull(filename.substr(0, dot).c_str(), nullptr, 10);
  const std::string suffix = filename.substr(dot + 1);
  if (suffix == "log") {
    *type = FileType::kLogFile;
  } else if (suffix == "sst") {
    *type = FileType::kTableFile;
  } else {
    *type = FileType::kUnknown;
    return false;
  }
  return true;
}

}  // namespace kv
}  // namespace trass
