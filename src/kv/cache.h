// Sharded LRU block cache. Cached blocks are immutable and shared via
// shared_ptr, so eviction is safe while readers still hold a block.

#ifndef TRASS_KV_CACHE_H_
#define TRASS_KV_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "kv/block.h"

namespace trass {
namespace kv {

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes);

  /// Cache key: owning file id + block offset within the file.
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& other) const {
      return file_id == other.file_id && offset == other.offset;
    }
  };

  std::shared_ptr<const Block> Lookup(const Key& key);
  void Insert(const Key& key, std::shared_ptr<const Block> block,
              size_t charge);

  /// Drops every entry for `file_id` (table deleted by compaction).
  void EvictFile(uint64_t file_id);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t TotalCharge() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ull ^
                                   k.offset);
    }
  };

  struct Entry {
    Key key;
    std::shared_ptr<const Block> block;
    size_t charge;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t usage = 0;
    size_t capacity = 0;
  };

  static constexpr int kNumShards = 8;

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash()(key) % kNumShards];
  }

  Shard shards_[kNumShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_CACHE_H_
