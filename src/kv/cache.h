// Sharded LRU block cache. Cached blocks are immutable and shared via
// shared_ptr, so eviction is safe while readers still hold a block.

#ifndef TRASS_KV_CACHE_H_
#define TRASS_KV_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "kv/block.h"

namespace trass {
namespace kv {

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes);

  /// Cache key: owning file id + block offset within the file.
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& other) const {
      return file_id == other.file_id && offset == other.offset;
    }
  };

  std::shared_ptr<const Block> Lookup(const Key& key);

  /// Caches `block`. An entry whose charge exceeds the shard capacity is
  /// rejected outright (it could never be retained without evicting the
  /// whole shard); any existing entry under the same key is still
  /// replaced/dropped so stale blocks never outlive their file.
  void Insert(const Key& key, std::shared_ptr<const Block> block,
              size_t charge);

  /// Drops every entry for `file_id` (table deleted by compaction).
  /// O(entries cached for that file) via the per-file offset index, not
  /// O(total entries).
  void EvictFile(uint64_t file_id);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t fills() const { return fills_.load(std::memory_order_relaxed); }
  size_t TotalCharge() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ull ^
                                   k.offset);
    }
  };

  struct Entry {
    Key key;
    std::shared_ptr<const Block> block;
    size_t charge;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    // file_id -> offsets cached in this shard, so EvictFile touches only
    // the entries that actually belong to the file.
    std::unordered_map<uint64_t, std::unordered_set<uint64_t>> by_file;
    size_t usage = 0;
    size_t capacity = 0;
  };

  static constexpr int kNumShards = 8;

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash()(key) % kNumShards];
  }

  // Removes `it` (an lru iterator) from all shard structures. Returns the
  // entry's shared_ptr so the block is destroyed outside any accounting.
  static std::shared_ptr<const Block> RemoveLocked(
      Shard& shard, std::list<Entry>::iterator it);

  Shard shards_[kNumShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> fills_{0};
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_CACHE_H_
