#include "kv/log_writer.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace trass {
namespace kv {
namespace log {

Status Writer::AddRecord(const Slice& record) {
  const char* ptr = record.data();
  size_t left = record.size();

  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      if (leftover > 0) {
        // Zero-fill the block tail; the reader skips it.
        static const char kZeroes[kHeaderSize] = {0};
        s = dest_->Append(Slice(kZeroes, static_cast<size_t>(leftover)));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }

    const size_t avail =
        static_cast<size_t>(kBlockSize - block_offset_ - kHeaderSize);
    const size_t fragment_length = left < avail ? left : avail;

    const bool end = (left == fragment_length);
    RecordType type;
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* ptr,
                                  size_t length) {
  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(type);

  // CRC covers the type byte and the payload.
  uint32_t crc = crc32c::Extend(crc32c::Value(&buf[6], 1), ptr, length);
  crc = crc32c::Mask(crc);
  std::string header;
  PutFixed32(&header, crc);
  std::memcpy(buf, header.data(), 4);

  Status s = dest_->Append(Slice(buf, kHeaderSize));
  if (s.ok()) {
    s = dest_->Append(Slice(ptr, length));
    if (s.ok()) s = dest_->Flush();
  }
  block_offset_ += kHeaderSize + static_cast<int>(length);
  return s;
}

}  // namespace log
}  // namespace kv
}  // namespace trass
