// Internal key format of the storage engine.
//
// An internal key is `user_key | seq<<8 | type` (8-byte trailer, little
// endian). Ordering: user keys ascending, then sequence numbers descending
// so the newest version of a key is seen first, then type descending.

#ifndef TRASS_KV_DBFORMAT_H_
#define TRASS_KV_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace trass {
namespace kv {

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

using SequenceNumber = uint64_t;

/// Largest sequence number that fits in the 56 bits of the trailer.
static constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

/// Appends the internal encoding of (user_key, seq, type) to *result.
inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

/// Views over the parts of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xff);
}

/// Orders internal keys: user key ascending, then tag descending.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    const uint64_t atag = ExtractTag(a);
    const uint64_t btag = ExtractTag(b);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }

  bool operator()(const Slice& a, const Slice& b) const {
    return Compare(a, b) < 0;
  }
};

/// Internal key used to start a lookup/scan at `user_key` as of `seq`:
/// the maximal tag sorts this key before every stored version <= seq.
inline std::string MakeLookupKey(const Slice& user_key, SequenceNumber seq) {
  std::string key;
  AppendInternalKey(&key, user_key, seq, kTypeValue);
  return key;
}

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_DBFORMAT_H_
