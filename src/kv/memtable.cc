#include "kv/memtable.h"

#include <cstring>

#include "util/coding.h"

namespace trass {
namespace kv {

namespace {

// Decodes a varint32-prefixed slice starting at p; returns the slice and
// advances *p past it. Entries are built by MemTable::Add, so they are
// well-formed by construction.
Slice GetLengthPrefixed(const char** p) {
  Slice input(*p, 5 + 4);  // at most 5 varint bytes
  uint32_t len = 0;
  GetVarint32(&input, &len);
  Slice result(input.data(), len);
  *p = input.data() + len;
  return result;
}

}  // namespace

int MemTable::EntryComparator::operator()(const char* a,
                                          const char* b) const {
  const char* pa = a;
  const char* pb = b;
  Slice ka = GetLengthPrefixed(&pa);
  Slice kb = GetLengthPrefixed(&pb);
  return InternalKeyComparator().Compare(ka, kb);
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  // entry := varint32(klen) | user_key | tag(8) | varint32(vlen) | value
  const size_t key_size = user_key.size() + 8;
  const size_t encoded_len = VarintLength(key_size) + key_size +
                             VarintLength(value.size()) + value.size();
  char* buf = arena_.Allocate(encoded_len);
  std::string scratch;
  scratch.reserve(encoded_len);
  PutVarint32(&scratch, static_cast<uint32_t>(key_size));
  scratch.append(user_key.data(), user_key.size());
  PutFixed64(&scratch, PackSequenceAndType(seq, type));
  PutVarint32(&scratch, static_cast<uint32_t>(value.size()));
  scratch.append(value.data(), value.size());
  std::memcpy(buf, scratch.data(), encoded_len);
  table_.Insert(buf);
  empty_ = false;
}

bool MemTable::Get(const Slice& user_key, SequenceNumber seq,
                   std::string* value, Status* status) const {
  std::string lookup;
  PutVarint32(&lookup, static_cast<uint32_t>(user_key.size() + 8));
  AppendInternalKey(&lookup, user_key, seq, kTypeValue);
  Table::Iterator iter(&table_);
  iter.Seek(lookup.data());
  if (!iter.Valid()) return false;
  const char* entry = iter.entry();
  const char* p = entry;
  Slice internal_key = GetLengthPrefixed(&p);
  if (ExtractUserKey(internal_key) != user_key) return false;
  switch (ExtractValueType(internal_key)) {
    case kTypeValue: {
      const char* vp = p;
      Slice v = GetLengthPrefixed(&vp);
      value->assign(v.data(), v.size());
      *status = Status::OK();
      return true;
    }
    case kTypeDeletion:
      *status = Status::NotFound("deleted");
      return true;
  }
  return false;
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(const MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override {
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(target.size()));
    scratch_.append(target.data(), target.size());
    iter_.Seek(scratch_.data());
  }
  void Next() override { iter_.Next(); }

  Slice key() const override {
    const char* p = iter_.entry();
    return GetLengthPrefixed(&p);
  }

  Slice value() const override {
    const char* p = iter_.entry();
    GetLengthPrefixed(&p);  // skip key
    return GetLengthPrefixed(&p);
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string scratch_;
};

Iterator* MemTable::NewIterator() const {
  return new MemTableIterator(&table_);
}

}  // namespace kv
}  // namespace trass
