#include "kv/merging_iterator.h"

#include <memory>

#include "kv/dbformat.h"

namespace trass {
namespace kv {

namespace {

class MergingIterator final : public Iterator {
 public:
  explicit MergingIterator(std::vector<Iterator*> children) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      if (!child->status().ok()) return child->status();
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          cmp_.Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
  InternalKeyComparator cmp_;
};

}  // namespace

Iterator* NewMergingIterator(std::vector<Iterator*> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return children[0];
  return new MergingIterator(std::move(children));
}

}  // namespace kv
}  // namespace trass
