#include "kv/log_reader.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace trass {
namespace kv {
namespace log {

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  for (;;) {
    Slice fragment;
    const unsigned int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        *scratch = fragment.ToString();
        *record = Slice(*scratch);
        return true;

      case kFirstType:
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          corruption_detected_ = true;
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          corruption_detected_ = true;
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        // A fragmented record cut off by EOF is a torn write; drop it.
        return false;

      case kBadRecord:
        // ReadPhysicalRecord already recorded the corruption.
        in_fragmented_record = false;
        scratch->clear();
        break;

      default:
        corruption_detected_ = true;
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  for (;;) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        // Drop any partial header at block end and refill.
        buffer_.clear();
        Status status = file_->Read(kBlockSize, &buffer_, backing_store_.get());
        if (!status.ok()) {
          buffer_.clear();
          eof_ = true;
          corruption_detected_ = true;
          return kEof;
        }
        if (buffer_.size() < static_cast<size_t>(kBlockSize)) {
          eof_ = true;
        }
        continue;
      }
      // Truncated header at file end: treat as EOF (torn write).
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint32_t>(header[4]) & 0xff;
    const uint32_t b = static_cast<uint32_t>(header[5]) & 0xff;
    const unsigned int type = static_cast<unsigned char>(header[6]);
    const uint32_t length = a | (b << 8);

    if (kHeaderSize + length > buffer_.size()) {
      // Truncated payload: corruption mid-file, torn write at EOF.
      buffer_.clear();
      if (!eof_) {
        corruption_detected_ = true;
        return kBadRecord;
      }
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Zero-padded block tail produced by the writer; skip to next block.
      buffer_.clear();
      continue;
    }

    if (checksum_) {
      const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
      const uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
      if (actual_crc != expected_crc) {
        buffer_.clear();
        corruption_detected_ = true;
        return kBadRecord;
      }
    }

    buffer_.remove_prefix(kHeaderSize + length);
    *result = Slice(header + kHeaderSize, length);
    return type;
  }
}

}  // namespace log
}  // namespace kv
}  // namespace trass
