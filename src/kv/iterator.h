// Forward iterator interface shared by memtable, block, table, and merged
// views. Scans in this engine are forward-only (range scans over row keys),
// so Prev()/SeekToLast() are intentionally absent.

#ifndef TRASS_KV_ITERATOR_H_
#define TRASS_KV_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  /// Valid() must hold for key()/value().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

/// An iterator over nothing, optionally carrying an error.
Iterator* NewEmptyIterator(Status status = Status::OK());

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_ITERATOR_H_
