#include "kv/two_level_iterator.h"

#include <memory>

namespace trass {
namespace kv {

namespace {

class TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(Iterator* index_iter, BlockFunction block_function,
                   void* arg, const ReadOptions& options)
      : index_iter_(index_iter),
        block_function_(block_function),
        arg_(arg),
        options_(options) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (data_iter_ != nullptr && !data_iter_->status().ok()) {
        SaveError(data_iter_->status());
      }
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      return;
    }
    const Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle == current_handle_) {
      return;  // same block as before; keep position
    }
    data_iter_.reset(block_function_(arg_, options_, handle));
    current_handle_ = handle.ToString();
  }

  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  std::unique_ptr<Iterator> index_iter_;
  BlockFunction const block_function_;
  void* const arg_;
  const ReadOptions options_;
  std::unique_ptr<Iterator> data_iter_;
  std::string current_handle_;
  Status status_;
};

}  // namespace

Iterator* NewTwoLevelIterator(Iterator* index_iter,
                              BlockFunction block_function, void* arg,
                              const ReadOptions& options) {
  return new TwoLevelIterator(index_iter, block_function, arg, options);
}

}  // namespace kv
}  // namespace trass
