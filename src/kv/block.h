// Read-side of the prefix-compressed block format written by BlockBuilder:
// owns the payload bytes and serves binary-searchable forward iterators.

#ifndef TRASS_KV_BLOCK_H_
#define TRASS_KV_BLOCK_H_

#include <cstdint>
#include <string>

#include "kv/dbformat.h"
#include "kv/iterator.h"
#include "util/slice.h"

namespace trass {
namespace kv {

class Block {
 public:
  /// Takes ownership of the payload.
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  /// Iterator over (internal key, value) entries. The Block must outlive
  /// the iterator.
  Iterator* NewIterator() const;

 private:
  class Iter;

  std::string data_;
  uint32_t restart_offset_ = 0;  // offset of the restart array
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_BLOCK_H_
