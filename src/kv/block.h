// Read-side of the prefix-compressed block format written by BlockBuilder:
// serves binary-searchable forward iterators over a payload it either
// owns (cacheable blocks) or merely views (zero-copy readahead scans).

#ifndef TRASS_KV_BLOCK_H_
#define TRASS_KV_BLOCK_H_

#include <cstdint>
#include <string>

#include "kv/dbformat.h"
#include "kv/iterator.h"
#include "util/slice.h"

namespace trass {
namespace kv {

class Block {
 public:
  /// Takes ownership of the payload.
  explicit Block(std::string contents);

  /// Non-owning view over externally managed bytes (a readahead buffer).
  /// The caller must keep `data` alive and unmodified for the lifetime of
  /// the Block and any iterator created from it.
  Block(const char* data, size_t size);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }

  /// Iterator over (internal key, value) entries. The Block must outlive
  /// the iterator.
  Iterator* NewIterator() const;

 private:
  class Iter;

  void Init();

  std::string owned_;  // empty for non-owning views
  const char* data_ = nullptr;
  size_t size_ = 0;
  uint32_t restart_offset_ = 0;  // offset of the restart array
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_BLOCK_H_
