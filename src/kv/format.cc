#include "kv/format.h"

#include <memory>

#include "util/coding.h"
#include "util/crc32c.h"

namespace trass {
namespace kv {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too small");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  Status s = filter_handle_.DecodeFrom(input);
  if (s.ok()) s = index_handle_.DecodeFrom(input);
  return s;
}

Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result) {
  result->data.clear();
  const size_t n = static_cast<size_t>(handle.size());
  auto buf = std::make_unique<char[]>(n + kBlockTrailerSize);
  Slice contents;
  Status s =
      file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf.get());
  if (!s.ok()) return s;
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  const char* data = contents.data();
  s = VerifyBlockInPlace(data, n, options.verify_checksums);
  if (!s.ok()) return s;
  result->data.assign(data, n);
  return Status::OK();
}

Status VerifyBlockInPlace(const char* data, size_t payload_size,
                          bool verify_checksum) {
  if (verify_checksum) {
    const uint32_t crc =
        crc32c::Unmask(DecodeFixed32(data + payload_size + 1));
    const uint32_t actual = crc32c::Value(data, payload_size + 1);
    if (crc != actual) {
      return Status::Corruption("block checksum mismatch");
    }
  }
  if (data[payload_size] != 0) {
    return Status::Corruption("unknown block compression type");
  }
  return Status::OK();
}

}  // namespace kv
}  // namespace trass
