#include "kv/db.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "kv/filename.h"
#include "kv/log_reader.h"
#include "kv/merging_iterator.h"
#include "kv/table_builder.h"

namespace trass {
namespace kv {

namespace {

// Iterator over one SSTable that keeps the table reader alive.
class TableOwningIterator final : public Iterator {
 public:
  TableOwningIterator(std::shared_ptr<Table> table, const ReadOptions& options)
      : table_(std::move(table)), iter_(table_->NewIterator(options)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<Table> table_;
  std::unique_ptr<Iterator> iter_;
};

// Iterator over a memtable that keeps the memtable alive, so a flush
// replacing DB::mem_ cannot destroy it under a live scan.
class MemOwningIterator final : public Iterator {
 public:
  explicit MemOwningIterator(std::shared_ptr<MemTable> mem)
      : mem_(std::move(mem)), iter_(mem_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<Iterator> iter_;
};

// User-facing iterator: collapses internal-key versions into the newest
// visible value per user key and hides deletions.
class DBIterator final : public Iterator {
 public:
  DBIterator(Iterator* internal, SequenceNumber sequence, IoStats* stats)
      : internal_(internal), sequence_(sequence), stats_(stats) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry(/*skip_current_user_key=*/false);
  }

  void Seek(const Slice& target) override {
    internal_->Seek(MakeLookupKey(target, sequence_));
    FindNextUserEntry(/*skip_current_user_key=*/false);
  }

  void Next() override {
    // Skip the remaining (older) versions of the current user key.
    saved_key_.assign(key().data(), key().size());
    internal_->Next();
    FindNextUserEntry(/*skip_current_user_key=*/true);
  }

  Slice key() const override { return ExtractUserKey(internal_->key()); }
  Slice value() const override { return internal_->value(); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry(bool skip_current_user_key) {
    valid_ = false;
    std::string deleted_key;
    bool have_deleted_key = false;
    while (internal_->Valid()) {
      const Slice ikey = internal_->key();
      if (ExtractSequence(ikey) > sequence_) {
        internal_->Next();
        continue;
      }
      const Slice user_key = ExtractUserKey(ikey);
      if (skip_current_user_key && user_key == Slice(saved_key_)) {
        internal_->Next();
        continue;
      }
      skip_current_user_key = false;
      if (have_deleted_key && user_key == Slice(deleted_key)) {
        internal_->Next();
        continue;
      }
      if (ExtractValueType(ikey) == kTypeDeletion) {
        deleted_key.assign(user_key.data(), user_key.size());
        have_deleted_key = true;
        internal_->Next();
        continue;
      }
      valid_ = true;
      if (stats_) {
        stats_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  const SequenceNumber sequence_;
  IoStats* const stats_;
  bool valid_ = false;
  std::string saved_key_;
};

}  // namespace

DB::DB(const Options& options, std::string name)
    : options_(options),
      dbname_(std::move(name)),
      env_(options.env != nullptr ? options.env : Env::Default()),
      mem_(std::make_shared<MemTable>()),
      block_cache_(options.block_cache_size) {
  options_.env = env_;
  versions_ = std::make_unique<VersionSet>(dbname_, env_);
  table_cache_ =
      std::make_unique<TableCache>(dbname_, options_, &block_cache_, &stats_);
}

DB::~DB() {
  // Best-effort final flush so short-lived DBs persist their tail writes.
  // Skipped while wedged: flushing through a background error would just
  // fail again, and the WAL already holds whatever was acked.
  std::lock_guard<std::mutex> lock(mu_);
  if (bg_error_.ok() && !mem_->empty()) {
    FlushMemTableLocked();
  }
}

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* db) {
  db->reset();
  std::unique_ptr<DB> impl(new DB(options, name));
  Env* env = impl->env_;
  if (!env->FileExists(name)) {
    if (!options.create_if_missing) {
      return Status::InvalidArgument(name + " does not exist");
    }
    Status s = env->CreateDir(name);
    if (!s.ok()) return s;
  }
  bool found_manifest = false;
  Status s = impl->versions_->Recover(&found_manifest);
  if (!s.ok()) return s;
  s = impl->RecoverLogs();
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(impl->mu_);
    // Persist any replayed writes and start a fresh WAL.
    if (!impl->mem_->empty()) {
      s = impl->FlushMemTableLocked();
      if (!s.ok()) return s;
    }
    s = impl->SwitchToNewLog();
    if (!s.ok()) return s;
    s = impl->versions_->WriteSnapshot();
    if (!s.ok()) return s;
    impl->RemoveObsoleteFilesLocked();
  }
  *db = std::move(impl);
  return Status::OK();
}

Status DB::RecoverLogs() {
  std::vector<std::string> children;
  Status s = env_->GetChildren(dbname_, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> logs;
  uint64_t max_number = 0;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    max_number = std::max(max_number, number);
    if (type == FileType::kLogFile && number >= versions_->log_number()) {
      logs.push_back(number);
    }
  }
  versions_->BumpFileNumber(max_number);
  std::sort(logs.begin(), logs.end());
  SequenceNumber max_sequence = versions_->last_sequence();
  for (uint64_t log_number : logs) {
    const std::string log_name = LogFileName(dbname_, log_number);
    std::unique_ptr<SequentialFile> file;
    s = env_->NewSequentialFile(log_name, &file);
    if (!s.ok()) return s;
    log::Reader reader(file.get());
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) continue;  // truncated batch header
      WriteBatch batch = WriteBatch::FromContents(record);
      s = WriteBatch::InsertInto(batch, mem_.get());
      if (!s.ok()) return s;
      const SequenceNumber last_in_batch =
          batch.sequence() + batch.Count() - 1;
      max_sequence = std::max(max_sequence, last_in_batch);
    }
    // A torn tail is the expected shape of a crash and recovery stops at
    // it; under paranoid_checks it is reported instead of tolerated.
    if (reader.corruption_detected() && options_.paranoid_checks) {
      return Status::Corruption("WAL corruption").WithContext(log_name);
    }
  }
  versions_->set_last_sequence(max_sequence);
  return Status::OK();
}

Status DB::SwitchToNewLog() {
  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &file);
  if (!s.ok()) return s;
  logfile_ = std::move(file);
  log_ = std::make_unique<log::Writer>(logfile_.get());
  logfile_number_ = new_log_number;
  versions_->set_log_number(new_log_number);
  return Status::OK();
}

Status DB::Put(const WriteOptions& options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

void DB::SetBackgroundErrorLocked(const Status& s) {
  if (s.ok() || !bg_error_.ok()) return;  // first error sticks
  bg_error_ = s;
  stats_.background_errors.fetch_add(1, std::memory_order_relaxed);
}

Status DB::background_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bg_error_;
}

bool DB::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !bg_error_.ok();
}

bool DB::BelowSoftWatermark() const {
  if (options_.soft_space_watermark_bytes == 0) return false;
  uint64_t free_bytes = 0;
  if (!env_->GetFreeDiskSpace(dbname_, &free_bytes).ok()) return false;
  return free_bytes <= options_.soft_space_watermark_bytes;
}

Status DB::MaybeStallForSpace() {
  if (options_.soft_space_watermark_bytes == 0 &&
      options_.hard_space_watermark_bytes == 0) {
    return Status::OK();
  }
  uint64_t free_bytes = 0;
  if (!env_->GetFreeDiskSpace(dbname_, &free_bytes).ok()) {
    return Status::OK();  // unknown space: don't block the write path
  }
  if (options_.hard_space_watermark_bytes > 0 &&
      free_bytes <= options_.hard_space_watermark_bytes) {
    // Shed before the WAL is touched: no torn record, no sticky error —
    // writes come back by themselves once space is freed.
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    return Status::NoSpace(dbname_ + ": free space " +
                           std::to_string(free_bytes) +
                           " below hard watermark " +
                           std::to_string(options_.hard_space_watermark_bytes));
  }
  if (options_.soft_space_watermark_bytes > 0 &&
      free_bytes <= options_.soft_space_watermark_bytes &&
      options_.write_stall_ms > 0) {
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    stats_.stall_ms.fetch_add(options_.write_stall_ms,
                              std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.write_stall_ms));
  }
  return Status::OK();
}

Status DB::Write(const WriteOptions& options, WriteBatch* batch) {
  Status stall = MaybeStallForSpace();
  if (!stall.ok()) return stall;
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
    Status s = FlushMemTableLocked();
    if (!s.ok()) return s;
  }
  const SequenceNumber seq = versions_->last_sequence() + 1;
  batch->set_sequence(seq);
  versions_->set_last_sequence(seq + batch->Count() - 1);
  Status s = log_->AddRecord(batch->Contents());
  if (!s.ok()) {
    // The WAL may hold a torn record and the log writer's block state no
    // longer matches the file: wedge until Resume() switches logs. The
    // record was never inserted into the memtable, so nothing unacked
    // becomes visible.
    SetBackgroundErrorLocked(s);
    return s;
  }
  if (options.sync || options_.sync_wal) {
    s = logfile_->Sync();
    if (!s.ok()) {
      SetBackgroundErrorLocked(s);
      return s;
    }
  }
  return WriteBatch::InsertInto(*batch, mem_.get());
}

Status DB::Get(const ReadOptions& options_in, const Slice& key,
               std::string* value) {
  ReadOptions options = options_in;
  if (options_.paranoid_checks) options.verify_checksums = true;
  std::unique_lock<std::mutex> lock(mu_);
  stats_.point_gets.fetch_add(1, std::memory_order_relaxed);
  const SequenceNumber snapshot = versions_->last_sequence();
  Status s;
  if (mem_->Get(key, snapshot, value, &s)) {
    return s;
  }
  // Copy file metadata, then search tables without the mutex (the table
  // cache has its own lock, and Table objects are immutable).
  Version version = versions_->current();
  lock.unlock();

  const std::string lookup = MakeLookupKey(key, snapshot);

  auto check_file = [&](const FileMetaData& f, bool* done) -> Status {
    std::shared_ptr<Table> table;
    Status ts = table_cache_->Get(f.number, &table);
    if (!ts.ok()) return ts;
    bool found = false;
    std::string result_key, result_value;
    ts = table->InternalGet(options, Slice(lookup), &found, &result_key,
                            &result_value);
    if (!ts.ok()) return ts;
    if (found && ExtractUserKey(Slice(result_key)) == key) {
      *done = true;
      if (ExtractValueType(Slice(result_key)) == kTypeDeletion) {
        return Status::NotFound("deleted");
      }
      value->assign(result_value);
      return Status::OK();
    }
    *done = false;
    return Status::OK();
  };

  // Level 0: newest file first (highest number).
  std::vector<FileMetaData> l0 = version.files[0];
  std::sort(l0.begin(), l0.end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number > b.number;
            });
  for (const FileMetaData& f : l0) {
    if (key.compare(ExtractUserKey(Slice(f.smallest))) < 0 ||
        key.compare(ExtractUserKey(Slice(f.largest))) > 0) {
      continue;
    }
    bool done = false;
    s = check_file(f, &done);
    if (done || !s.ok()) return s;
  }
  // Deeper levels: at most one file can contain the key.
  for (int level = 1; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      if (key.compare(ExtractUserKey(Slice(f.smallest))) < 0) break;
      if (key.compare(ExtractUserKey(Slice(f.largest))) > 0) continue;
      bool done = false;
      s = check_file(f, &done);
      if (done || !s.ok()) return s;
      break;
    }
  }
  return Status::NotFound("key not found");
}

Iterator* DB::NewIterator(const ReadOptions& options_in) {
  ReadOptions options = options_in;
  if (options_.paranoid_checks) options.verify_checksums = true;
  std::unique_lock<std::mutex> lock(mu_);
  stats_.range_scans.fetch_add(1, std::memory_order_relaxed);
  const SequenceNumber snapshot = versions_->last_sequence();
  Version version = versions_->current();
  std::vector<Iterator*> children;
  children.push_back(new MemOwningIterator(mem_));
  lock.unlock();

  for (int level = 0; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      std::shared_ptr<Table> table;
      Status s = table_cache_->Get(f.number, &table);
      if (!s.ok()) {
        for (Iterator* child : children) delete child;
        return NewEmptyIterator(s);
      }
      children.push_back(new TableOwningIterator(std::move(table), options));
    }
  }
  return new DBIterator(NewMergingIterator(std::move(children)), snapshot,
                        &stats_);
}

Status DB::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  return FlushMemTableLocked();
}

Status DB::FlushMemTableLocked() {
  if (mem_->empty()) return MaybeCompactLocked();
  Status s = WriteLevel0TableLocked(mem_.get());
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  mem_ = std::make_shared<MemTable>();
  s = SwitchToNewLog();
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  s = versions_->WriteSnapshot();
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  RemoveObsoleteFilesLocked();
  return MaybeCompactLocked();
}

Status DB::WriteLevel0TableLocked(MemTable* mem) {
  const uint64_t file_number = versions_->NewFileNumber();
  const std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  TableBuilder builder(options_, file.get());
  std::unique_ptr<Iterator> iter(mem->NewIterator());
  FileMetaData meta;
  meta.number = file_number;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (meta.smallest.empty()) {
      meta.smallest = iter->key().ToString();
    }
    meta.largest = iter->key().ToString();
    builder.Add(iter->key(), iter->value());
  }
  s = builder.Finish();
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    // Reclaim the partial output: it is unreferenced, and under disk
    // exhaustion leaving it would eat the headroom Resume() needs.
    file.reset();
    env_->RemoveFile(fname);
    return s;
  }
  meta.file_size = builder.FileSize();
  versions_->mutable_current()->files[0].push_back(std::move(meta));
  return Status::OK();
}

Status DB::MaybeCompactLocked() {
  // Compactions temporarily double the bytes they rewrite; deferring
  // them below the soft watermark keeps the last headroom for WAL
  // appends and memtable flushes. Resume() retries deferred work.
  if (BelowSoftWatermark()) return Status::OK();
  for (;;) {
    const int level = versions_->PickCompactionLevel(
        options_.l0_compaction_trigger, options_.max_bytes_for_level_base);
    if (level < 0) return Status::OK();
    Status s = CompactLevelLocked(level);
    if (!s.ok()) {
      SetBackgroundErrorLocked(s);
      return s;
    }
  }
}

Status DB::CompactRange() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  Status s = Status::OK();
  if (!mem_->empty()) {
    s = FlushMemTableLocked();
    if (!s.ok()) return s;
  }
  for (int level = 0; level < kNumLevels - 1; ++level) {
    while (versions_->current().NumFiles(level) > 0) {
      s = CompactLevelLocked(level);
      if (!s.ok()) {
        SetBackgroundErrorLocked(s);
        return s;
      }
    }
  }
  return s;
}

Status DB::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.resume_attempts.fetch_add(1, std::memory_order_relaxed);
  if (bg_error_.ok()) return Status::OK();

  // Order matters for not losing acked rows. (1) A fresh WAL first: the
  // current one may carry a torn record from the failed append and the
  // log writer's block offsets no longer match the file. The on-disk
  // manifest still points at the old log until (3), so a crash anywhere
  // in between replays the old WAL and loses nothing. (2) Flush the
  // memtable: acked rows must not depend on the WAL being abandoned.
  // (3) Persist + re-verify the manifest; only then clear the error.
  Status s = SwitchToNewLog();
  if (!s.ok()) return s.WithContext("resume: new WAL");
  if (!mem_->empty()) {
    s = WriteLevel0TableLocked(mem_.get());
    if (!s.ok()) return s.WithContext("resume: flush");
    mem_ = std::make_shared<MemTable>();
  }
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s.WithContext("resume: manifest");
  RemoveObsoleteFilesLocked();
  VersionSet check(dbname_, env_);
  bool found_manifest = false;
  s = check.Recover(&found_manifest);
  if (!s.ok()) return s.WithContext("resume: manifest verify");

  bg_error_ = Status::OK();
  // Catch up on work deferred or failed while wedged; a failure here
  // re-wedges via the usual path.
  s = MaybeCompactLocked();
  if (!s.ok()) return s.WithContext("resume: compaction");
  return Status::OK();
}

Status DB::CompactLevelLocked(int level) {
  Version* current = versions_->mutable_current();
  std::vector<FileMetaData> inputs0;
  if (level == 0) {
    inputs0 = current->files[0];  // L0 files overlap; take them all
  } else {
    if (current->files[level].empty()) return Status::OK();
    inputs0.push_back(current->files[level].front());
  }
  if (inputs0.empty()) return Status::OK();

  // Key range of the inputs, as user keys.
  std::string smallest = ExtractUserKey(Slice(inputs0[0].smallest)).ToString();
  std::string largest = ExtractUserKey(Slice(inputs0[0].largest)).ToString();
  for (const FileMetaData& f : inputs0) {
    const std::string fs = ExtractUserKey(Slice(f.smallest)).ToString();
    const std::string fl = ExtractUserKey(Slice(f.largest)).ToString();
    if (fs < smallest) smallest = fs;
    if (fl > largest) largest = fl;
  }
  std::vector<FileMetaData> inputs1 =
      current->Overlapping(level + 1, Slice(smallest), Slice(largest));

  // Tombstones can be dropped when no deeper level holds this key range.
  // The range must cover inputs1 too: those files extend beyond inputs0's
  // range, and a tombstone from them dropped here while an older value
  // survives deeper would resurrect the deleted key.
  for (const FileMetaData& f : inputs1) {
    const std::string fs = ExtractUserKey(Slice(f.smallest)).ToString();
    const std::string fl = ExtractUserKey(Slice(f.largest)).ToString();
    if (fs < smallest) smallest = fs;
    if (fl > largest) largest = fl;
  }
  bool bottom_most = true;
  for (int deeper = level + 2; deeper < kNumLevels; ++deeper) {
    if (!current->Overlapping(deeper, Slice(smallest), Slice(largest))
             .empty()) {
      bottom_most = false;
      break;
    }
  }

  // Merge all inputs in internal-key order. Checksums are always
  // verified here: a compaction that rewrites a corrupt block would
  // launder the corruption into a fresh, well-checksummed file.
  ReadOptions read_options;
  read_options.fill_cache = false;
  read_options.verify_checksums = true;
  std::vector<Iterator*> children;
  auto add_children = [&](const std::vector<FileMetaData>& files) -> Status {
    for (const FileMetaData& f : files) {
      std::shared_ptr<Table> table;
      Status s = table_cache_->Get(f.number, &table);
      if (!s.ok()) return s;
      children.push_back(new TableOwningIterator(std::move(table),
                                                 read_options));
    }
    return Status::OK();
  };
  Status s = add_children(inputs0);
  if (s.ok()) s = add_children(inputs1);
  if (!s.ok()) {
    for (Iterator* child : children) delete child;
    return s;
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(std::move(children)));

  std::vector<FileMetaData> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData out_meta;

  // On failure every output is discarded — inputs stay installed, so the
  // partial work is only wasted bytes, and reclaiming them matters when
  // the failure *is* disk exhaustion.
  auto discard_outputs = [&]() {
    const bool partial_open = builder != nullptr;
    builder.reset();
    out_file.reset();
    if (partial_open) {
      env_->RemoveFile(TableFileName(dbname_, out_meta.number));
    }
    for (const FileMetaData& f : outputs) {
      env_->RemoveFile(TableFileName(dbname_, f.number));
    }
  };

  auto open_output = [&]() -> Status {
    out_meta = FileMetaData{};
    out_meta.number = versions_->NewFileNumber();
    Status os = env_->NewWritableFile(TableFileName(dbname_, out_meta.number),
                                      &out_file);
    if (!os.ok()) return os;
    builder = std::make_unique<TableBuilder>(options_, out_file.get());
    return Status::OK();
  };
  auto finish_output = [&]() -> Status {
    if (!builder) return Status::OK();
    if (builder->NumEntries() == 0) {
      builder.reset();
      out_file.reset();
      env_->RemoveFile(TableFileName(dbname_, out_meta.number));
      return Status::OK();
    }
    Status os = builder->Finish();
    if (!os.ok()) return os;
    os = out_file->Sync();
    if (os.ok()) os = out_file->Close();
    if (!os.ok()) return os;
    out_meta.file_size = builder->FileSize();
    outputs.push_back(out_meta);
    builder.reset();
    out_file.reset();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    const Slice ikey = merged->key();
    const Slice user_key = ExtractUserKey(ikey);
    if (has_current_user_key && user_key == Slice(current_user_key)) {
      continue;  // older, shadowed version
    }
    current_user_key.assign(user_key.data(), user_key.size());
    has_current_user_key = true;
    if (bottom_most && ExtractValueType(ikey) == kTypeDeletion) {
      continue;  // tombstone with nothing underneath
    }
    if (!builder) {
      s = open_output();
      if (!s.ok()) {
        discard_outputs();
        return s;
      }
    }
    if (out_meta.smallest.empty()) {
      out_meta.smallest = ikey.ToString();
    }
    out_meta.largest = ikey.ToString();
    builder->Add(ikey, merged->value());
    if (builder->FileSize() >= options_.target_file_size) {
      s = finish_output();
      if (!s.ok()) {
        discard_outputs();
        return s;
      }
    }
  }
  if (!merged->status().ok()) {
    discard_outputs();
    return merged->status();
  }
  s = finish_output();
  if (!s.ok()) {
    discard_outputs();
    return s;
  }

  // Install: drop inputs, add outputs to level+1, keep level+1 sorted.
  auto remove_files = [](std::vector<FileMetaData>* files,
                         const std::vector<FileMetaData>& to_remove) {
    files->erase(std::remove_if(files->begin(), files->end(),
                                [&](const FileMetaData& f) {
                                  for (const FileMetaData& r : to_remove) {
                                    if (r.number == f.number) return true;
                                  }
                                  return false;
                                }),
                 files->end());
  };
  remove_files(&current->files[level], inputs0);
  remove_files(&current->files[level + 1], inputs1);
  for (FileMetaData& f : outputs) {
    current->files[level + 1].push_back(std::move(f));
  }
  std::sort(current->files[level + 1].begin(),
            current->files[level + 1].end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
            });
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  for (const FileMetaData& f : inputs0) {
    table_cache_->Evict(f.number);
    block_cache_.EvictFile(f.number);
    env_->RemoveFile(TableFileName(dbname_, f.number));
  }
  for (const FileMetaData& f : inputs1) {
    table_cache_->Evict(f.number);
    block_cache_.EvictFile(f.number);
    env_->RemoveFile(TableFileName(dbname_, f.number));
  }
  return Status::OK();
}

void DB::RemoveObsoleteFilesLocked() {
  std::vector<std::string> children;
  if (!env_->GetChildren(dbname_, &children).ok()) return;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    if (type == FileType::kLogFile && number < logfile_number_) {
      env_->RemoveFile(dbname_ + "/" + child);
    }
  }
}

namespace {

// Walks every block of the SSTable at `fname` — footer, filter, index,
// and all data blocks — verifying checksums. Reads go straight to the
// env (no table/block cache) so the bytes on disk are what is checked.
Status ScrubTableFile(Env* env, const std::string& fname, IoStats* stats) {
  auto count_verification = [&] {
    if (stats) {
      stats->checksum_verifications.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto count_corruption = [&](const Status& s) {
    if (stats && s.IsCorruption()) {
      stats->corruptions_detected.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  };

  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  const uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return count_corruption(
        Status::Corruption("file is too short to be an sstable"));
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) return s;
  if (footer_input.size() != Footer::kEncodedLength) {
    return count_corruption(Status::Corruption("truncated footer read"));
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return count_corruption(s);

  ReadOptions opts;
  opts.verify_checksums = true;
  auto verify_block = [&](const BlockHandle& handle,
                          BlockContents* out) -> Status {
    count_verification();
    return count_corruption(ReadBlock(file.get(), opts, handle, out));
  };

  if (footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    s = verify_block(footer.filter_handle(), &filter_contents);
    if (!s.ok()) return s;
  }
  BlockContents index_contents;
  s = verify_block(footer.index_handle(), &index_contents);
  if (!s.ok()) return s;
  Block index_block(std::move(index_contents.data));
  std::unique_ptr<Iterator> index_iter(index_block.NewIterator());
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    s = handle.DecodeFrom(&input);
    if (!s.ok()) return count_corruption(s);
    BlockContents data_contents;
    s = verify_block(handle, &data_contents);
    if (!s.ok()) return s;
  }
  return index_iter->status();
}

// Reads the whole table at `fname` with checksums on, filling *meta's
// key range and bumping *max_sequence. Any failure means the table is
// not salvageable as-is.
Status SalvageTable(Env* env, const Options& options, uint64_t number,
                    const std::string& fname, FileMetaData* meta,
                    SequenceNumber* max_sequence) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  std::unique_ptr<Table> table;
  s = Table::Open(options, number, std::move(file), nullptr, nullptr,
                  &table);
  if (!s.ok()) return s;
  ReadOptions opts;
  opts.verify_checksums = true;
  opts.fill_cache = false;
  std::unique_ptr<Iterator> iter(table->NewIterator(opts));
  uint64_t entries = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const Slice ikey = iter->key();
    if (ikey.size() < 8) {
      return Status::Corruption("malformed internal key");
    }
    if (meta->smallest.empty()) meta->smallest = ikey.ToString();
    meta->largest = ikey.ToString();
    *max_sequence = std::max(*max_sequence, ExtractSequence(ikey));
    ++entries;
  }
  if (!iter->status().ok()) return iter->status();
  if (entries == 0) return Status::Corruption("table has no entries");
  return env->GetFileSize(fname, &meta->file_size);
}

}  // namespace

Status DB::VerifyIntegrity() {
  Version version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = versions_->current();
  }
  for (int level = 0; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      const std::string fname = TableFileName(dbname_, f.number);
      Status s = ScrubTableFile(env_, fname, &stats_);
      if (!s.ok()) return s.WithContext(fname);
    }
  }
  // The on-disk manifest must itself parse back.
  VersionSet check(dbname_, env_);
  bool found_manifest = false;
  Status s = check.Recover(&found_manifest);
  if (!s.ok()) return s.WithContext(dbname_ + ": manifest");
  return Status::OK();
}

Status DB::Repair(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (!env->FileExists(name)) {
    return Status::InvalidArgument(name + " does not exist");
  }
  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (!s.ok()) return s;

  std::vector<uint64_t> tables;
  uint64_t max_number = 0;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    max_number = std::max(max_number, number);
    if (type == FileType::kTableFile) tables.push_back(number);
  }
  std::sort(tables.begin(), tables.end());

  // Salvage every table that still passes a full checksum walk; install
  // the survivors at level 0, where overlapping key ranges are legal and
  // higher file numbers shadow lower ones — matching write order.
  VersionSet versions(name, env);
  SequenceNumber max_sequence = 0;
  for (uint64_t number : tables) {
    const std::string fname = TableFileName(name, number);
    FileMetaData meta;
    meta.number = number;
    Status ts =
        SalvageTable(env, options, number, fname, &meta, &max_sequence);
    if (!ts.ok()) {
      // Quarantine rather than delete: .bad files are invisible to the
      // store but preserved for forensics.
      env->RenameFile(fname, fname + ".bad");
      continue;
    }
    versions.mutable_current()->files[0].push_back(std::move(meta));
  }
  versions.BumpFileNumber(max_number);
  versions.set_last_sequence(max_sequence);
  // Log number 0 means every surviving WAL replays on the next Open;
  // records already flushed into tables re-apply at their original
  // sequence numbers, which is idempotent.
  versions.set_log_number(0);
  return versions.WriteSnapshot();
}

int DB::NumFilesAtLevel(int level) const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_->current().NumFiles(level);
}

uint64_t DB::TotalTableBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (int level = 0; level < kNumLevels; ++level) {
    total += versions_->current().LevelBytes(level);
  }
  return total;
}

}  // namespace kv
}  // namespace trass
