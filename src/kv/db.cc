#include "kv/db.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "kv/filename.h"
#include "kv/log_reader.h"
#include "kv/merging_iterator.h"
#include "kv/table_builder.h"

namespace trass {
namespace kv {

namespace {

// Accumulates a whole SSTable in memory so it lands on disk as a single
// append + sync (the NaiveKV single-buffer build): the builder's many
// small appends never touch the filesystem, which keeps the lock-free
// compaction build phase out of the syscall path entirely.
class MemoryBufferFile final : public WritableFile {
 public:
  Status Append(const Slice& data) override {
    data_.append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

  const std::string& data() const { return data_; }

 private:
  std::string data_;
};

// Writes a fully built table image to `fname` as one append+sync+close;
// removes the partial file on failure (under disk exhaustion leaving it
// would eat the headroom Resume() needs).
Status WriteTableFile(Env* env, const std::string& fname,
                      const Slice& contents) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(contents);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    file.reset();
    env->RemoveFile(fname);
  }
  return s;
}

// Iterator over one SSTable that keeps the table reader alive.
class TableOwningIterator final : public Iterator {
 public:
  TableOwningIterator(std::shared_ptr<Table> table, const ReadOptions& options)
      : table_(std::move(table)), iter_(table_->NewIterator(options)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<Table> table_;
  std::unique_ptr<Iterator> iter_;
};

// Iterator over a memtable that keeps the memtable alive, so a flush
// replacing DB::mem_ cannot destroy it under a live scan.
class MemOwningIterator final : public Iterator {
 public:
  explicit MemOwningIterator(std::shared_ptr<MemTable> mem)
      : mem_(std::move(mem)), iter_(mem_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<Iterator> iter_;
};

// User-facing iterator: collapses internal-key versions into the newest
// visible value per user key and hides deletions.
class DBIterator final : public Iterator {
 public:
  DBIterator(Iterator* internal, SequenceNumber sequence, IoStats* stats)
      : internal_(internal), sequence_(sequence), stats_(stats) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry(/*skip_current_user_key=*/false);
  }

  void Seek(const Slice& target) override {
    internal_->Seek(MakeLookupKey(target, sequence_));
    FindNextUserEntry(/*skip_current_user_key=*/false);
  }

  void Next() override {
    // Skip the remaining (older) versions of the current user key.
    saved_key_.assign(key().data(), key().size());
    internal_->Next();
    FindNextUserEntry(/*skip_current_user_key=*/true);
  }

  Slice key() const override { return ExtractUserKey(internal_->key()); }
  Slice value() const override { return internal_->value(); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry(bool skip_current_user_key) {
    valid_ = false;
    std::string deleted_key;
    bool have_deleted_key = false;
    while (internal_->Valid()) {
      const Slice ikey = internal_->key();
      if (ExtractSequence(ikey) > sequence_) {
        internal_->Next();
        continue;
      }
      const Slice user_key = ExtractUserKey(ikey);
      if (skip_current_user_key && user_key == Slice(saved_key_)) {
        internal_->Next();
        continue;
      }
      skip_current_user_key = false;
      if (have_deleted_key && user_key == Slice(deleted_key)) {
        internal_->Next();
        continue;
      }
      if (ExtractValueType(ikey) == kTypeDeletion) {
        deleted_key.assign(user_key.data(), user_key.size());
        have_deleted_key = true;
        internal_->Next();
        continue;
      }
      valid_ = true;
      if (stats_) {
        stats_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  const SequenceNumber sequence_;
  IoStats* const stats_;
  bool valid_ = false;
  std::string saved_key_;
};

}  // namespace

DB::DB(const Options& options, std::string name)
    : options_(options),
      dbname_(std::move(name)),
      env_(options.env != nullptr ? options.env : Env::Default()),
      mem_(std::make_shared<MemTable>()),
      block_cache_(options.block_cache_size) {
  options_.env = env_;
  versions_ = std::make_unique<VersionSet>(dbname_, env_);
  table_cache_ =
      std::make_unique<TableCache>(dbname_, options_, &block_cache_, &stats_);
}

DB::~DB() {
  // Stop the compaction thread first: it aborts any in-flight merge at
  // the next entry boundary (discarding outputs — inputs are still
  // installed, so nothing is lost) and must be joined outside mu_.
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_.store(true, std::memory_order_relaxed);
    bg_cv_.notify_all();
    compaction_done_cv_.notify_all();
  }
  if (compaction_thread_.joinable()) compaction_thread_.join();

  // Best-effort final flush so short-lived DBs persist their tail writes.
  // Skipped while wedged: flushing through a background error would just
  // fail again, and the WAL already holds whatever was acked.
  std::lock_guard<std::mutex> lock(mu_);
  if (bg_error_.ok() && !mem_->empty()) {
    FlushMemTableLocked();
  }
  // No readers can remain: drop tables whose deletion was deferred.
  std::vector<uint64_t> leftovers;
  leftovers.swap(obsolete_tables_);
  DropObsoleteTables(leftovers);
}

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* db) {
  db->reset();
  std::unique_ptr<DB> impl(new DB(options, name));
  Env* env = impl->env_;
  if (!env->FileExists(name)) {
    if (!options.create_if_missing) {
      return Status::InvalidArgument(name + " does not exist");
    }
    Status s = env->CreateDir(name);
    if (!s.ok()) return s;
  }
  bool found_manifest = false;
  Status s = impl->versions_->Recover(&found_manifest);
  if (!s.ok()) return s;
  s = impl->RecoverLogs();
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(impl->mu_);
    // Persist any replayed writes and start a fresh WAL.
    if (!impl->mem_->empty()) {
      s = impl->FlushMemTableLocked();
      if (!s.ok()) return s;
    }
    s = impl->SwitchToNewLog();
    if (!s.ok()) return s;
    s = impl->versions_->WriteSnapshot();
    if (!s.ok()) return s;
    impl->RemoveObsoleteFilesLocked();
  }
  if (impl->options_.background_compaction) {
    impl->compaction_thread_ =
        std::thread(&DB::CompactionThreadMain, impl.get());
  }
  *db = std::move(impl);
  return Status::OK();
}

Status DB::RecoverLogs() {
  std::vector<std::string> children;
  Status s = env_->GetChildren(dbname_, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> logs;
  uint64_t max_number = 0;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    max_number = std::max(max_number, number);
    if (type == FileType::kLogFile && number >= versions_->log_number()) {
      logs.push_back(number);
    }
  }
  versions_->BumpFileNumber(max_number);
  std::sort(logs.begin(), logs.end());
  SequenceNumber max_sequence = versions_->last_sequence();
  for (uint64_t log_number : logs) {
    const std::string log_name = LogFileName(dbname_, log_number);
    std::unique_ptr<SequentialFile> file;
    s = env_->NewSequentialFile(log_name, &file);
    if (!s.ok()) return s;
    log::Reader reader(file.get());
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) continue;  // truncated batch header
      WriteBatch batch = WriteBatch::FromContents(record);
      s = WriteBatch::InsertInto(batch, mem_.get());
      if (!s.ok()) return s;
      const SequenceNumber last_in_batch =
          batch.sequence() + batch.Count() - 1;
      max_sequence = std::max(max_sequence, last_in_batch);
    }
    // A torn tail is the expected shape of a crash and recovery stops at
    // it; under paranoid_checks it is reported instead of tolerated.
    if (reader.corruption_detected() && options_.paranoid_checks) {
      return Status::Corruption("WAL corruption").WithContext(log_name);
    }
  }
  versions_->set_last_sequence(max_sequence);
  return Status::OK();
}

Status DB::SwitchToNewLog() {
  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &file);
  if (!s.ok()) return s;
  logfile_ = std::move(file);
  log_ = std::make_unique<log::Writer>(logfile_.get());
  logfile_number_ = new_log_number;
  versions_->set_log_number(new_log_number);
  return Status::OK();
}

Status DB::Put(const WriteOptions& options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

void DB::SetBackgroundErrorLocked(const Status& s) {
  if (s.ok() || !bg_error_.ok()) return;  // first error sticks
  bg_error_ = s;
  stats_.background_errors.fetch_add(1, std::memory_order_relaxed);
  // Wake anything waiting on compaction progress (L0-stalled writers,
  // CompactRange waiting for the slot): progress is not coming.
  bg_cv_.notify_all();
  compaction_done_cv_.notify_all();
}

Status DB::background_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bg_error_;
}

bool DB::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !bg_error_.ok();
}

bool DB::BelowSoftWatermark() const {
  if (options_.soft_space_watermark_bytes == 0) return false;
  uint64_t free_bytes = 0;
  if (!env_->GetFreeDiskSpace(dbname_, &free_bytes).ok()) return false;
  return free_bytes <= options_.soft_space_watermark_bytes;
}

Status DB::MaybeStallForSpace() {
  if (options_.soft_space_watermark_bytes == 0 &&
      options_.hard_space_watermark_bytes == 0) {
    return Status::OK();
  }
  uint64_t free_bytes = 0;
  if (!env_->GetFreeDiskSpace(dbname_, &free_bytes).ok()) {
    return Status::OK();  // unknown space: don't block the write path
  }
  if (options_.hard_space_watermark_bytes > 0 &&
      free_bytes <= options_.hard_space_watermark_bytes) {
    // Shed before the WAL is touched: no torn record, no sticky error —
    // writes come back by themselves once space is freed.
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    return Status::NoSpace(dbname_ + ": free space " +
                           std::to_string(free_bytes) +
                           " below hard watermark " +
                           std::to_string(options_.hard_space_watermark_bytes));
  }
  if (options_.soft_space_watermark_bytes > 0 &&
      free_bytes <= options_.soft_space_watermark_bytes &&
      options_.write_stall_ms > 0) {
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    stats_.stall_ms.fetch_add(options_.write_stall_ms,
                              std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.write_stall_ms));
  }
  return Status::OK();
}

void DB::MaybeThrottleForL0() {
  if (!options_.background_compaction) return;
  const int slowdown = options_.l0_slowdown_trigger;
  const int stop = options_.l0_stop_trigger;
  if (slowdown <= 0 && stop <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (!bg_error_.ok()) return;  // the write will fail fast under mu_
  const int l0 = versions_->current().NumFiles(0);
  if (stop > 0 && l0 >= stop) {
    // Hard stop: block until a compaction shrinks L0. Escape hatches:
    // the DB wedges (no progress is coming), shutdown, or compactions
    // are being deferred below the soft watermark (blocking would wait
    // on work that is intentionally not running).
    compaction_scheduled_ = true;
    bg_cv_.notify_one();
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    compaction_done_cv_.wait(lock, [&] {
      return versions_->current().NumFiles(0) < stop || !bg_error_.ok() ||
             shutting_down_.load(std::memory_order_relaxed) ||
             BelowSoftWatermark();
    });
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    stats_.stall_ms.fetch_add(static_cast<uint64_t>(elapsed.count()),
                              std::memory_order_relaxed);
  } else if (slowdown > 0 && l0 >= slowdown && options_.write_stall_ms > 0) {
    // Soft slowdown: one bounded sleep per write, off the mutex.
    lock.unlock();
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    stats_.stall_ms.fetch_add(options_.write_stall_ms,
                              std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.write_stall_ms));
  }
}

Status DB::Write(const WriteOptions& options, WriteBatch* batch) {
  Status stall = MaybeStallForSpace();
  if (!stall.ok()) return stall;
  MaybeThrottleForL0();
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
    Status s = FlushMemTableLocked();
    if (!s.ok()) return s;
  }
  const SequenceNumber seq = versions_->last_sequence() + 1;
  batch->set_sequence(seq);
  versions_->set_last_sequence(seq + batch->Count() - 1);
  Status s = log_->AddRecord(batch->Contents());
  if (!s.ok()) {
    // The WAL may hold a torn record and the log writer's block state no
    // longer matches the file: wedge until Resume() switches logs. The
    // record was never inserted into the memtable, so nothing unacked
    // becomes visible.
    SetBackgroundErrorLocked(s);
    return s;
  }
  if (options.sync || options_.sync_wal) {
    s = logfile_->Sync();
    if (!s.ok()) {
      SetBackgroundErrorLocked(s);
      return s;
    }
  }
  return WriteBatch::InsertInto(*batch, mem_.get());
}

Status DB::Get(const ReadOptions& options_in, const Slice& key,
               std::string* value) {
  ReadOptions options = options_in;
  if (options_.paranoid_checks) options.verify_checksums = true;
  std::unique_lock<std::mutex> lock(mu_);
  stats_.point_gets.fetch_add(1, std::memory_order_relaxed);
  const SequenceNumber snapshot = versions_->last_sequence();
  Status s;
  if (mem_->Get(key, snapshot, value, &s)) {
    return s;
  }
  // Copy file metadata, then search tables without the mutex (the table
  // cache has its own lock, and Table objects are immutable). The pin
  // keeps files of this version on disk even if a background compaction
  // replaces them mid-lookup.
  Version version = versions_->current();
  ScopedVersionPin pin(this);
  lock.unlock();

  const std::string lookup = MakeLookupKey(key, snapshot);

  auto check_file = [&](const FileMetaData& f, bool* done) -> Status {
    std::shared_ptr<Table> table;
    Status ts = table_cache_->Get(f.number, &table);
    if (!ts.ok()) return ts;
    bool found = false;
    std::string result_key, result_value;
    ts = table->InternalGet(options, Slice(lookup), &found, &result_key,
                            &result_value);
    if (!ts.ok()) return ts;
    if (found && ExtractUserKey(Slice(result_key)) == key) {
      *done = true;
      if (ExtractValueType(Slice(result_key)) == kTypeDeletion) {
        return Status::NotFound("deleted");
      }
      value->assign(result_value);
      return Status::OK();
    }
    *done = false;
    return Status::OK();
  };

  // Level 0: newest file first (highest number).
  std::vector<FileMetaData> l0 = version.files[0];
  std::sort(l0.begin(), l0.end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number > b.number;
            });
  for (const FileMetaData& f : l0) {
    if (key.compare(ExtractUserKey(Slice(f.smallest))) < 0 ||
        key.compare(ExtractUserKey(Slice(f.largest))) > 0) {
      continue;
    }
    bool done = false;
    s = check_file(f, &done);
    if (done || !s.ok()) return s;
  }
  // Deeper levels: at most one file can contain the key.
  for (int level = 1; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      if (key.compare(ExtractUserKey(Slice(f.smallest))) < 0) break;
      if (key.compare(ExtractUserKey(Slice(f.largest))) > 0) continue;
      bool done = false;
      s = check_file(f, &done);
      if (done || !s.ok()) return s;
      break;
    }
  }
  return Status::NotFound("key not found");
}

Iterator* DB::NewIterator(const ReadOptions& options_in) {
  ReadOptions options = options_in;
  if (options_.paranoid_checks) options.verify_checksums = true;
  if (options.readahead_bytes == 0) {
    options.readahead_bytes = options_.scan_readahead_bytes;
  }
  std::unique_lock<std::mutex> lock(mu_);
  stats_.range_scans.fetch_add(1, std::memory_order_relaxed);
  const SequenceNumber snapshot = versions_->last_sequence();
  Version version = versions_->current();
  // Pin until every table is opened: an opened Table keeps its file
  // handle, which stays readable even after the file is unlinked.
  ScopedVersionPin pin(this);
  std::vector<Iterator*> children;
  children.push_back(new MemOwningIterator(mem_));
  lock.unlock();

  for (int level = 0; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      std::shared_ptr<Table> table;
      Status s = table_cache_->Get(f.number, &table);
      if (!s.ok()) {
        for (Iterator* child : children) delete child;
        return NewEmptyIterator(s);
      }
      children.push_back(new TableOwningIterator(std::move(table), options));
    }
  }
  return new DBIterator(NewMergingIterator(std::move(children)), snapshot,
                        &stats_);
}

Status DB::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  return FlushMemTableLocked();
}

Status DB::FlushMemTableLocked() {
  if (mem_->empty()) return MaybeCompactLocked();
  Status s = WriteLevel0TableLocked(mem_.get());
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  mem_ = std::make_shared<MemTable>();
  s = SwitchToNewLog();
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  s = versions_->WriteSnapshot();
  if (!s.ok()) {
    SetBackgroundErrorLocked(s);
    return s;
  }
  RemoveObsoleteFilesLocked();
  return MaybeCompactLocked();
}

Status DB::WriteLevel0TableLocked(MemTable* mem) {
  const uint64_t file_number = versions_->NewFileNumber();
  const std::string fname = TableFileName(dbname_, file_number);
  // Single-buffer build: the whole table is assembled in memory and hits
  // the filesystem as one append+sync (partial output removed on
  // failure by WriteTableFile).
  MemoryBufferFile buffer;
  TableBuilder builder(options_, &buffer);
  std::unique_ptr<Iterator> iter(mem->NewIterator());
  FileMetaData meta;
  meta.number = file_number;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (meta.smallest.empty()) {
      meta.smallest = iter->key().ToString();
    }
    meta.largest = iter->key().ToString();
    builder.Add(iter->key(), iter->value());
  }
  Status s = builder.Finish();
  if (s.ok()) s = WriteTableFile(env_, fname, Slice(buffer.data()));
  if (!s.ok()) return s;
  meta.file_size = builder.FileSize();
  versions_->mutable_current()->files[0].push_back(std::move(meta));
  return Status::OK();
}

Status DB::MaybeCompactLocked() {
  if (options_.background_compaction) {
    if (shutting_down_.load(std::memory_order_relaxed)) return Status::OK();
    // Hand the work to the compaction thread; it re-checks the error
    // state and watermarks when it wakes. Always OK from the writer's
    // point of view — a failed background compaction wedges via the
    // sticky error, not via the triggering write's return value.
    compaction_scheduled_ = true;
    bg_cv_.notify_one();
    return Status::OK();
  }
  // Synchronous mode: compact inline under mu_ on the writing thread.
  // Compactions temporarily double the bytes they rewrite; deferring
  // them below the soft watermark keeps the last headroom for WAL
  // appends and memtable flushes. Resume() retries deferred work.
  if (BelowSoftWatermark()) return Status::OK();
  for (;;) {
    const int level = versions_->PickCompactionLevel(
        options_.l0_compaction_trigger, options_.max_bytes_for_level_base);
    if (level < 0) return Status::OK();
    Status s = CompactOnce(nullptr, level);
    if (!s.ok()) {
      SetBackgroundErrorLocked(s);
      return s;
    }
  }
}

void DB::CompactionThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    bg_cv_.wait(lock, [&] {
      return shutting_down_.load(std::memory_order_relaxed) ||
             (compaction_scheduled_ && !compaction_active_);
    });
    if (shutting_down_.load(std::memory_order_relaxed)) break;
    compaction_scheduled_ = false;
    if (bg_error_.ok() && !BelowSoftWatermark()) {
      compaction_active_ = true;  // take the slot
      for (;;) {
        if (shutting_down_.load(std::memory_order_relaxed)) break;
        const int level = versions_->PickCompactionLevel(
            options_.l0_compaction_trigger, options_.max_bytes_for_level_base);
        if (level < 0) break;
        Status s = CompactOnce(&lock, level);
        if (shutting_down_.load(std::memory_order_relaxed)) break;
        if (!s.ok()) {
          // Same wedge semantics as a synchronous compaction failure:
          // the sticky error flips the DB read-only; deferred work is
          // caught up by Resume().
          SetBackgroundErrorLocked(s);
          break;
        }
      }
      compaction_active_ = false;
    }
    // Always wake waiters: either L0 shrank, the DB wedged, or the work
    // was deferred (soft watermark) and stalled writers must re-check
    // their escape hatches.
    compaction_done_cv_.notify_all();
  }
  compaction_done_cv_.notify_all();
}

void DB::WaitForCompactions() {
  std::unique_lock<std::mutex> lock(mu_);
  compaction_done_cv_.wait(lock, [&] {
    return (!compaction_active_ && !compaction_scheduled_) ||
           !bg_error_.ok() || shutting_down_.load(std::memory_order_relaxed);
  });
}

Status DB::CompactRange() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  // Take the compaction slot: wait out any in-flight background merge so
  // exactly one compaction is between pick and install at a time, then
  // run everything synchronously on this thread (under mu_) so failures
  // surface in this call's return value exactly as they always have.
  compaction_done_cv_.wait(lock, [&] {
    return !compaction_active_ || !bg_error_.ok();
  });
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("read-only (background error)");
  }
  compaction_active_ = true;
  Status s = Status::OK();
  if (!mem_->empty()) {
    s = FlushMemTableLocked();
  }
  if (s.ok()) {
    for (int level = 0; level < kNumLevels - 1 && s.ok(); ++level) {
      while (versions_->current().NumFiles(level) > 0) {
        s = CompactOnce(nullptr, level);
        if (!s.ok()) {
          SetBackgroundErrorLocked(s);
          break;
        }
      }
    }
  }
  compaction_active_ = false;
  if (s.ok()) compaction_scheduled_ = false;  // nothing left to do
  compaction_done_cv_.notify_all();
  return s;
}

Status DB::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.resume_attempts.fetch_add(1, std::memory_order_relaxed);
  if (bg_error_.ok()) return Status::OK();

  // Order matters for not losing acked rows. (1) A fresh WAL first: the
  // current one may carry a torn record from the failed append and the
  // log writer's block offsets no longer match the file. The on-disk
  // manifest still points at the old log until (3), so a crash anywhere
  // in between replays the old WAL and loses nothing. (2) Flush the
  // memtable: acked rows must not depend on the WAL being abandoned.
  // (3) Persist + re-verify the manifest; only then clear the error.
  Status s = SwitchToNewLog();
  if (!s.ok()) return s.WithContext("resume: new WAL");
  if (!mem_->empty()) {
    s = WriteLevel0TableLocked(mem_.get());
    if (!s.ok()) return s.WithContext("resume: flush");
    mem_ = std::make_shared<MemTable>();
  }
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s.WithContext("resume: manifest");
  RemoveObsoleteFilesLocked();
  VersionSet check(dbname_, env_);
  bool found_manifest = false;
  s = check.Recover(&found_manifest);
  if (!s.ok()) return s.WithContext("resume: manifest verify");

  bg_error_ = Status::OK();
  // Catch up on work deferred or failed while wedged; a failure here
  // re-wedges via the usual path.
  s = MaybeCompactLocked();
  if (!s.ok()) return s.WithContext("resume: compaction");
  return Status::OK();
}

Status DB::CompactOnce(std::unique_lock<std::mutex>* lock, int level) {
  CompactionJob job;
  if (!PickCompactionInputsLocked(level, &job)) return Status::OK();
  std::vector<FileMetaData> outputs;
  Status s = RunCompaction(lock, job, &outputs);
  if (!s.ok()) return s;
  return InstallCompactionLocked(job, &outputs);
}

bool DB::PickCompactionInputsLocked(int level, CompactionJob* job) {
  Version* current = versions_->mutable_current();
  job->level = level;
  if (level == 0) {
    job->inputs0 = current->files[0];  // L0 files overlap; take them all
  } else {
    if (current->files[level].empty()) return false;
    job->inputs0.push_back(current->files[level].front());
  }
  if (job->inputs0.empty()) return false;

  // Key range of the inputs, as user keys.
  std::string smallest =
      ExtractUserKey(Slice(job->inputs0[0].smallest)).ToString();
  std::string largest =
      ExtractUserKey(Slice(job->inputs0[0].largest)).ToString();
  for (const FileMetaData& f : job->inputs0) {
    const std::string fs = ExtractUserKey(Slice(f.smallest)).ToString();
    const std::string fl = ExtractUserKey(Slice(f.largest)).ToString();
    if (fs < smallest) smallest = fs;
    if (fl > largest) largest = fl;
  }
  job->inputs1 =
      current->Overlapping(level + 1, Slice(smallest), Slice(largest));

  // Tombstones can be dropped when no deeper level holds this key range.
  // The range must cover inputs1 too: those files extend beyond inputs0's
  // range, and a tombstone from them dropped here while an older value
  // survives deeper would resurrect the deleted key.
  for (const FileMetaData& f : job->inputs1) {
    const std::string fs = ExtractUserKey(Slice(f.smallest)).ToString();
    const std::string fl = ExtractUserKey(Slice(f.largest)).ToString();
    if (fs < smallest) smallest = fs;
    if (fl > largest) largest = fl;
  }
  // The deeper levels cannot change while this job runs: only
  // compactions write levels >= 1 and the slot serializes them, so the
  // bottom-most decision made here stays valid through install.
  job->bottom_most = true;
  for (int deeper = level + 2; deeper < kNumLevels; ++deeper) {
    if (!current->Overlapping(deeper, Slice(smallest), Slice(largest))
             .empty()) {
      job->bottom_most = false;
      break;
    }
  }
  return true;
}

uint64_t DB::AllocFileNumber(std::unique_lock<std::mutex>* lock) {
  if (lock == nullptr) return versions_->NewFileNumber();  // mu_ held
  lock->lock();
  const uint64_t number = versions_->NewFileNumber();
  lock->unlock();
  return number;
}

// Merge + build phase. Entered with mu_ held; when `lock` is non-null
// (background thread) the mutex is released for the whole merge and
// re-acquired before returning, so writes and reads proceed in parallel.
// Input tables are held via table-cache shared_ptrs, so a concurrent
// reader or cache eviction cannot pull them out from under the merge.
Status DB::RunCompaction(std::unique_lock<std::mutex>* lock,
                         const CompactionJob& job,
                         std::vector<FileMetaData>* outputs) {
  if (lock != nullptr) lock->unlock();

  // Merge all inputs in internal-key order. Checksums are always
  // verified here: a compaction that rewrites a corrupt block would
  // launder the corruption into a fresh, well-checksummed file.
  // Readahead streams the inputs through the reusable window buffer
  // instead of block-at-a-time preads (and never touches the cache).
  ReadOptions read_options;
  read_options.fill_cache = false;
  read_options.verify_checksums = true;
  read_options.readahead_bytes = options_.scan_readahead_bytes;
  std::vector<Iterator*> children;
  auto add_children = [&](const std::vector<FileMetaData>& files) -> Status {
    for (const FileMetaData& f : files) {
      std::shared_ptr<Table> table;
      Status s = table_cache_->Get(f.number, &table);
      if (!s.ok()) return s;
      children.push_back(new TableOwningIterator(std::move(table),
                                                 read_options));
    }
    return Status::OK();
  };
  Status s = add_children(job.inputs0);
  if (s.ok()) s = add_children(job.inputs1);
  if (!s.ok()) {
    for (Iterator* child : children) delete child;
    if (lock != nullptr) lock->lock();
    return s;
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(std::move(children)));

  std::unique_ptr<MemoryBufferFile> out_buffer;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData out_meta;

  // On failure every output is discarded — inputs stay installed, so the
  // partial work is only wasted bytes, and reclaiming them matters when
  // the failure *is* disk exhaustion. A partially built table only ever
  // exists in memory (single-buffer build), so there is no partial file
  // to clean up, only fully written outputs.
  auto discard_outputs = [&]() {
    builder.reset();
    out_buffer.reset();
    for (const FileMetaData& f : *outputs) {
      env_->RemoveFile(TableFileName(dbname_, f.number));
    }
    outputs->clear();
  };

  auto open_output = [&]() {
    out_meta = FileMetaData{};
    out_meta.number = AllocFileNumber(lock);
    out_buffer = std::make_unique<MemoryBufferFile>();
    builder = std::make_unique<TableBuilder>(options_, out_buffer.get());
  };
  auto finish_output = [&]() -> Status {
    if (!builder) return Status::OK();
    if (builder->NumEntries() == 0) {
      builder.reset();
      out_buffer.reset();
      return Status::OK();
    }
    Status os = builder->Finish();
    if (os.ok()) {
      os = WriteTableFile(env_, TableFileName(dbname_, out_meta.number),
                          Slice(out_buffer->data()));
    }
    if (!os.ok()) return os;
    out_meta.file_size = builder->FileSize();
    outputs->push_back(out_meta);
    builder.reset();
    out_buffer.reset();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    if (lock != nullptr && shutting_down_.load(std::memory_order_relaxed)) {
      // DB is being destroyed: abandon the merge. The inputs are still
      // installed, so dropping the outputs loses nothing.
      discard_outputs();
      lock->lock();
      return Status::IoError("compaction aborted: shutting down");
    }
    const Slice ikey = merged->key();
    const Slice user_key = ExtractUserKey(ikey);
    if (has_current_user_key && user_key == Slice(current_user_key)) {
      continue;  // older, shadowed version
    }
    current_user_key.assign(user_key.data(), user_key.size());
    has_current_user_key = true;
    if (job.bottom_most && ExtractValueType(ikey) == kTypeDeletion) {
      continue;  // tombstone with nothing underneath
    }
    if (!builder) {
      open_output();
    }
    if (out_meta.smallest.empty()) {
      out_meta.smallest = ikey.ToString();
    }
    out_meta.largest = ikey.ToString();
    builder->Add(ikey, merged->value());
    if (builder->FileSize() >= options_.target_file_size) {
      s = finish_output();
      if (!s.ok()) {
        discard_outputs();
        if (lock != nullptr) lock->lock();
        return s;
      }
    }
  }
  if (!merged->status().ok()) {
    discard_outputs();
    if (lock != nullptr) lock->lock();
    return merged->status();
  }
  s = finish_output();
  if (!s.ok()) {
    discard_outputs();
    if (lock != nullptr) lock->lock();
    return s;
  }
  if (lock != nullptr) lock->lock();
  return Status::OK();
}

// Install phase, under mu_: swap inputs for outputs in the live version
// and persist the manifest. The version may have gained L0 files from
// concurrent flushes while the merge ran — those are newer than every
// output (higher file numbers, checked first by reads), so erasing the
// inputs by number and appending outputs to level+1 stays correct.
Status DB::InstallCompactionLocked(const CompactionJob& job,
                                   std::vector<FileMetaData>* outputs) {
  Version* current = versions_->mutable_current();
  auto remove_files = [](std::vector<FileMetaData>* files,
                         const std::vector<FileMetaData>& to_remove) {
    files->erase(std::remove_if(files->begin(), files->end(),
                                [&](const FileMetaData& f) {
                                  for (const FileMetaData& r : to_remove) {
                                    if (r.number == f.number) return true;
                                  }
                                  return false;
                                }),
                 files->end());
  };
  remove_files(&current->files[job.level], job.inputs0);
  remove_files(&current->files[job.level + 1], job.inputs1);
  for (FileMetaData& f : *outputs) {
    current->files[job.level + 1].push_back(std::move(f));
  }
  std::sort(current->files[job.level + 1].begin(),
            current->files[job.level + 1].end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
            });
  Status s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  // Retire the inputs. Deletion is deferred while readers hold version
  // pins: a Get/iterator that copied the pre-install version may still
  // open these files by name. The last unpin (or the next install with
  // no pins, or destruction) drops them.
  for (const FileMetaData& f : job.inputs0) {
    obsolete_tables_.push_back(f.number);
  }
  for (const FileMetaData& f : job.inputs1) {
    obsolete_tables_.push_back(f.number);
  }
  if (version_pins_ == 0) {
    std::vector<uint64_t> to_drop;
    to_drop.swap(obsolete_tables_);
    DropObsoleteTables(to_drop);
  }
  compaction_done_cv_.notify_all();
  return Status::OK();
}

void DB::DropObsoleteTables(const std::vector<uint64_t>& numbers) {
  for (uint64_t number : numbers) {
    table_cache_->Evict(number);
    block_cache_.EvictFile(number);
    env_->RemoveFile(TableFileName(dbname_, number));
  }
}

void DB::UnpinVersion() {
  std::vector<uint64_t> to_drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--version_pins_ == 0 && !obsolete_tables_.empty()) {
      to_drop.swap(obsolete_tables_);
    }
  }
  DropObsoleteTables(to_drop);
}

void DB::RemoveObsoleteFilesLocked() {
  std::vector<std::string> children;
  if (!env_->GetChildren(dbname_, &children).ok()) return;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    if (type == FileType::kLogFile && number < logfile_number_) {
      env_->RemoveFile(dbname_ + "/" + child);
    }
  }
}

namespace {

// Walks every block of the SSTable at `fname` — footer, filter, index,
// and all data blocks — verifying checksums. Reads go straight to the
// env (no table/block cache) so the bytes on disk are what is checked.
Status ScrubTableFile(Env* env, const std::string& fname, IoStats* stats) {
  auto count_verification = [&] {
    if (stats) {
      stats->checksum_verifications.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto count_corruption = [&](const Status& s) {
    if (stats && s.IsCorruption()) {
      stats->corruptions_detected.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  };

  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  const uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return count_corruption(
        Status::Corruption("file is too short to be an sstable"));
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) return s;
  if (footer_input.size() != Footer::kEncodedLength) {
    return count_corruption(Status::Corruption("truncated footer read"));
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return count_corruption(s);

  ReadOptions opts;
  opts.verify_checksums = true;
  auto verify_block = [&](const BlockHandle& handle,
                          BlockContents* out) -> Status {
    count_verification();
    return count_corruption(ReadBlock(file.get(), opts, handle, out));
  };

  if (footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    s = verify_block(footer.filter_handle(), &filter_contents);
    if (!s.ok()) return s;
  }
  BlockContents index_contents;
  s = verify_block(footer.index_handle(), &index_contents);
  if (!s.ok()) return s;
  Block index_block(std::move(index_contents.data));
  std::unique_ptr<Iterator> index_iter(index_block.NewIterator());
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    s = handle.DecodeFrom(&input);
    if (!s.ok()) return count_corruption(s);
    BlockContents data_contents;
    s = verify_block(handle, &data_contents);
    if (!s.ok()) return s;
  }
  return index_iter->status();
}

// Reads the whole table at `fname` with checksums on, filling *meta's
// key range and bumping *max_sequence. Any failure means the table is
// not salvageable as-is.
Status SalvageTable(Env* env, const Options& options, uint64_t number,
                    const std::string& fname, FileMetaData* meta,
                    SequenceNumber* max_sequence) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  std::unique_ptr<Table> table;
  s = Table::Open(options, number, std::move(file), nullptr, nullptr,
                  &table);
  if (!s.ok()) return s;
  ReadOptions opts;
  opts.verify_checksums = true;
  opts.fill_cache = false;
  std::unique_ptr<Iterator> iter(table->NewIterator(opts));
  uint64_t entries = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const Slice ikey = iter->key();
    if (ikey.size() < 8) {
      return Status::Corruption("malformed internal key");
    }
    if (meta->smallest.empty()) meta->smallest = ikey.ToString();
    meta->largest = ikey.ToString();
    *max_sequence = std::max(*max_sequence, ExtractSequence(ikey));
    ++entries;
  }
  if (!iter->status().ok()) return iter->status();
  if (entries == 0) return Status::Corruption("table has no entries");
  return env->GetFileSize(fname, &meta->file_size);
}

}  // namespace

Status DB::VerifyIntegrity() {
  // Pin for the whole walk: the scrub opens tables by name, so files of
  // this version must stay on disk even if a background compaction
  // replaces them mid-scrub. (The concurrent manifest rewrite is safe:
  // WriteSnapshot repoints CURRENT atomically via rename, so the
  // re-parse below reads a complete manifest either way.)
  std::unique_lock<std::mutex> lock(mu_);
  Version version = versions_->current();
  ScopedVersionPin pin(this);
  lock.unlock();
  for (int level = 0; level < kNumLevels; ++level) {
    for (const FileMetaData& f : version.files[level]) {
      const std::string fname = TableFileName(dbname_, f.number);
      Status s = ScrubTableFile(env_, fname, &stats_);
      if (!s.ok()) return s.WithContext(fname);
    }
  }
  // The on-disk manifest must itself parse back.
  VersionSet check(dbname_, env_);
  bool found_manifest = false;
  Status s = check.Recover(&found_manifest);
  if (!s.ok()) return s.WithContext(dbname_ + ": manifest");
  return Status::OK();
}

Status DB::Repair(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (!env->FileExists(name)) {
    return Status::InvalidArgument(name + " does not exist");
  }
  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (!s.ok()) return s;

  std::vector<uint64_t> tables;
  uint64_t max_number = 0;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    max_number = std::max(max_number, number);
    if (type == FileType::kTableFile) tables.push_back(number);
  }
  std::sort(tables.begin(), tables.end());

  // Salvage every table that still passes a full checksum walk; install
  // the survivors at level 0, where overlapping key ranges are legal and
  // higher file numbers shadow lower ones — matching write order.
  VersionSet versions(name, env);
  SequenceNumber max_sequence = 0;
  for (uint64_t number : tables) {
    const std::string fname = TableFileName(name, number);
    FileMetaData meta;
    meta.number = number;
    Status ts =
        SalvageTable(env, options, number, fname, &meta, &max_sequence);
    if (!ts.ok()) {
      // Quarantine rather than delete: .bad files are invisible to the
      // store but preserved for forensics.
      env->RenameFile(fname, fname + ".bad");
      continue;
    }
    versions.mutable_current()->files[0].push_back(std::move(meta));
  }
  versions.BumpFileNumber(max_number);
  versions.set_last_sequence(max_sequence);
  // Log number 0 means every surviving WAL replays on the next Open;
  // records already flushed into tables re-apply at their original
  // sequence numbers, which is idempotent.
  versions.set_log_number(0);
  return versions.WriteSnapshot();
}

int DB::NumFilesAtLevel(int level) const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_->current().NumFiles(level);
}

uint64_t DB::TotalTableBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (int level = 0; level < kNumLevels; ++level) {
    total += versions_->current().LevelBytes(level);
  }
  return total;
}

}  // namespace kv
}  // namespace trass
