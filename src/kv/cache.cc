#include "kv/cache.h"

#include <vector>

namespace trass {
namespace kv {

BlockCache::BlockCache(size_t capacity_bytes) {
  const size_t per_shard = capacity_bytes / kNumShards + 1;
  for (auto& shard : shards_) shard.capacity = per_shard;
}

std::shared_ptr<const Block> BlockCache::RemoveLocked(
    Shard& shard, std::list<Entry>::iterator it) {
  std::shared_ptr<const Block> block = std::move(it->block);
  shard.usage -= it->charge;
  auto file_it = shard.by_file.find(it->key.file_id);
  if (file_it != shard.by_file.end()) {
    file_it->second.erase(it->key.offset);
    if (file_it->second.empty()) shard.by_file.erase(file_it);
  }
  shard.index.erase(it->key);
  shard.lru.erase(it);
  return block;
}

std::shared_ptr<const Block> BlockCache::Lookup(const Key& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(const Key& key, std::shared_ptr<const Block> block,
                        size_t charge) {
  Shard& shard = ShardFor(key);
  // Destroy displaced blocks outside the shard lock.
  std::vector<std::shared_ptr<const Block>> displaced;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      displaced.push_back(RemoveLocked(shard, it->second));
    }
    if (charge > shard.capacity) {
      // Oversized: retaining it would require emptying the shard, and it
      // would still bust the budget. Serve it uncached.
      return;
    }
    shard.lru.push_front(Entry{key, std::move(block), charge});
    shard.index[key] = shard.lru.begin();
    shard.by_file[key.file_id].insert(key.offset);
    shard.usage += charge;
    fills_.fetch_add(1, std::memory_order_relaxed);
    while (shard.usage > shard.capacity && shard.lru.size() > 1) {
      displaced.push_back(RemoveLocked(shard, std::prev(shard.lru.end())));
    }
  }
}

void BlockCache::EvictFile(uint64_t file_id) {
  std::vector<std::shared_ptr<const Block>> displaced;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto file_it = shard.by_file.find(file_id);
    if (file_it == shard.by_file.end()) continue;
    // RemoveLocked mutates by_file; detach the offset set first.
    std::unordered_set<uint64_t> offsets = std::move(file_it->second);
    shard.by_file.erase(file_it);
    for (uint64_t offset : offsets) {
      auto it = shard.index.find(Key{file_id, offset});
      if (it != shard.index.end()) {
        displaced.push_back(RemoveLocked(shard, it->second));
      }
    }
  }
}

size_t BlockCache::TotalCharge() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.usage;
  }
  return total;
}

}  // namespace kv
}  // namespace trass
