#include "kv/cache.h"

namespace trass {
namespace kv {

BlockCache::BlockCache(size_t capacity_bytes) {
  const size_t per_shard = capacity_bytes / kNumShards + 1;
  for (auto& shard : shards_) shard.capacity = per_shard;
}

std::shared_ptr<const Block> BlockCache::Lookup(const Key& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(const Key& key, std::shared_ptr<const Block> block,
                        size_t charge) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.usage -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(block), charge});
  shard.index[key] = shard.lru.begin();
  shard.usage += charge;
  while (shard.usage > shard.capacity && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.usage -= victim.charge;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

void BlockCache::EvictFile(uint64_t file_id) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_id == file_id) {
        shard.usage -= it->charge;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BlockCache::TotalCharge() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += shard.usage;
  }
  return total;
}

}  // namespace kv
}  // namespace trass
