// Reads CRC-framed records back from a write-ahead log, reassembling
// fragmented records and skipping corrupted tails (torn writes at crash).

#ifndef TRASS_KV_LOG_READER_H_
#define TRASS_KV_LOG_READER_H_

#include <memory>
#include <string>

#include "kv/env.h"
#include "kv/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {
namespace log {

class Reader {
 public:
  /// `file` must remain open while this Reader is in use. When
  /// `checksum` is true, CRC mismatches drop the record (and the rest of
  /// its block) rather than returning bad data.
  Reader(SequentialFile* file, bool checksum = true)
      : file_(file),
        checksum_(checksum),
        backing_store_(new char[kBlockSize]),
        buffer_(),
        eof_(false) {}

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next complete record into *record (backed by *scratch).
  /// Returns false at clean end-of-log. Corrupted trailing data is
  /// tolerated: reading stops as if the log ended there, and
  /// `corruption_detected()` reports it.
  bool ReadRecord(Slice* record, std::string* scratch);

  bool corruption_detected() const { return corruption_detected_; }

 private:
  // Extends RecordType with internal outcomes.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);

  SequentialFile* const file_;
  const bool checksum_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_;
  bool corruption_detected_ = false;
};

}  // namespace log
}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_LOG_READER_H_
